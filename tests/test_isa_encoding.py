"""Unit and property-based tests for instruction encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instructions import Instruction, InstructionFormat, SPECS


class TestKnownEncodings:
    """Spot checks against independently computed RV32 encodings."""

    def test_addi(self):
        # addi a0, a1, 5  ->  imm=5, rs1=11, funct3=0, rd=10, opcode=0x13
        word = encode(Instruction("addi", rd=10, rs1=11, imm=5))
        assert word == (5 << 20) | (11 << 15) | (0 << 12) | (10 << 7) | 0x13

    def test_add(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        assert word == (0 << 25) | (3 << 20) | (2 << 15) | (0 << 12) | (1 << 7) | 0x33

    def test_sub_funct7(self):
        word = encode(Instruction("sub", rd=1, rs1=2, rs2=3))
        assert (word >> 25) == 0b0100000

    def test_lui(self):
        word = encode(Instruction("lui", rd=5, imm=0xABCDE))
        assert word == (0xABCDE << 12) | (5 << 7) | 0x37

    def test_jal_negative_offset(self):
        word = encode(Instruction("jal", rd=0, imm=-8))
        decoded = decode(word)
        assert decoded.mnemonic == "jal"
        assert decoded.imm == -8

    def test_beq_offset_encoding(self):
        word = encode(Instruction("beq", rs1=1, rs2=2, imm=16))
        decoded = decode(word)
        assert decoded.mnemonic == "beq"
        assert decoded.imm == 16

    def test_sw(self):
        word = encode(Instruction("sw", rs1=2, rs2=10, imm=-4))
        decoded = decode(word)
        assert decoded.mnemonic == "sw"
        assert decoded.rs1 == 2 and decoded.rs2 == 10 and decoded.imm == -4

    def test_ecall_and_ebreak(self):
        assert encode(Instruction("ecall")) == 0x00000073
        assert encode(Instruction("ebreak", imm=1)) == 0x00100073

    def test_shift_immediates(self):
        word = encode(Instruction("srai", rd=3, rs1=4, imm=7))
        decoded = decode(word)
        assert decoded.mnemonic == "srai" and decoded.imm == 7


class TestEncodingErrors:
    def test_i_immediate_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=4096))

    def test_branch_offset_must_be_even(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=3))

    def test_jump_offset_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("jal", rd=1, imm=1 << 21))

    def test_shift_amount_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("slli", rd=1, rs1=1, imm=32))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=32, rs1=0, rs2=0))

    def test_u_immediate_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("lui", rd=1, imm=1 << 20))


class TestDecodingErrors:
    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode(0x0000007F)

    def test_bad_funct3_branch(self):
        # opcode BRANCH with funct3=0b010 is not a defined branch.
        word = (0b010 << 12) | 0b1100011
        with pytest.raises(EncodingError):
            decode(word)

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)

    def test_address_is_attached(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        decoded = decode(word, address=0x80)
        assert decoded.address == 0x80


# ---------------------------------------------------------------- properties
_REG = st.integers(min_value=0, max_value=31)


def _instruction_strategy():
    """Generate valid Instruction objects across all formats."""
    def build(mnemonic, rd, rs1, rs2, imm12, imm20, imm21, imm13, shamt):
        spec = SPECS[mnemonic]
        fmt = spec.fmt
        if mnemonic in ("ecall",):
            return Instruction(mnemonic)
        if mnemonic == "ebreak":
            return Instruction(mnemonic, imm=1)
        if mnemonic == "fence":
            return Instruction(mnemonic, imm=0)
        if fmt is InstructionFormat.R:
            return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
        if fmt is InstructionFormat.U:
            return Instruction(mnemonic, rd=rd, imm=imm20)
        if fmt is InstructionFormat.J:
            return Instruction(mnemonic, rd=rd, imm=imm21 * 2)
        if fmt is InstructionFormat.B:
            return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm13 * 2)
        if fmt is InstructionFormat.S:
            return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm12)
        # I format
        if mnemonic in ("slli", "srli", "srai"):
            return Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt)
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm12)

    return st.builds(
        build,
        mnemonic=st.sampled_from(sorted(SPECS)),
        rd=_REG, rs1=_REG, rs2=_REG,
        imm12=st.integers(min_value=-2048, max_value=2047),
        imm20=st.integers(min_value=0, max_value=(1 << 20) - 1),
        imm21=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1),
        imm13=st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1),
        shamt=st.integers(min_value=0, max_value=31),
    )


class TestRoundTripProperties:
    @given(instruction=_instruction_strategy())
    @settings(max_examples=400, deadline=None)
    def test_encode_decode_roundtrip(self, instruction):
        """decode(encode(i)) preserves the semantic fields of i."""
        word = encode(instruction)
        assert 0 <= word <= 0xFFFFFFFF
        decoded = decode(word)
        assert decoded.mnemonic == instruction.mnemonic
        fmt = instruction.spec.fmt
        if fmt in (InstructionFormat.R, InstructionFormat.I, InstructionFormat.U,
                   InstructionFormat.J):
            assert decoded.rd == instruction.rd
        if fmt in (InstructionFormat.R, InstructionFormat.I, InstructionFormat.S,
                   InstructionFormat.B):
            if instruction.mnemonic not in ("ecall", "ebreak", "fence"):
                assert decoded.rs1 == instruction.rs1
        if fmt in (InstructionFormat.R, InstructionFormat.S, InstructionFormat.B):
            assert decoded.rs2 == instruction.rs2
        if instruction.mnemonic not in ("ecall", "ebreak", "fence"):
            if fmt is not InstructionFormat.R:
                assert decoded.imm == instruction.imm

    @given(instruction=_instruction_strategy())
    @settings(max_examples=200, deadline=None)
    def test_encoding_is_deterministic(self, instruction):
        assert encode(instruction) == encode(instruction)

    @given(instruction=_instruction_strategy())
    @settings(max_examples=200, deadline=None)
    def test_control_flow_classification_survives_roundtrip(self, instruction):
        decoded = decode(encode(instruction))
        assert decoded.is_control_flow == instruction.is_control_flow
        assert decoded.is_conditional_branch == instruction.is_conditional_branch
