"""Unit tests for the CPU core: semantics, cycle model, monitors, hooks."""

import pytest

from repro.cpu.core import Cpu, CpuConfig, run_program
from repro.cpu.exceptions import IllegalInstructionError, MemoryProtectionError, OutOfFuelError
from repro.cpu.trace import BranchKind
from repro.isa.assembler import assemble


def run_source(source, inputs=None, config=None):
    return run_program(assemble(source), inputs=inputs, config=config)


EXIT = """
    li a7, 93
    ecall
"""


class TestArithmetic:
    def test_add_sub(self):
        result = run_source("""
            li a0, 30
            li a1, 12
            add a2, a0, a1
            sub a3, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "4218"

    def test_logic_ops(self):
        result = run_source("""
            li a0, 0xF0
            li a1, 0x3C
            and a2, a0, a1
            or  a3, a0, a1
            xor a4, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
            mv a0, a4
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "%d%d%d" % (0xF0 & 0x3C, 0xF0 | 0x3C, 0xF0 ^ 0x3C)

    def test_shifts(self):
        result = run_source("""
            li a0, -8
            srai a1, a0, 1
            srli a2, a0, 28
            slli a3, a0, 1
            mv a0, a1
            li a7, 1
            ecall
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "%d%d%d" % (-4, (0xFFFFFFF8 >> 28), -16)

    def test_slt_family(self):
        result = run_source("""
            li a0, -5
            li a1, 3
            slt  a2, a0, a1
            sltu a3, a0, a1
            slti a4, a0, 0
            sltiu a5, a1, 10
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
            mv a0, a4
            li a7, 1
            ecall
            mv a0, a5
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "1011"

    def test_lui_auipc(self):
        result = run_source("""
            lui a0, 0x12345
            srli a0, a0, 12
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == str(0x12345)


class TestMulDiv:
    def test_mul(self):
        result = run_source("""
            li a0, -7
            li a1, 6
            mul a2, a0, a1
            mv a0, a2
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "-42"

    def test_mulh_variants(self):
        result = run_source("""
            li a0, 0x40000000
            li a1, 8
            mulh a2, a0, a1
            mulhu a3, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "22"

    def test_div_rem(self):
        result = run_source("""
            li a0, -7
            li a1, 2
            div a2, a0, a1
            rem a3, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        # RISC-V division truncates towards zero.
        assert result.output == "-3-1"

    def test_divide_by_zero_semantics(self):
        result = run_source("""
            li a0, 9
            li a1, 0
            div a2, a0, a1
            remu a3, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "-19"

    def test_div_overflow_case(self):
        result = run_source("""
            li a0, 0x80000000
            li a1, -1
            div a2, a0, a1
            rem a3, a0, a1
            mv a0, a2
            li a7, 1
            ecall
            mv a0, a3
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "%d0" % -(1 << 31)


class TestMemoryInstructions:
    def test_store_load_word(self):
        result = run_source("""
            .data
        buf: .space 16
            .text
        _start:
            la t0, buf
            li t1, 0x11223344
            sw t1, 4(t0)
            lw a0, 4(t0)
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == str(0x11223344)

    def test_byte_sign_extension(self):
        result = run_source("""
            .data
        buf: .space 4
            .text
        _start:
            la t0, buf
            li t1, 0xFF
            sb t1, 0(t0)
            lb a0, 0(t0)
            lbu a1, 0(t0)
            li a7, 1
            ecall
            mv a0, a1
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "-1255"

    def test_halfword_access(self):
        result = run_source("""
            .data
        buf: .space 4
            .text
        _start:
            la t0, buf
            li t1, -2
            sh t1, 2(t0)
            lh a0, 2(t0)
            lhu a1, 2(t0)
            li a7, 1
            ecall
            mv a0, a1
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "-2%d" % 0xFFFE

    def test_write_to_code_faults(self):
        program = assemble("""
        _start:
            sw zero, 0(zero)
        """)
        with pytest.raises(MemoryProtectionError):
            Cpu(program).run()


class TestControlFlow:
    def test_taken_and_not_taken_branches(self):
        result = run_source("""
            li a0, 1
            li a1, 2
            blt a0, a1, taken
            li a2, 111
            j out
        taken:
            li a2, 222
        out:
            mv a0, a2
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == "222"

    def test_call_return(self, call_return_program):
        result = run_program(call_return_program)
        assert result.output == "14"

    def test_branch_kinds_in_trace(self, call_return_program):
        result = run_program(call_return_program)
        kinds = [r.kind for r in result.trace if r.is_control_flow]
        assert BranchKind.DIRECT_CALL in kinds
        assert BranchKind.RETURN in kinds

    def test_loop_trace_counts(self, simple_loop_program):
        result = run_program(simple_loop_program)
        assert result.output == "10"
        # 6 bge evaluations (5 not taken + final taken) and 5 backward jumps.
        conditionals = [r for r in result.trace
                        if r.kind is BranchKind.CONDITIONAL]
        jumps = [r for r in result.trace if r.kind is BranchKind.DIRECT_JUMP]
        assert len(conditionals) == 6
        assert len(jumps) == 5
        assert sum(1 for r in conditionals if r.taken) == 1

    def test_ebreak_halts(self):
        result = run_source("""
            li a0, 5
            ebreak
            li a0, 6
            li a7, 1
            ecall
        """ + EXIT)
        assert result.output == ""

    def test_illegal_instruction_faults(self):
        program = assemble("""
            .text
        _start:
            nop
        """)
        # Overwrite the nop with an undecodable word at load time.
        program = assemble("_start:\n    nop")
        cpu = Cpu(program)
        cpu.memory.load_image(0, b"\xff\xff\xff\xff")
        with pytest.raises(IllegalInstructionError):
            cpu.run()


class TestCycleModel:
    def test_cycle_count_includes_penalties(self):
        config = CpuConfig(taken_branch_penalty=3, load_latency=2)
        result = run_source("""
            li a0, 1
            j skip
        skip:
            li a7, 93
            ecall
        """, config=config)
        # 4 instructions + 3-cycle penalty for the taken jump.
        assert result.instructions == 4
        assert result.cycles == 4 + 3

    def test_load_latency_charged(self):
        config = CpuConfig(load_latency=5)
        result = run_source("""
            .data
        v: .word 3
            .text
        _start:
            la t0, v
            lw t1, 0(t0)
            li a7, 93
            ecall
        """, config=config)
        # la = 2, lw = 1, li = 1, ecall = 1 -> 5 instructions + 5 load latency.
        assert result.instructions == 5
        assert result.cycles == 10

    def test_div_latency_charged(self):
        fast = run_source("li a0, 9\nli a1, 3\ndiv a2, a0, a1\n" + EXIT,
                          config=CpuConfig(div_latency=0))
        slow = run_source("li a0, 9\nli a1, 3\ndiv a2, a0, a1\n" + EXIT,
                          config=CpuConfig(div_latency=32))
        assert slow.cycles - fast.cycles == 32

    def test_out_of_fuel(self):
        program = assemble("""
        spin:
            j spin
        """)
        cpu = Cpu(program, config=CpuConfig(max_instructions=100))
        with pytest.raises(OutOfFuelError):
            cpu.run()


class TestMonitorsAndHooks:
    def test_monitor_sees_every_retired_instruction(self, simple_loop_program):
        seen = []
        cpu = Cpu(simple_loop_program)
        cpu.attach_monitor(seen.append)
        result = cpu.run()
        assert len(seen) == result.instructions
        assert [r.pc for r in seen] == [r.pc for r in result.trace]

    def test_monitor_cannot_change_cycles(self, simple_loop_program):
        plain = Cpu(simple_loop_program).run()
        cpu = Cpu(simple_loop_program)
        cpu.attach_monitor(lambda record: None)
        monitored = cpu.run()
        assert monitored.cycles == plain.cycles
        assert monitored.output == plain.output

    def test_pre_instruction_hook_can_corrupt_data(self):
        source = """
            .data
        flag: .word 0
            .text
        _start:
            la t0, flag
            lw a0, 0(t0)
            li a7, 1
            ecall
        """ + EXIT
        program = assemble(source)

        def corrupt(cpu, pc, retired):
            if pc == program.symbol("_start") + 8:  # before the lw
                cpu.memory.store_word(program.symbol("flag"), 99)

        cpu = Cpu(program)
        cpu.add_pre_instruction_hook(corrupt)
        assert cpu.run().output == "99"

    def test_exit_code_propagated(self):
        result = run_source("""
            li a0, 17
            li a7, 93
            ecall
        """)
        assert result.exit_code == 17

    def test_registers_snapshot_in_result(self):
        result = run_source("li s11, 123\n" + EXIT)
        assert result.registers[27] == 123
