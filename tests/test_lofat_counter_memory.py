"""Unit tests for the path-indexed loop counter memory."""

import pytest

from repro.lofat.config import LoFatConfig
from repro.lofat.loop_counter_memory import LoopCounterMemory
from repro.lofat.path_encoder import PathEncoding


def enc(bits):
    return PathEncoding(bits=bits)


class TestLoopCounterMemory:
    def test_first_occurrence_returns_true(self):
        memory = LoopCounterMemory()
        assert memory.record_path(enc("011")) is True

    def test_repeat_returns_false_and_increments(self):
        memory = LoopCounterMemory()
        memory.record_path(enc("011"))
        assert memory.record_path(enc("011")) is False
        assert memory.count_for("011") == 2

    def test_distinct_paths_tracked_separately(self):
        memory = LoopCounterMemory()
        memory.record_path(enc("011"))
        memory.record_path(enc("0011"))
        memory.record_path(enc("011"))
        assert memory.distinct_paths == 2
        assert memory.count_for("011") == 2
        assert memory.count_for("0011") == 1

    def test_first_seen_order_preserved(self):
        memory = LoopCounterMemory()
        for bits in ("0011", "011", "1", "011"):
            memory.record_path(enc(bits))
        assert [bits for bits, _ in memory.paths_in_first_seen_order()] == ["0011", "011", "1"]

    def test_total_iterations(self):
        memory = LoopCounterMemory()
        for bits in ("0", "1", "0", "0"):
            memory.record_path(enc(bits))
        assert memory.total_iterations == 4

    def test_counter_saturation(self):
        memory = LoopCounterMemory(LoFatConfig(counter_width_bits=2))
        for _ in range(10):
            memory.record_path(enc("1"))
        assert memory.count_for("1") == 3          # saturated at 2^2 - 1
        assert memory.saturations > 0

    def test_capacity_and_utilization(self):
        config = LoFatConfig(max_branches_per_path=8, max_indirect_branches_per_path=2)
        memory = LoopCounterMemory(config)
        assert memory.capacity == 256
        memory.record_path(enc("0"))
        memory.record_path(enc("1"))
        assert memory.utilization == pytest.approx(2 / 256)

    def test_unknown_path_count_is_zero(self):
        assert LoopCounterMemory().count_for("1010") == 0

    def test_clear(self):
        memory = LoopCounterMemory()
        memory.record_path(enc("01"))
        memory.clear()
        assert memory.distinct_paths == 0
        assert memory.total_iterations == 0
        assert memory.record_path(enc("01")) is True
