"""The soundness oracle: no statically proven fact may be violated dynamically.

Every program in the golden lang corpus, the full compiled family matrix and
the adversary generator's benign variants is executed on the reference CPU,
and the dynamic evidence is checked against the static claims:

* every executed control-flow ``(src, dest)`` pair is in ``valid_pairs``;
* no instruction of a proven-unreachable block retires;
* every LO-FAT loop record satisfies the StaticPolicy (entry set and
  trip-count interval);
* no statically dead register definition is read before redefinition.

A failure here is a bug in the abstract interpreter or the loop-bound
inference, never in the program under test.
"""

import pytest

from repro.adversary.generator import DEFAULT_WORKLOADS, generate_suite
from repro.dataflow import analyze_program
from repro.dataflow.semantics import register_def, register_uses
from repro.isa.assembler import assemble
from repro.lang.corpus import build_corpus
from repro.lang.families import family_names, generate_family
from repro.schemes import get_scheme
from repro.workloads import get_workload

#: Deterministic seed for the family matrix and the adversary suites (the
#: corpus' own pinned seed keeps its inputs stable already).
ORACLE_SEED = 4711


def _corpus_targets():
    for entry in build_corpus():
        yield entry.name, assemble(entry.assembly), tuple(entry.inputs)


def _family_targets():
    for family in family_names():
        for workload in generate_family(family, seed=ORACLE_SEED):
            yield workload.name, workload.build(), tuple(workload.inputs)


def _check_soundness(name, program, inputs):
    analysis = analyze_program(program)
    policy = analysis.policy
    scheme = get_scheme("lofat")
    result, measurement = scheme.measure_execution(program, list(inputs))

    valid_pairs = analysis.valid_pairs
    for pair in result.trace.executed_edges:
        assert pair in valid_pairs, (
            "%s: executed edge (0x%x, 0x%x) missing from valid_pairs"
            % (name, pair[0], pair[1])
        )

    executed = {record.pc for record in result.trace.records}
    for start in analysis.unreachable_blocks:
        block = analysis.cfg.block_starting_at(start)
        assert block is not None
        for instr in block.instructions:
            assert instr.address not in executed, (
                "%s: proven-unreachable block 0x%x executed" % (name, start)
            )

    for record in measurement.metadata.loops:
        detail = policy.check_loop_record(record.entry, record.iterations)
        assert detail is None, "%s: %s" % (name, detail)

    _check_dead_defs(name, analysis, result)


def _check_dead_defs(name, analysis, result):
    """A statically dead definition must never be read before redefinition."""
    dead = {(d.pc, d.register) for d in analysis.liveness.dead_defs}
    if not dead:
        return
    instruction_at = analysis.instruction_at
    #: register -> pc of the dead definition currently holding it (if any).
    pending = {}
    for record in result.trace.records:
        instr = instruction_at(record.pc)
        if instr is None:
            continue
        for register in register_uses(instr):
            assert register not in pending, (
                "%s: dead def of x%d at 0x%x read at 0x%x"
                % (name, register, pending[register], record.pc)
            )
        defined = register_def(instr)
        if defined is not None:
            if (record.pc, defined) in dead:
                pending[defined] = record.pc
            else:
                pending.pop(defined, None)


@pytest.mark.parametrize(
    "name,program,inputs",
    list(_corpus_targets()),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_corpus_soundness(name, program, inputs):
    _check_soundness(name, program, inputs)


def test_family_matrix_soundness():
    targets = list(_family_targets())
    assert len(targets) >= 20, "family matrix unexpectedly small"
    for name, program, inputs in targets:
        _check_soundness(name, program, inputs)


@pytest.mark.parametrize("workload_name", DEFAULT_WORKLOADS)
def test_adversary_benign_variants_soundness(workload_name):
    suite = generate_suite(workload_name, seed=ORACLE_SEED)
    program = get_workload(workload_name).build()
    assert suite.benign
    for variant in suite.benign:
        _check_soundness(variant.name, program, variant.inputs)
