"""Behavioural tests for the dataflow passes on hand-written assembly."""

import pytest

from repro.cfg.builder import build_cfg
from repro.dataflow import (
    analyze_program,
    clear_analysis_cache,
    lint_program,
    new_findings,
)
from repro.dataflow.liveness import analyze_liveness
from repro.dataflow.reaching import INITIAL_PC, analyze_reaching_definitions
from repro.isa.assembler import assemble


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_analysis_cache()
    yield
    clear_analysis_cache()


def _analyze(source):
    return analyze_program(assemble(source))


COUNTED_LOOP = """
_start:
    addi t0, x0, 0        # i = 0
    addi t1, x0, 10       # n = 10
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    addi a7, x0, 93
    ecall
"""


class TestIntervalsAndReachability:
    def test_constant_branch_prunes_edge(self):
        analysis = _analyze("""
        _start:
            addi t0, x0, 5
            beq  t0, x0, dead     # 5 == 0 never holds
            addi a0, x0, 1
            j    end
        dead:
            addi a0, x0, 99
        end:
            addi a7, x0, 93
            ecall
        """)
        dead = analysis.program.symbols["dead"]
        assert dead in analysis.unreachable_blocks
        entry = analysis.cfg.entry_block.start
        assert (entry, dead) in analysis.intervals.infeasible_edges

    def test_unreachable_after_unconditional_jump(self):
        analysis = _analyze("""
        _start:
            j    end
        orphan:
            addi a0, x0, 7
        end:
            addi a7, x0, 93
            ecall
        """)
        assert analysis.program.symbols["orphan"] in analysis.unreachable_blocks

    def test_indirect_jump_resolved_to_constant_target(self):
        analysis = _analyze("""
        _start:
            jal  ra, helper
            addi t0, x0, 20       # address of "helper" (code base 0)
            jalr ra, t0, 0        # function-pointer call, provable target
            addi a7, x0, 93
            ecall
        helper:
            jalr x0, ra, 0
        """)
        jump_pc = analysis.program.symbols["_start"] + 8
        targets, resolved = analysis.intervals.indirect_targets[jump_pc]
        assert resolved
        assert targets == frozenset({analysis.program.symbols["helper"]})

    def test_valid_pairs_match_cfg_minus_infeasible(self):
        analysis = _analyze(COUNTED_LOOP)
        loop = analysis.program.symbols["loop"]
        # The back edge (branch at loop+4 -> loop) must be a valid pair;
        # sources are terminator addresses, not block starts.
        assert (loop + 4, loop) in analysis.valid_pairs
        for src, dst in analysis.valid_pairs:
            assert analysis.instruction_at(src) is not None


class TestLoopBounds:
    def test_register_counter_exact_bound(self):
        analysis = _analyze(COUNTED_LOOP)
        loop = analysis.program.symbols["loop"]
        bound = analysis.loop_bounds[loop]
        assert bound.max_back_edges == 9      # i: 1..10, continue while i < 10
        assert bound.exact_back_edges == 9

    def test_data_dependent_loop_unbounded(self):
        analysis = _analyze("""
        _start:
            addi a7, x0, 5        # read n
            ecall
            addi t0, x0, 0
        loop:
            addi t0, t0, 1
            blt  t0, a0, loop
            addi a7, x0, 93
            ecall
        """)
        loop = analysis.program.symbols["loop"]
        assert analysis.loop_bounds[loop].max_back_edges is None

    def test_decrement_loop_bound(self):
        analysis = _analyze("""
        _start:
            addi t0, x0, 8
        loop:
            addi t0, t0, -1
            bne  t0, x0, loop
            addi a7, x0, 93
            ecall
        """)
        loop = analysis.program.symbols["loop"]
        bound = analysis.loop_bounds[loop]
        assert bound.max_back_edges == 7
        assert bound.exact_back_edges == 7


class TestLivenessAndReaching:
    def test_dead_def_detected(self):
        program = assemble("""
        _start:
            addi t0, x0, 42       # overwritten before any use
            addi t0, x0, 7
            addi a0, t0, 0
            addi a7, x0, 93
            ecall
        """)
        liveness = analyze_liveness(build_cfg(program))
        assert any(d.pc == program.code_base and d.register == 5
                   for d in liveness.dead_defs)

    def test_used_def_not_dead(self):
        program = assemble("""
        _start:
            addi t0, x0, 42
            addi a0, t0, 0
            addi a7, x0, 93
            ecall
        """)
        liveness = analyze_liveness(build_cfg(program))
        assert not any(d.pc == program.code_base for d in liveness.dead_defs)

    def test_reaching_definitions_merge_at_join(self):
        program = assemble("""
        _start:
            beq  a0, x0, other
            addi t0, x0, 1
            j    join
        other:
            addi t0, x0, 2
        join:
            addi a0, t0, 0
            addi a7, x0, 93
            ecall
        """)
        reaching = analyze_reaching_definitions(build_cfg(program))
        join = program.symbols["join"]
        t0_defs = {pc for reg, pc in reaching.reach_in[join] if reg == 5}
        assert len(t0_defs) == 2
        assert INITIAL_PC not in t0_defs


class TestLintAndCache:
    def test_lint_reports_dead_block_and_unbounded_loop(self):
        analysis = _analyze("""
        _start:
            addi a7, x0, 5
            ecall
        loop:
            addi a0, a0, -1
            bne  a0, x0, loop
            j    end
        orphan:
            addi a0, x0, 1
        end:
            addi a7, x0, 93
            ecall
        """)
        kinds = {f.kind for f in lint_program(analysis)}
        assert "dead-block" in kinds
        assert "unbounded-loop" in kinds

    def test_new_findings_diff(self):
        analysis = _analyze("""
        _start:
            j    end
        orphan:
            addi a0, x0, 1
        end:
            addi a7, x0, 93
            ecall
        """)
        findings = lint_program(analysis)
        assert findings
        baseline = [f.to_json() for f in findings]
        assert new_findings(findings, baseline) == []
        assert new_findings(findings, baseline[1:]) == [findings[0]]

    def test_analysis_cached_by_digest(self):
        program = assemble(COUNTED_LOOP)
        first = analyze_program(program)
        again = analyze_program(assemble(COUNTED_LOOP))
        assert first is again
        clear_analysis_cache()
        assert analyze_program(program) is not first

    def test_policy_roundtrip_through_json(self):
        analysis = _analyze(COUNTED_LOOP)
        policy = analysis.policy
        from repro.dataflow import StaticPolicy
        clone = StaticPolicy.from_json(policy.to_json())
        assert clone == policy
        assert clone.policy_digest() == policy.policy_digest()
