"""Tests for the attack injectors and their end-to-end detection.

These are the test-suite version of experiment E5: every attack scenario must
(1) actually change the program's behaviour, (2) leave the program binary
untouched (so static attestation misses it), and (3) be detected by LO-FAT's
attestation protocol.
"""

import pytest

from repro.attacks import all_attacks, get_attack
from repro.attacks.injector import MemoryCorruption
from repro.attestation import Prover, Verifier
from repro.schemes import StaticAttestation
from repro.cpu.core import Cpu
from repro.isa.assembler import assemble
from repro.workloads import get_workload

ALL_SCENARIOS = [scenario.name for scenario in all_attacks()]


class TestMemoryCorruption:
    def test_fires_at_trigger_pc(self):
        program = assemble("""
            .data
        var: .word 5
            .text
        _start:
            la t0, var
            lw a0, 0(t0)
            li a7, 1
            ecall
            li a7, 93
            ecall
        """)
        corruption = MemoryCorruption(
            trigger_pc=program.symbol("_start") + 8,
            address=program.symbol("var"),
            value=42,
        )
        cpu = Cpu(program)
        corruption.install(cpu)
        assert cpu.run().output == "42"
        assert corruption.fired == 1

    def test_occurrence_selection(self):
        program = assemble("""
            .data
        var: .word 0
            .text
        _start:
            li s0, 0
        loop:
            la t0, var
            lw t1, 0(t0)
            add s0, s0, t1
            addi s1, s1, 1
            li t2, 3
            blt s1, t2, loop
            mv a0, s0
            li a7, 1
            ecall
            li a7, 93
            ecall
        """)
        corruption = MemoryCorruption(
            trigger_pc=program.symbol("loop"),
            address=program.symbol("var"),
            value=10,
            occurrence=2,
        )
        cpu = Cpu(program)
        corruption.install(cpu)
        # Iterations read 0, 10, 10 -> 20.
        assert cpu.run().output == "20"

    def test_repeat_mode(self):
        program = assemble("""
            .data
        var: .word 1
            .text
        _start:
            li s0, 0
            li s1, 0
        loop:
            la t0, var
            lw t1, 0(t0)
            sw zero, 0(t0)
            add s0, s0, t1
            addi s1, s1, 1
            li t2, 3
            blt s1, t2, loop
            mv a0, s0
            li a7, 1
            ecall
            li a7, 93
            ecall
        """)
        corruption = MemoryCorruption(
            trigger_pc=program.symbol("loop"),
            address=program.symbol("var"),
            value=5,
            repeat=True,
        )
        cpu = Cpu(program)
        corruption.install(cpu)
        # Every iteration sees 5 despite the program zeroing the variable.
        assert cpu.run().output == "15"
        assert corruption.fired == 3

    def test_callable_address_and_value(self):
        program = assemble("""
            .data
        var: .word 7
            .text
        _start:
            la t0, var
            lw a0, 0(t0)
            li a7, 1
            ecall
            li a7, 93
            ecall
        """)
        corruption = MemoryCorruption(
            trigger_pc=program.symbol("_start") + 8,
            address=lambda cpu: program.symbol("var"),
            value=lambda cpu: cpu.registers["t0"],  # write the pointer value
        )
        cpu = Cpu(program)
        corruption.install(cpu)
        assert cpu.run().output == str(program.symbol("var"))


class TestRegistry:
    def test_all_three_attack_classes_covered(self):
        classes = {scenario.attack_class for scenario in all_attacks()}
        assert classes == {1, 2, 3}

    def test_get_attack_unknown(self):
        with pytest.raises(KeyError):
            get_attack("nonexistent")

    def test_scenarios_reference_registered_workloads(self):
        for scenario in all_attacks():
            assert get_workload(scenario.workload_name) is not None


class TestAttackEffects:
    @pytest.mark.parametrize("scenario_name", ALL_SCENARIOS)
    def test_attack_changes_observable_behaviour(self, scenario_name):
        scenario = get_attack(scenario_name)
        workload = get_workload(scenario.workload_name)
        program = workload.build()

        benign = Cpu(program, inputs=list(scenario.challenge_inputs)).run()
        attacked_cpu = Cpu(program, inputs=list(scenario.challenge_inputs))
        corruptions = scenario.install_on(attacked_cpu, program)
        attacked = attacked_cpu.run()

        assert any(corruption.fired for corruption in corruptions), (
            "the corruption never triggered")
        if scenario.changes_output:
            assert attacked.output != benign.output

    @pytest.mark.parametrize("scenario_name", ALL_SCENARIOS)
    def test_attack_does_not_modify_code(self, scenario_name):
        scenario = get_attack(scenario_name)
        workload = get_workload(scenario.workload_name)
        program = workload.build()
        static = StaticAttestation()
        before = static.measure(program)

        attacked_cpu = Cpu(program, inputs=list(scenario.challenge_inputs))
        scenario.install_on(attacked_cpu, program)
        attacked_cpu.run()

        code_bytes = attacked_cpu.memory.load_bytes(
            program.code_base, len(program.code), check=False)
        assert code_bytes == program.code
        assert static.measure(program).digest == before.digest


class TestEndToEndDetection:
    @pytest.mark.parametrize("scenario_name", ALL_SCENARIOS)
    def test_lofat_detects_attack(self, scenario_name):
        scenario = get_attack(scenario_name)
        workload = get_workload(scenario.workload_name)
        program = workload.build()

        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

        benign_challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
        assert verifier.verify(prover.attest(benign_challenge)).accepted

        prover.install_attack(scenario.prover_hook(program))
        attack_challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
        attacked_report = prover.attest(attack_challenge)
        verdict = verifier.verify(attacked_report)
        assert not verdict.accepted, (
            "attack %s was not detected (%s)" % (scenario_name, verdict.reason))

    def test_loop_counter_attack_visible_in_metadata(self):
        """The syringe overdose shows up as extra iterations in L."""
        scenario = get_attack("syringe_overdose")
        workload = get_workload(scenario.workload_name)
        program = workload.build()

        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

        benign = prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))
        prover.install_attack(scenario.prover_hook(program))
        attacked = prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))

        entry = program.symbol("dispense_loop")
        benign_iters = sum(r.iterations for r in benign.metadata.loops_at_entry(entry))
        attacked_iters = sum(r.iterations for r in attacked.metadata.loops_at_entry(entry))
        assert attacked_iters > benign_iters

    def test_clear_attacks_restores_benign_behaviour(self):
        scenario = get_attack("auth_flag_flip")
        workload = get_workload(scenario.workload_name)
        program = workload.build()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

        prover.install_attack(scenario.prover_hook(program))
        assert not verifier.verify(
            prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))
        ).accepted

        prover.clear_attacks()
        assert verifier.verify(
            prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))
        ).accepted
