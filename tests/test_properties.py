"""Property-based tests (hypothesis) for core invariants.

Encoding round trips are covered in test_isa_encoding.py; this module focuses
on higher-level invariants of the LO-FAT pipeline:

* the measurement is a deterministic function of (program, input);
* the loop-compression bookkeeping never loses or invents control-flow events;
* the path encoder's output uniquely determines the event sequence that
  produced it (up to the configured truncation limit);
* the synthetic workload generator produces programs whose simulated output
  matches its Python reference model for arbitrary parameters.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import Cpu
from repro.isa.assembler import assemble
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine, attest_execution
from repro.lofat.loop_counter_memory import LoopCounterMemory
from repro.lofat.path_encoder import LoopPathEncoder, PathEncoding
from repro.lofat.target_cam import TargetCam
from repro.workloads import get_workload
from repro.workloads.generator import SyntheticWorkloadGenerator

# ----------------------------------------------------------------- encoder

#: One loop event: a conditional outcome, a jump or an indirect target.
_EVENT = st.one_of(
    st.booleans().map(lambda taken: ("cond", taken)),
    st.just(("jump", None)),
    st.integers(min_value=0, max_value=0xFFFF).map(lambda t: ("indirect", t * 4)),
)


def _apply_events(encoder, events):
    for kind, value in events:
        if kind == "cond":
            encoder.on_conditional(value)
        elif kind == "jump":
            encoder.on_direct_jump()
        else:
            encoder.on_indirect(value)


class TestPathEncoderProperties:
    @given(events=st.lists(_EVENT, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_encoding_deterministic(self, events):
        a = LoopPathEncoder()
        b = LoopPathEncoder()
        _apply_events(a, events)
        _apply_events(b, events)
        assert a.finish() == b.finish()

    @given(events=st.lists(_EVENT, min_size=1, max_size=4),
           other=st.lists(_EVENT, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_distinct_short_event_sequences_have_distinct_encodings(self, events, other):
        """Below the truncation limit, different (cond/jump) sequences encode
        differently unless they are bit-equivalent by construction."""
        config = LoFatConfig()
        a = LoopPathEncoder(config)
        b = LoopPathEncoder(config)
        _apply_events(a, events)
        _apply_events(b, other)
        enc_a, enc_b = a.finish(), b.finish()
        if enc_a.bits == enc_b.bits:
            # Equal encodings are allowed only when the per-event bit strings
            # coincide (e.g. a taken conditional and a jump both encode '1').
            assert enc_a.width == enc_b.width
        else:
            assert enc_a.path_id != enc_b.path_id

    @given(events=st.lists(_EVENT, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_encoding_width_never_exceeds_limit(self, events):
        config = LoFatConfig(max_branches_per_path=16)
        encoder = LoopPathEncoder(config)
        _apply_events(encoder, events)
        encoding = encoder.finish()
        assert encoding.width <= config.max_branches_per_path
        assert encoding.branch_count == len(events)

    @given(bits=st.text(alphabet="01", max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_serialisation_roundtrip_uniqueness(self, bits):
        a = PathEncoding(bits=bits)
        b = PathEncoding(bits=bits)
        assert a.to_bytes() == b.to_bytes()
        assert a.path_id == b.path_id


class TestCounterMemoryProperties:
    @given(paths=st.lists(st.text(alphabet="01", min_size=1, max_size=8), min_size=1,
                          max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_total_iterations_equals_recorded_paths(self, paths):
        memory = LoopCounterMemory(LoFatConfig(counter_width_bits=16))
        for bits in paths:
            memory.record_path(PathEncoding(bits=bits))
        assert memory.total_iterations == len(paths)
        assert memory.distinct_paths == len(set(paths))

    @given(paths=st.lists(st.text(alphabet="01", min_size=1, max_size=8), min_size=1,
                          max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_first_seen_order_matches_input_order(self, paths):
        memory = LoopCounterMemory(LoFatConfig(counter_width_bits=16))
        for bits in paths:
            memory.record_path(PathEncoding(bits=bits))
        seen = []
        for bits in paths:
            if bits not in seen:
                seen.append(bits)
        assert [bits for bits, _ in memory.paths_in_first_seen_order()] == seen


class TestTargetCamProperties:
    @given(targets=st.lists(st.integers(min_value=0, max_value=0xFFFFFFFC), max_size=64),
           bits=st.integers(min_value=2, max_value=6))
    @settings(max_examples=150, deadline=None)
    def test_codes_are_stable_and_bounded(self, targets, bits):
        cam = TargetCam(code_bits=bits)
        codes = {}
        for target in targets:
            code = cam.encode(target)
            assert 0 <= code < (1 << bits)
            if target in codes:
                assert codes[target] == code
            elif code != 0:
                codes[target] = code
        assert cam.occupancy <= cam.capacity
        # Distinct non-overflow codes never collide.
        assert len(set(codes.values())) == len(codes)


class TestMeasurementProperties:
    @given(iterations=st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_figure4_measurement_deterministic_per_input(self, iterations):
        workload = get_workload("figure4_loop")
        program = workload.build()
        _, a = attest_execution(program, inputs=[iterations])
        _, b = attest_execution(program, inputs=[iterations])
        assert a.measurement == b.measurement
        assert a.metadata.to_bytes() == b.metadata.to_bytes()

    @given(iterations=st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_event_conservation_invariant(self, iterations):
        """hashed pairs + compressed pairs == control-flow events, always."""
        workload = get_workload("figure4_loop")
        program = workload.build()
        result, measurement = attest_execution(program, inputs=[iterations])
        stats = measurement.stats
        assert (stats["pairs_hashed"] + stats["pairs_compressed"]
                == result.trace.control_flow_events)

    @given(iterations=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_metadata_iterations_match_input(self, iterations):
        """The figure-4 loop reports exactly the requested iteration count."""
        workload = get_workload("figure4_loop")
        program = workload.build()
        _, measurement = attest_execution(program, inputs=[iterations])
        loop_records = measurement.metadata.loops
        assert len(loop_records) == (1 if iterations >= 1 else 0)
        if loop_records:
            assert loop_records[0].iterations == iterations


class TestSyntheticGeneratorProperties:
    @given(branches=st.integers(min_value=1, max_value=10),
           filler=st.integers(min_value=0, max_value=4),
           iterations=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_match_reference_model(self, branches, filler,
                                                      iterations, seed):
        generator = SyntheticWorkloadGenerator(
            branches_per_iteration=branches,
            filler_per_branch=filler,
            iterations=iterations,
            seed=seed,
        )
        workload = generator.workload()
        program = assemble(workload.source)
        cpu = Cpu(program)
        result = cpu.run()
        assert result.output == workload.expected_output

    @given(branches=st.integers(min_value=1, max_value=8),
           iterations=st.integers(min_value=2, max_value=10),
           seed=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_attestation_invariants_hold_on_random_programs(self, branches,
                                                            iterations, seed):
        generator = SyntheticWorkloadGenerator(
            branches_per_iteration=branches,
            filler_per_branch=1,
            iterations=iterations,
            seed=seed,
        )
        program = assemble(generator.source())
        result, measurement = attest_execution(program)
        stats = measurement.stats
        assert (stats["pairs_hashed"] + stats["pairs_compressed"]
                == result.trace.control_flow_events)
        assert stats["hash_engine"]["dropped_pairs"] == 0
        for loop in measurement.metadata:
            assert sum(p.iterations for p in loop.paths) == loop.iterations
