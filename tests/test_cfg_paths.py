"""Unit tests for the verifier-side path checker."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.loops import find_natural_loops
from repro.cfg.paths import EdgeValidity, PathChecker
from repro.cpu.core import run_program
from repro.isa.assembler import assemble
from repro.workloads import get_workload


@pytest.fixture
def figure4_setup():
    workload = get_workload("figure4_loop")
    program = workload.build()
    cfg = build_cfg(program)
    return workload, program, cfg, PathChecker(cfg)


class TestEdgeValidity:
    def test_valid_conditional_edges(self, figure4_setup):
        workload, program, cfg, checker = figure4_setup
        result = run_program(program, inputs=list(workload.inputs))
        for record in result.trace.control_flow_records:
            verdict = checker.classify_edge(*record.src_dest)
            assert verdict.ok, "benign edge %#x->%#x judged %s" % (
                record.pc, record.next_pc, verdict)

    def test_invalid_target_outside_program(self, figure4_setup):
        _, program, _, checker = figure4_setup
        branch_addr = None
        for instr in program.instructions:
            if instr.is_conditional_branch:
                branch_addr = instr.address
                break
        assert checker.classify_edge(branch_addr, 0xFFFF0000) is EdgeValidity.INVALID_TARGET

    def test_invalid_source_outside_program(self, figure4_setup):
        _, program, _, checker = figure4_setup
        assert checker.classify_edge(0xFFFF0000, program.entry) is EdgeValidity.INVALID_SOURCE

    def test_conditional_to_arbitrary_address_rejected(self, figure4_setup):
        _, program, cfg, checker = figure4_setup
        branch = next(i for i in program.instructions if i.is_conditional_branch)
        # Jumping from a conditional branch to the entry point is not one of
        # its two legal successors.
        bogus_target = program.entry
        if bogus_target in (branch.address + 4, branch.address + branch.imm):
            bogus_target = branch.address + 8
        verdict = checker.classify_edge(branch.address, bogus_target)
        assert verdict is EdgeValidity.NOT_AN_EDGE

    def test_transfer_from_non_terminator_rejected(self, figure4_setup):
        _, program, cfg, checker = figure4_setup
        # Find a non-control-flow instruction that is not a block terminator.
        for block in cfg.blocks:
            if block.size >= 2:
                addr = block.instructions[0].address
                verdict = checker.classify_edge(addr, addr + 4)
                assert verdict is EdgeValidity.NOT_AN_EDGE
                break

    def test_return_to_non_call_site_rejected(self):
        program = get_workload("vulnerable_process").build()
        checker = PathChecker(build_cfg(program))
        # The return inside process(): returning into secret_gadget is illegal.
        ret_addr = None
        for instr in program.instructions:
            if instr.is_return:
                ret_addr = instr.address
        assert ret_addr is not None
        verdict = checker.classify_edge(ret_addr, program.symbols["secret_gadget"])
        assert verdict is EdgeValidity.NOT_AN_EDGE

    def test_indirect_call_to_function_entry_allowed(self):
        program = get_workload("dispatcher").build()
        checker = PathChecker(build_cfg(program))
        call_addr = None
        for instr in program.instructions:
            if instr.is_indirect_jump and instr.writes_link_register:
                call_addr = instr.address
        assert call_addr is not None
        verdict = checker.classify_edge(call_addr, program.symbols["handler_sample"])
        assert verdict is EdgeValidity.VALID_INDIRECT


class TestPathChecking:
    @pytest.mark.parametrize("workload_name", [
        "figure4_loop", "bubble_sort", "syringe_pump", "fibonacci",
        "dispatcher", "crc32", "binary_search",
    ])
    def test_benign_traces_are_valid_paths(self, workload_name):
        workload = get_workload(workload_name)
        program = workload.build()
        checker = PathChecker(build_cfg(program))
        result = run_program(program, inputs=list(workload.inputs))
        outcome = checker.check_path(result.trace.executed_edges)
        assert outcome.valid, "violation at %s" % (outcome.first_violation,)

    def test_tampered_trace_is_rejected(self):
        workload = get_workload("figure4_loop")
        program = workload.build()
        checker = PathChecker(build_cfg(program))
        result = run_program(program, inputs=list(workload.inputs))
        edges = list(result.trace.executed_edges)
        # Redirect one edge to an arbitrary (but in-program) address that is
        # not a successor of its source.
        src, _ = edges[2]
        edges[2] = (src, program.entry + 4)
        outcome = checker.check_path(edges)
        assert not outcome.valid
        assert outcome.violation_index is not None

    def test_disconnected_path_is_rejected(self):
        workload = get_workload("figure4_loop")
        program = workload.build()
        checker = PathChecker(build_cfg(program))
        result = run_program(program, inputs=list(workload.inputs))
        edges = list(result.trace.executed_edges)
        # Drop an intermediate edge: the resulting sequence "teleports".
        del edges[1]
        outcome = checker.check_path(edges)
        assert not outcome.valid

    def test_verdict_recording(self):
        workload = get_workload("figure4_loop")
        program = workload.build()
        checker = PathChecker(build_cfg(program))
        result = run_program(program, inputs=list(workload.inputs))
        outcome = checker.check_path(result.trace.executed_edges, record_verdicts=True)
        assert outcome.valid
        assert len(outcome.verdicts) == len(result.trace.executed_edges)
        assert all(verdict.ok for verdict in outcome.verdicts)

    def test_empty_path_is_valid(self, figure4_setup):
        *_, checker = figure4_setup
        assert checker.check_path([]).valid


class TestLoopPathEnumeration:
    def test_figure4_loop_has_two_paths(self, figure4_setup):
        _, program, cfg, checker = figure4_setup
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        paths = checker.enumerate_loop_paths(loop.header, loop.body)
        assert len(paths) == 2
        assert all(path[0] == loop.header and path[-1] == loop.header for path in paths)

    def test_enumeration_respects_limit(self, figure4_setup):
        _, _, cfg, checker = figure4_setup
        loop = find_natural_loops(cfg)[0]
        assert len(checker.enumerate_loop_paths(loop.header, loop.body, limit=1)) == 1
