"""Unit tests for the workload-language compiler (repro.lang).

Covers the lexer, the parser, code generation semantics (checked by
executing compiled programs on the core model against plain-Python
oracles), the compiler's error paths, and the central contract: the
CFG/loop metadata the code generator *predicts* equals what the verifier's
:mod:`repro.cfg` analysis *computes* from the binary.
"""

import pytest

from repro.cpu.core import run_program
from repro.lang import (
    CodegenError,
    LexError,
    ParseError,
    SemanticError,
    compile_source,
    parse,
    tokenize,
)


def _run(source, inputs=()):
    compiled = compile_source(source, name="t", verify=True)
    return run_program(compiled.program, inputs=list(inputs))


def _main(body, inputs=()):
    return _run("fn main() {\n%s\n}" % body, inputs)


class TestLexer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize("fn x 12 + ;")]
        assert kinds == ["keyword", "name", "int", "op", "op", "eof"]

    def test_hex_and_binary_literals(self):
        tokens = tokenize("0xEDB88320 0b1010 42")
        assert [t.value for t in tokens[:-1]] == [0xEDB88320, 10, 42]

    def test_comments_are_skipped(self):
        tokens = tokenize("1 // comment\n# another\n2")
        assert [t.value for t in tokens[:-1]] == [1, 2]
        assert [t.line for t in tokens[:-1]] == [1, 3]

    def test_two_char_operators_win(self):
        texts = [t.text for t in tokenize("a<=b<<c&&d")[:-1]]
        assert texts == ["a", "<=", "b", "<<", "c", "&&", "d"]

    def test_literal_too_wide_rejected(self):
        with pytest.raises(LexError, match="32 bits"):
            tokenize("0x1FFFFFFFF")

    def test_bad_literal_rejected(self):
        with pytest.raises(LexError, match="invalid integer"):
            tokenize("12xy")

    def test_unexpected_character_rejected(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")


class TestParser:
    def test_precedence_mul_over_add(self):
        ast = parse("fn main() { return 1 + 2 * 3; }")
        expr = ast.functions[0].body[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_else_if_chain(self):
        ast = parse("""
            fn main() {
                if (1) { return 1; } else if (2) { return 2; }
                else { return 3; }
            }
        """)
        outer = ast.functions[0].body[0]
        assert outer.else_body is not None
        assert outer.else_body[0].else_body is not None

    def test_index_assignment_target(self):
        ast = parse("fn main() { a[1] = 2; }")
        stmt = ast.functions[0].body[0]
        assert type(stmt).__name__ == "IndexAssign"

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("fn main() { 1 + 2 = 3; }")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("fn main() { var x = 1 }")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError, match="unterminated block"):
            parse("fn main() { while (1) { ")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError, match="no functions"):
            parse("   // nothing here\n")

    def test_call_on_non_name_rejected(self):
        with pytest.raises(ParseError, match="named functions"):
            parse("fn main() { (1 + 2)(); }")


class TestCodegenSemantics:
    @pytest.mark.parametrize("expr,expected", [
        ("17 + 5", 22), ("17 - 5", 12), ("17 * 5", 85), ("17 / 5", 3),
        ("17 % 5", 2), ("-17 / 5", -3), ("-17 % 5", -2),  # RV32 rem/div
        ("17 & 5", 1), ("17 | 5", 21), ("17 ^ 5", 20),
        ("1 << 10", 1024), ("-1 >> 28", 15),  # >> is logical (srl)
        ("17 < 5", 0), ("5 < 17", 1), ("17 <= 17", 1), ("17 > 5", 1),
        ("17 >= 18", 0), ("17 == 17", 1), ("17 != 17", 0),
        ("!0", 1), ("!7", 0), ("~0", -1), ("-(3 + 4)", -7),
        ("1 && 2", 1), ("1 && 0", 0), ("0 || 3", 1), ("0 || 0", 0),
    ])
    def test_expression_value(self, expr, expected):
        result = _main("return %s;" % expr)
        assert result.exit_code == expected

    def test_print_renders_signed(self):
        result = _main("print(0 - 42); printc(10); return 0;")
        assert result.output == "-42\n"

    def test_read_consumes_inputs_in_order(self):
        result = _main("print(read() - read()); return 0;", inputs=[7, 3])
        assert result.output == "4"

    def test_short_circuit_skips_side_effects(self):
        # The right operand would consume input; it must not run.
        result = _main("var x = 0 && read(); print(x); return 0;", inputs=[])
        assert result.output == "0"

    def test_while_loop_sum(self):
        result = _main("""
            var total = 0;
            var i = 0;
            while (i < 10) { total = total + i; i = i + 1; }
            return total;
        """)
        assert result.exit_code == 45

    def test_break_and_continue(self):
        result = _main("""
            var total = 0;
            var i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2) { continue; }
                total = total + i;
            }
            return total;
        """)
        assert result.exit_code == 2 + 4 + 6 + 8 + 10

    def test_recursion(self):
        result = _run("""
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(10); }
        """)
        assert result.exit_code == 55

    def test_array_zero_initialised(self):
        result = _main("""
            array a[8];
            var total = 0;
            var i = 0;
            while (i < 8) { total = total + a[i]; i = i + 1; }
            return total;
        """)
        assert result.exit_code == 0

    def test_array_store_load(self):
        result = _main("""
            array a[4];
            a[0] = 3; a[1] = 5; a[3] = a[0] * a[1];
            return a[3];
        """)
        assert result.exit_code == 15

    def test_arrays_pass_as_pointers(self):
        result = _run("""
            fn fill(buf, n) {
                var i = 0;
                while (i < n) { buf[i] = i * i; i = i + 1; }
                return 0;
            }
            fn main() {
                array a[5];
                fill(a, 5);
                return a[4];
            }
        """)
        assert result.exit_code == 16

    def test_large_frame_addressing(self):
        # 1000 words exceeds the 12-bit immediate range: the wide-offset
        # path (li + add through the scratch register) must kick in.
        result = _main("""
            array a[1000];
            a[999] = 77;
            return a[999];
        """)
        assert result.exit_code == 77

    def test_fall_off_end_returns_zero(self):
        assert _main("var x = 5;").exit_code == 0

    def test_seven_arguments(self):
        # Seven is the call-site ceiling: arguments are staged through the
        # expression temporaries t0-t6 before moving into a0-a6.
        result = _run("""
            fn sum7(a, b, c, d, e, f, g) {
                return a + b + c + d + e + f + g;
            }
            fn main() { return sum7(1, 2, 3, 4, 5, 6, 7); }
        """)
        assert result.exit_code == 28

    def test_eight_arguments_at_call_site_rejected(self):
        from repro.lang import CodegenError
        with pytest.raises(CodegenError, match="too deep"):
            compile_source("""
                fn sum8(a, b, c, d, e, f, g, h) {
                    return a + b + c + d + e + f + g + h;
                }
                fn main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
            """)


class TestCompileErrors:
    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError, match="main"):
            compile_source("fn helper() { return 1; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(SemanticError, match="main"):
            compile_source("fn main(x) { return x; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError, match="defined twice"):
            compile_source("fn main() { return 0; } fn main() { return 1; }")

    def test_unknown_variable_rejected(self):
        with pytest.raises(SemanticError, match="ghost"):
            compile_source("fn main() { return ghost; }")

    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError, match="ghost"):
            compile_source("fn main() { return ghost(); }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SemanticError, match="argument"):
            compile_source("""
                fn f(a, b) { return a + b; }
                fn main() { return f(1); }
            """)

    def test_unreachable_function_rejected(self):
        # Loops in never-called functions are invisible to the verifier's
        # analysis (dominator trees are rooted at reachable entries only),
        # so the compiler rejects dead functions outright.
        with pytest.raises(SemanticError, match="never called"):
            compile_source("""
                fn dead(x) { return x; }
                fn main() { return 0; }
            """)

    def test_expression_too_deep_rejected(self):
        nested = "1 + (" * 10 + "2" + ")" * 10
        with pytest.raises(CodegenError, match="too deep"):
            compile_source("fn main() { return %s; }" % nested)

    def test_too_many_params_rejected(self):
        params = ", ".join("p%d" % i for i in range(9))
        with pytest.raises(SemanticError, match="parameters"):
            compile_source("""
                fn f(%s) { return 0; }
                fn main() { return f(0,0,0,0,0,0,0,0,0); }
            """ % params)

    def test_reserved_name_rejected(self):
        with pytest.raises(SemanticError, match="__"):
            compile_source("fn main() { var a__b = 1; return a__b; }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="builtin"):
            compile_source("""
                fn read() { return 1; }
                fn main() { return read(); }
            """)

    def test_oversized_array_rejected(self):
        with pytest.raises(SemanticError, match="array"):
            compile_source("fn main() { array a[100000]; return 0; }")


class TestMetadataContract:
    """Predicted leaders/loops/functions == repro.cfg analysis results."""

    PROGRAMS = {
        "straight": "fn main() { return 1 + 2; }",
        "single_loop": """
            fn main() {
                var i = 0;
                while (i < 5) { i = i + 1; }
                return i;
            }
        """,
        "if_in_loop": """
            fn main() {
                var i = 0;
                var n = 0;
                while (i < 8) {
                    if (i % 2) { n = n + i; } else { n = n - 1; }
                    i = i + 1;
                }
                return n;
            }
        """,
        "loop_in_both_arms": """
            fn main() {
                var n = read();
                var total = 0;
                if (n > 0) {
                    var i = 0;
                    while (i < n) { total = total + i; i = i + 1; }
                } else {
                    var j = 0;
                    while (j > n) { total = total - 1; j = j - 1; }
                }
                return total;
            }
        """,
        "no_back_edge": """
            fn main() {
                while (read()) { return 1; }
                return 0;
            }
        """,
        "call_graph": """
            fn leaf(x) { return x * 2; }
            fn mid(x) {
                var i = 0;
                while (i < 3) { x = leaf(x); i = i + 1; }
                return x;
            }
            fn main() { return mid(1) % 256; }
        """,
    }

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_verification_passes(self, name):
        compiled = compile_source(self.PROGRAMS[name], name=name)
        stats = compiled.verify_against_analysis()
        assert stats["instructions"] > 0

    def test_depth_five_nest(self):
        source = self.deep_nest(5)
        compiled = compile_source(source, name="deep", verify=True)
        depths = sorted(loop.depth for loop in compiled.loops)
        assert depths == [1, 2, 3, 4, 5]

    @staticmethod
    def deep_nest(depth):
        head = "fn main() {\n"
        body = ""
        pad = "    "
        for level in range(depth):
            body += "%svar i%d = 0;\n%swhile (i%d < 2) {\n" % (
                pad, level, pad, level)
            pad += "    "
        body += "%si0 = i0 + 0;\n" % pad
        for level in range(depth - 1, -1, -1):
            body += "%si%d = i%d + 1;\n" % (pad, level, level)
            pad = pad[:-4]
            body += "%s}\n" % pad
        return head + body + "    return 0;\n}"

    def test_loops_carry_function_attribution(self):
        compiled = compile_source(self.PROGRAMS["call_graph"], name="attr",
                                  verify=True)
        assert {loop.function for loop in compiled.loops} == {"mid"}

    def test_label_addresses_match_symbols(self):
        compiled = compile_source(self.PROGRAMS["call_graph"], name="sym",
                                  verify=True)
        for fn_name, address in compiled.functions.items():
            assert compiled.program.symbols[fn_name] == address
