"""Tests for measurement-database precomputation, export and import."""

import json

import pytest

from repro.attestation import Prover, Verifier
from repro.workloads import get_workload


@pytest.fixture
def setup():
    workload = get_workload("figure4_loop")
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())
    return workload, program, prover, verifier


class TestMeasurementDatabase:
    def test_precompute_matches_prover_report(self, setup):
        workload, _, prover, verifier = setup
        expected_a, expected_l = verifier.precompute_measurement(workload.name, [5])
        report = prover.attest(verifier.challenge(workload.name, [5]))
        assert report.measurement == expected_a
        assert report.metadata.to_bytes() == expected_l

    def test_export_import_roundtrip(self, setup):
        workload, program, prover, verifier = setup
        for iterations in (3, 5, 8):
            verifier.precompute_measurement(workload.name, [iterations])
        payload = verifier.export_measurement_database()

        fresh = Verifier()
        fresh.register_program(workload.name, program)
        fresh.register_device_key("prover-0", prover.keystore.export_for_verifier())
        assert fresh.import_measurement_database(payload) == 3

        report = prover.attest(fresh.challenge(workload.name, [5]))
        assert fresh.verify(report, mode="database").accepted

    def test_export_is_valid_json_with_hex_values(self, setup):
        workload, _, _, verifier = setup
        verifier.precompute_measurement(workload.name, [4])
        document = json.loads(verifier.export_measurement_database())
        assert document["version"] == 1
        entry = document["entries"][0]
        assert entry["program_id"] == workload.name
        assert len(bytes.fromhex(entry["measurement"])) == 64

    def test_import_rejects_unknown_version(self, setup):
        *_, verifier = setup
        with pytest.raises(ValueError):
            verifier.import_measurement_database(json.dumps({"version": 99, "entries": []}))

    def test_database_mode_rejects_other_input(self, setup):
        workload, _, prover, verifier = setup
        verifier.precompute_measurement(workload.name, [5])
        # Attest a different input: no reference entry exists for it.
        report = prover.attest(verifier.challenge(workload.name, [6]))
        verdict = verifier.verify(report, mode="database")
        assert not verdict.accepted

    def test_empty_database_exports(self, setup):
        *_, verifier = setup
        document = json.loads(verifier.export_measurement_database())
        assert document["entries"] == []
