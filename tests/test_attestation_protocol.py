"""Unit tests for the protocol messages."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.lofat.metadata import LoopMetadata, LoopRecord, PathRecord
from repro.lofat.path_encoder import PathEncoding


def make_metadata():
    metadata = LoopMetadata()
    metadata.add(LoopRecord(
        entry=0x40, exit_node=0x80, depth=1, iterations=3,
        paths=[PathRecord(PathEncoding(bits="01"), iterations=3, first_seen_index=0)],
    ))
    return metadata


#: Hypothesis strategies for wire-representable field values.
_program_ids = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=40)
_inputs = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=8).map(tuple)
_nonces = st.binary(min_size=0, max_size=64)
_schemes = st.sampled_from(["lofat", "cflat", "static"])


class TestChallenge:
    def test_serialisation_roundtrip_fields(self):
        challenge = AttestationChallenge("prog", (1, 2, 3), b"\xAA" * 16)
        blob = challenge.to_bytes()
        assert b"prog" in blob
        assert blob.endswith(b"\xAA" * 16)

    def test_serialisation_differs_with_inputs(self):
        a = AttestationChallenge("prog", (1,), b"n" * 16)
        b = AttestationChallenge("prog", (2,), b"n" * 16)
        assert a.to_bytes() != b.to_bytes()

    def test_negative_inputs_serialise(self):
        challenge = AttestationChallenge("prog", (-1,), b"n" * 16)
        assert challenge.to_bytes()  # must not raise

    def test_challenge_is_immutable(self):
        challenge = AttestationChallenge("prog", (1,), b"n")
        with pytest.raises(AttributeError):
            challenge.program_id = "other"

    def test_scheme_defaults_to_lofat(self):
        assert AttestationChallenge("prog", (1,), b"n").scheme == "lofat"


class TestChallengeRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(program_id=_program_ids, inputs=_inputs, nonce=_nonces,
           scheme=_schemes)
    def test_bytes_roundtrip_is_byte_exact(self, program_id, inputs, nonce,
                                           scheme):
        challenge = AttestationChallenge(program_id, inputs, nonce, scheme)
        blob = challenge.to_bytes()
        restored = AttestationChallenge.from_bytes(blob)
        assert restored == challenge
        assert restored.to_bytes() == blob

    @settings(max_examples=30, deadline=None)
    @given(program_id=_program_ids, inputs=_inputs, nonce=_nonces,
           scheme=_schemes)
    def test_json_roundtrip(self, program_id, inputs, nonce, scheme):
        challenge = AttestationChallenge(program_id, inputs, nonce, scheme)
        assert AttestationChallenge.from_json(challenge.to_json()) == challenge

    def test_long_nonce_survives_roundtrip(self):
        """Regression: the 1-byte length field used to truncate nonces >= 256
        bytes silently; the field is now 2 bytes wide."""
        nonce = bytes(range(256)) + b"tail"
        challenge = AttestationChallenge("prog", (1,), nonce)
        restored = AttestationChallenge.from_bytes(challenge.to_bytes())
        assert restored.nonce == nonce

    def test_oversized_nonce_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="nonce"):
            AttestationChallenge("prog", (), b"\x00" * 0x10000)

    def test_truncated_blob_rejected(self):
        blob = AttestationChallenge("prog", (1, 2), b"n" * 16).to_bytes()
        with pytest.raises(ValueError):
            AttestationChallenge.from_bytes(blob[:-1])

    def test_trailing_bytes_rejected(self):
        blob = AttestationChallenge("prog", (1,), b"n" * 16).to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            AttestationChallenge.from_bytes(blob + b"\x00")


class TestReport:
    def _report(self):
        return AttestationReport(
            program_id="prog",
            measurement=b"\x11" * 64,
            metadata=make_metadata(),
            nonce=b"\x22" * 16,
            signature=b"\x33" * 32,
            exit_code=0,
            output="5",
        )

    def test_payload_is_measurement_plus_metadata(self):
        report = self._report()
        assert report.payload == report.measurement + report.metadata.to_bytes()

    def test_size_accounts_for_all_parts(self):
        report = self._report()
        assert report.size_bytes == 64 + report.metadata.size_bytes + 32

    def test_describe(self):
        info = self._report().describe()
        assert info["program_id"] == "prog"
        assert info["loop_executions"] == 1
        assert info["report_bytes"] == self._report().size_bytes
        assert info["scheme"] == "lofat"


class TestReportRoundTrip:
    def _report(self, scheme="lofat", metadata=None, exit_code=0):
        return AttestationReport(
            program_id="prog",
            measurement=b"\x11" * (32 if scheme == "static" else 64),
            metadata=make_metadata() if metadata is None else metadata,
            nonce=b"\x22" * 16,
            signature=b"\x33" * 32,
            exit_code=exit_code,
            output="5",
            scheme=scheme,
        )

    @pytest.mark.parametrize("scheme", ["lofat", "cflat", "static"])
    def test_bytes_roundtrip_is_byte_exact(self, scheme):
        metadata = make_metadata() if scheme == "lofat" else LoopMetadata()
        report = self._report(scheme=scheme, metadata=metadata)
        blob = report.to_bytes()
        restored = AttestationReport.from_bytes(blob)
        assert restored.program_id == report.program_id
        assert restored.scheme == scheme
        assert restored.measurement == report.measurement
        assert restored.metadata.to_bytes() == report.metadata.to_bytes()
        assert restored.nonce == report.nonce
        assert restored.signature == report.signature
        assert restored.output == report.output
        assert restored.to_bytes() == blob

    def test_payload_survives_roundtrip(self):
        """The signed payload must be bit-identical after deserialisation,
        otherwise signatures would not verify on the receiving side."""
        report = self._report()
        assert AttestationReport.from_bytes(report.to_bytes()).payload == \
               report.payload

    def test_negative_exit_code_roundtrip(self):
        report = self._report(exit_code=-1)
        assert AttestationReport.from_bytes(report.to_bytes()).exit_code == -1

    def test_json_roundtrip(self):
        report = self._report()
        restored = AttestationReport.from_json(report.to_json())
        assert restored.to_bytes() == report.to_bytes()

    def test_malformed_metadata_raises_valueerror_not_indexerror(self):
        """A well-framed report whose metadata block is internally truncated
        must fail with the wire format's ValueError, not crash parsing."""
        report = self._report(metadata=LoopMetadata())
        blob = bytearray(report.to_bytes())
        # The empty metadata block is b'\x00\x00' right after the 4-byte
        # length field; claim one loop record without providing it.
        marker = blob.find(b"\x02\x00\x00\x00\x00\x00")  # len=2, count=0
        assert marker != -1
        blob[marker + 4:marker + 6] = b"\x01\x00"
        with pytest.raises(ValueError):
            AttestationReport.from_bytes(bytes(blob))
        with pytest.raises(ValueError):
            LoopMetadata.from_bytes(b"\x01\x00")

    def test_real_report_roundtrip_all_schemes(self):
        """End-to-end: reports produced by a live prover round-trip and still
        verify after crossing the wire."""
        from repro.attestation import Prover, Verifier
        from repro.workloads import get_workload

        workload = get_workload("figure4_loop")
        program = workload.build()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())
        for scheme in ("lofat", "cflat", "static"):
            challenge = verifier.challenge(workload.name, workload.inputs,
                                           scheme=scheme)
            challenge_wire = AttestationChallenge.from_bytes(challenge.to_bytes())
            assert challenge_wire == challenge
            report = prover.attest(challenge)
            restored = AttestationReport.from_bytes(report.to_bytes())
            assert restored.to_bytes() == report.to_bytes()
            assert verifier.verify(restored).accepted, scheme
