"""Unit tests for the protocol messages."""

import pytest

from repro.attestation.protocol import AttestationChallenge, AttestationReport
from repro.lofat.metadata import LoopMetadata, LoopRecord, PathRecord
from repro.lofat.path_encoder import PathEncoding


def make_metadata():
    metadata = LoopMetadata()
    metadata.add(LoopRecord(
        entry=0x40, exit_node=0x80, depth=1, iterations=3,
        paths=[PathRecord(PathEncoding(bits="01"), iterations=3, first_seen_index=0)],
    ))
    return metadata


class TestChallenge:
    def test_serialisation_roundtrip_fields(self):
        challenge = AttestationChallenge("prog", (1, 2, 3), b"\xAA" * 16)
        blob = challenge.to_bytes()
        assert b"prog" in blob
        assert blob.endswith(b"\xAA" * 16)

    def test_serialisation_differs_with_inputs(self):
        a = AttestationChallenge("prog", (1,), b"n" * 16)
        b = AttestationChallenge("prog", (2,), b"n" * 16)
        assert a.to_bytes() != b.to_bytes()

    def test_negative_inputs_serialise(self):
        challenge = AttestationChallenge("prog", (-1,), b"n" * 16)
        assert challenge.to_bytes()  # must not raise

    def test_challenge_is_immutable(self):
        challenge = AttestationChallenge("prog", (1,), b"n")
        with pytest.raises(AttributeError):
            challenge.program_id = "other"


class TestReport:
    def _report(self):
        return AttestationReport(
            program_id="prog",
            measurement=b"\x11" * 64,
            metadata=make_metadata(),
            nonce=b"\x22" * 16,
            signature=b"\x33" * 32,
            exit_code=0,
            output="5",
        )

    def test_payload_is_measurement_plus_metadata(self):
        report = self._report()
        assert report.payload == report.measurement + report.metadata.to_bytes()

    def test_size_accounts_for_all_parts(self):
        report = self._report()
        assert report.size_bytes == 64 + report.metadata.size_bytes + 32

    def test_describe(self):
        info = self._report().describe()
        assert info["program_id"] == "prog"
        assert info["loop_executions"] == 1
        assert info["report_bytes"] == self._report().size_bytes
