"""Tests for the analysis drivers (performance comparison, sweeps, tables)."""

import pytest

from repro.analysis.performance import compare_all_workloads, compare_workload
from repro.analysis.report import format_percent, format_table
from repro.analysis.sweep import (
    area_sweep,
    buffer_depth_sweep,
    granularity_sweep,
    hash_density_sweep,
)
from repro.schemes.cflat import CFlatCostModel
from repro.workloads import get_workload


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_column_selection_and_title(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"], title="T")
        assert text.splitlines()[0] == "T"
        assert "b" not in text.splitlines()[1]

    def test_missing_values_render_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # must not raise

    def test_float_formatting(self):
        text = format_table([{"x": 1.23456}])
        assert "1.235" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_format_percent(self):
        assert format_percent(0.0423) == "4.2%"


class TestWorkloadComparison:
    def test_lofat_has_zero_overhead(self):
        comparison = compare_workload(get_workload("figure4_loop"))
        assert comparison.lofat_overhead == 0.0
        assert comparison.lofat_cycles == comparison.baseline_cycles

    def test_cflat_overhead_positive_and_linear_in_events(self):
        cost = CFlatCostModel()
        comparison = compare_workload(get_workload("crc32"), cflat_cost=cost)
        expected = cost.per_event_cycles * comparison.control_flow_events
        assert comparison.cflat_cycles - comparison.baseline_cycles == expected
        assert comparison.cflat_overhead > 0

    def test_row_structure(self):
        row = compare_workload(get_workload("auth_check")).as_row()
        for key in ("workload", "cycles", "cf_events", "lofat_overhead_%",
                    "cflat_overhead_%", "compression"):
            assert key in row

    def test_compare_all(self):
        comparisons = compare_all_workloads(
            [get_workload("auth_check"), get_workload("figure4_loop")])
        assert len(comparisons) == 2
        assert all(c.lofat_overhead == 0.0 for c in comparisons)

    def test_compression_ratio_bounds(self):
        comparison = compare_workload(get_workload("crc32"))
        assert 0.0 < comparison.compression_ratio <= 1.0

    def test_event_density(self):
        comparison = compare_workload(get_workload("figure4_loop"))
        assert 0.0 < comparison.event_density < 1.0


class TestSweeps:
    def test_area_sweep_contains_paper_point(self):
        rows = area_sweep(nesting_depths=(3,), path_bits=(16,))
        assert rows[0]["bram36"] == 49
        assert rows[0]["nested_loops"] == 3

    def test_area_sweep_monotone_in_depth(self):
        rows = area_sweep(nesting_depths=(1, 2, 3), path_bits=(16,))
        brams = [row["bram36"] for row in rows]
        assert brams == sorted(brams)

    def test_buffer_depth_sweep_reports_drops_only_for_tiny_buffers(self):
        rows = buffer_depth_sweep([get_workload("crc32")], buffer_depths=(1, 8))
        by_depth = {row["buffer_depth"]: row for row in rows}
        assert by_depth[8]["dropped_pairs"] == 0
        assert by_depth[1]["max_occupancy"] <= 1

    def test_granularity_sweep_rows(self):
        rows = granularity_sweep(get_workload("dispatcher"),
                                 indirect_bits=(2, 4), max_branches=(8, 16))
        assert len(rows) == 4
        assert all("loop_mem_kbits" in row for row in rows)
        # Larger path IDs cost exponentially more memory.
        small = next(r for r in rows if r["path_bits"] == 8 and r["indirect_bits"] == 2)
        large = next(r for r in rows if r["path_bits"] == 16 and r["indirect_bits"] == 2)
        assert large["loop_mem_kbits"] > small["loop_mem_kbits"]

    def test_hash_density_sweep(self):
        rows = hash_density_sweep([get_workload("figure4_loop"), get_workload("crc32")])
        assert len(rows) == 2
        for row in rows:
            assert row["dropped"] == 0
            assert 0 < row["density"] < 1
