"""Unit tests for the FPGA area model (paper §6.2)."""

import pytest

from repro.lofat.area_model import (
    AreaModel,
    PULPINO_BASELINE_LUTS,
    PULPINO_BASELINE_REGISTERS,
    VIRTEX7_XC7Z020,
)
from repro.lofat.config import LoFatConfig


class TestPaperConfigurationPoint:
    def test_16_brams_per_loop(self):
        assert AreaModel(LoFatConfig()).loop_counter_brams_per_loop() == 16

    def test_48_brams_for_three_nested_loops(self):
        assert AreaModel(LoFatConfig()).loop_counter_brams_total() == 48

    def test_49_brams_total(self):
        assert AreaModel(LoFatConfig()).bram_blocks() == 49

    def test_loop_memory_is_1_5_mbit(self):
        model = AreaModel(LoFatConfig())
        assert LoFatConfig().total_loop_memory_bits == 1536 * 1024

    def test_utilization_close_to_paper(self):
        """Paper: ~6% of LUTs and ~4% of registers of the XC7Z020."""
        estimate = AreaModel(LoFatConfig()).estimate()
        utilization = estimate.utilization(VIRTEX7_XC7Z020)
        assert 0.04 <= utilization["luts"] <= 0.08
        assert 0.03 <= utilization["registers"] <= 0.05

    def test_logic_overhead_about_20_percent(self):
        estimate = AreaModel(LoFatConfig()).estimate()
        assert 0.15 <= estimate.logic_overhead_vs_pulpino() <= 0.25

    def test_max_clock_80_mhz(self):
        assert AreaModel(LoFatConfig()).estimate().max_clock_mhz == pytest.approx(80.0)

    def test_clock_higher_without_cam(self):
        """Eliminating the CAM access allows a much higher clock (§6.1)."""
        no_cam = LoFatConfig(indirect_target_bits=1, max_indirect_branches_per_path=1)
        assert AreaModel(no_cam).max_clock_mhz() > 80.0

    def test_per_component_breakdown_sums(self):
        estimate = AreaModel(LoFatConfig()).estimate()
        assert estimate.luts == sum(c["luts"] for c in estimate.per_component.values())
        assert estimate.registers == sum(
            c["registers"] for c in estimate.per_component.values())

    def test_as_dict(self):
        info = AreaModel(LoFatConfig()).estimate().as_dict()
        assert info["bram36"] == 49


class TestScaling:
    def test_bram_scales_with_nesting_depth(self):
        counts = [
            AreaModel(LoFatConfig(max_nested_loops=depth)).bram_blocks()
            for depth in (1, 2, 3)
        ]
        assert counts == [17, 33, 49]

    def test_bram_drops_with_smaller_path_id(self):
        small = AreaModel(LoFatConfig(max_branches_per_path=12,
                                      max_indirect_branches_per_path=3)).bram_blocks()
        default = AreaModel(LoFatConfig()).bram_blocks()
        assert small < default

    def test_memory_bits_scale_exponentially_with_path_bits(self):
        a = LoFatConfig(max_branches_per_path=12, max_indirect_branches_per_path=3)
        b = LoFatConfig(max_branches_per_path=16)
        assert b.total_loop_memory_bits == 16 * a.total_loop_memory_bits

    def test_logic_grows_with_depth(self):
        small = AreaModel(LoFatConfig(max_nested_loops=1)).estimate()
        large = AreaModel(LoFatConfig(max_nested_loops=4)).estimate()
        assert large.luts > small.luts
        assert large.registers > small.registers

    def test_device_capacity_constants(self):
        assert VIRTEX7_XC7Z020.luts == 53_200
        assert VIRTEX7_XC7Z020.registers == 106_400
        assert VIRTEX7_XC7Z020.bram_bits_total == 140 * 36 * 1024

    def test_pulpino_baseline_positive(self):
        assert PULPINO_BASELINE_LUTS > 0 and PULPINO_BASELINE_REGISTERS > 0

    def test_bram_bits_include_buffer(self):
        config = LoFatConfig(hash_input_buffer_depth=8)
        model = AreaModel(config)
        assert model.bram_bits() == config.total_loop_memory_bits + 64 * 8
