"""CFG + analyzer coverage on irregular control-flow shapes.

The golden lang corpus pins the common shapes; these sources are chosen to
be awkward instead: mutual recursion, recursion mixed with iteration, and
loops whose trip counts depend on input data in ways no interval argument
can bound (Collatz).  Each program is compiled with ``verify=True`` (the
code generator's own CFG prediction must agree with the ``repro.cfg``
analysis) and then executed, checking the dynamic trace against the
analyzer's static claims.
"""

import pytest

from repro.cpu.core import Cpu, CpuConfig
from repro.dataflow import analyze_program
from repro.lang.codegen import compile_source
from repro.schemes import get_scheme

MUTUAL_RECURSION = """\
// parity by mutual recursion: two functions calling each other
fn is_even(n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
fn is_odd(n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
fn main() {
    var n = read();
    print(is_even(n));
    printc(10);
    return 0;
}
"""

COLLATZ = """\
// trip count defies interval reasoning entirely
fn main() {
    var n = read();
    var steps = 0;
    while (n != 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps = steps + 1;
    }
    print(steps);
    printc(10);
    return 0;
}
"""

RECURSIVE_SUM_OF_LOOPS = """\
// recursion whose every level runs a data-dependent loop
fn rowsum(k) {
    if (k == 0) { return 0; }
    var acc = 0;
    var i = 0;
    while (i < k) {
        acc = acc + i;
        i = i + 1;
    }
    return acc + rowsum(k - 1);
}
fn main() {
    print(rowsum(read()));
    printc(10);
    return 0;
}
"""

CASES = [
    ("mutual_recursion", MUTUAL_RECURSION, [9], "0\n"),
    ("collatz", COLLATZ, [27], "111\n"),
    ("recursive_sum_of_loops", RECURSIVE_SUM_OF_LOOPS, [6], "35\n"),
]


def _run(program, inputs):
    return Cpu(
        program,
        inputs=list(inputs),
        config=CpuConfig(max_instructions=2_000_000),
    ).run()


@pytest.mark.parametrize("name,source,inputs,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_codegen_cfg_prediction_verified(name, source, inputs, expected):
    compiled = compile_source(source, name=name, verify=True)
    result = _run(compiled.program, inputs)
    assert result.output == expected


@pytest.mark.parametrize("name,source,inputs,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_dynamic_trace_within_static_claims(name, source, inputs, expected):
    compiled = compile_source(source, name=name, verify=True)
    analysis = analyze_program(compiled.program)
    policy = analysis.policy

    result, measurement = get_scheme("lofat").measure_execution(
        compiled.program, list(inputs))
    valid_pairs = analysis.valid_pairs
    for pair in result.trace.executed_edges:
        assert pair in valid_pairs, (
            "%s: executed edge (0x%x, 0x%x) not statically valid"
            % (name, pair[0], pair[1])
        )
    for record in measurement.metadata.loops:
        assert policy.check_loop_record(record.entry, record.iterations) is None


def test_data_dependent_loops_are_unbounded():
    """No interval argument may claim a bound on Collatz-style loops."""
    for name, source in (("collatz", COLLATZ),
                         ("recursive_sum_of_loops", RECURSIVE_SUM_OF_LOOPS)):
        compiled = compile_source(source, name=name, verify=True)
        analysis = analyze_program(compiled.program)
        assert analysis.loop_bounds, name
        for header, bound in analysis.loop_bounds.items():
            assert bound.max_back_edges is None, (
                "%s: loop %#x claimed bound %r for a data-dependent loop"
                % (name, header, bound.max_back_edges)
            )


def test_mutual_recursion_cfg_shape():
    compiled = compile_source(MUTUAL_RECURSION, name="mutual", verify=True)
    analysis = analyze_program(compiled.program)
    entries = set(analysis.cfg.function_entries())
    assert compiled.functions["is_even"] in entries
    assert compiled.functions["is_odd"] in entries
    # Recursion is not iteration: no natural loop spans the call cycle.
    assert compiled.functions["is_even"] not in analysis.loop_bounds
    assert compiled.functions["is_odd"] not in analysis.loop_bounds
    # Deeper input, same static facts: trace stays within valid_pairs.
    for n in (0, 1, 13):
        result = _run(compiled.program, [n])
        assert result.output == ("1\n" if n % 2 == 0 else "0\n")
        for pair in result.trace.executed_edges:
            assert pair in analysis.valid_pairs
