"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_inputs(self):
        args = build_parser().parse_args(["run", "figure4_loop", "--inputs", "5"])
        assert args.workload == "figure4_loop"
        assert args.inputs == [5]

    def test_inputs_default_to_none(self):
        args = build_parser().parse_args(["attest", "crc32"])
        assert args.inputs is None


class TestEngineFlags:
    @pytest.mark.parametrize("command", [
        ["run", "crc32"],
        ["attest", "crc32"],
        ["campaign"],
        ["serve"],
        ["attest-remote"],
        ["workloads"],
    ])
    def test_engine_flag_parses_everywhere(self, command):
        args = build_parser().parse_args(command + ["--engine", "compiled"])
        assert args.engine == "compiled"

    def test_engine_defaults_to_none(self):
        args = build_parser().parse_args(["run", "crc32"])
        assert args.engine is None
        assert args.legacy_loop is False

    def test_unknown_engine_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "crc32", "--engine", "turbo"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_legacy_loop_is_deprecated_alias(self):
        from repro.cli import _cpu_config

        args = build_parser().parse_args(["run", "crc32", "--legacy-loop"])
        config = _cpu_config(args)
        assert config.resolved_engine() == "legacy"
        assert config.fast_path is False

    def test_explicit_engine_wins_over_alias(self):
        from repro.cli import _cpu_config

        args = build_parser().parse_args(
            ["run", "crc32", "--legacy-loop", "--engine", "compiled"])
        assert _cpu_config(args).resolved_engine() == "compiled"

    def test_run_with_compiled_engine(self, capsys):
        assert main(["run", "figure4_loop", "--engine", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "output" in out

    def test_attest_engines_agree(self, capsys):
        measurements = []
        for engine in ("legacy", "fast", "compiled"):
            assert main(["attest", "crc32", "--engine", engine]) == 0
            out = capsys.readouterr().out
            measurements.append(next(
                line for line in out.splitlines() if "measurement A" in line))
        assert measurements[0] == measurements[1] == measurements[2]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "syringe_pump" in out
        assert "syringe_overdose" in out

    def test_run_workload(self, capsys):
        assert main(["run", "figure4_loop", "--inputs", "4"]) == 0
        out = capsys.readouterr().out
        assert "output      : 28" in out
        assert "cycles" in out

    def test_attest_workload(self, capsys):
        assert main(["attest", "figure4_loop"]) == 0
        out = capsys.readouterr().out
        assert "measurement A" in out
        assert "loop @" in out

    def test_protocol_accepted(self, capsys):
        assert main(["protocol", "auth_check"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out

    def test_attack_detected(self, capsys):
        assert main(["attack", "syringe_overdose"]) == 0
        out = capsys.readouterr().out
        assert "detected    : True" in out

    def test_overhead_table(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "cflat_overhead_%" in out
        assert "syringe_pump" in out

    def test_area_table(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "BRAM36 49" in out

    def test_unknown_workload_returns_error(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_attack_returns_error(self, capsys):
        assert main(["attack", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestServeAndRemote:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 4711
        assert args.allow_shutdown is False
        assert args.session_limit == 4

    def test_attest_remote_parser_defaults(self):
        args = build_parser().parse_args(["attest-remote"])
        assert (args.provers, args.rounds, args.batch) == (1, 1, 1)
        assert args.scheme == "lofat"
        assert args.pace_ms == 0.0
        assert args.shutdown is False

    def test_attest_remote_rejects_empty_scheme_list(self, capsys):
        assert main(["attest-remote", "--scheme", ","]) == 2
        assert "at least one name" in capsys.readouterr().err

    def test_attest_remote_rejects_unknown_scheme(self, capsys):
        assert main(["attest-remote", "--scheme", "no-such-scheme"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_attest_remote_reports_unreachable_server(self, capsys):
        # Port 1 on localhost is never listening; the CLI must turn the
        # connection failure into exit code 2, not a traceback.
        assert main(["attest-remote", "--port", "1", "--rounds", "1"]) == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_serve_and_attest_remote_end_to_end(self, tmp_path, capsys):
        """The CLI pair, driven in-process: serve in a thread, attest all
        three schemes remotely, shut down over the wire."""
        import os
        import socket
        import threading
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        database = str(tmp_path / "measurements.json")

        serve_rc = []
        thread = threading.Thread(target=lambda: serve_rc.append(main([
            "serve", "--port", str(port), "--allow-shutdown",
            "--database", database,
        ])))
        thread.start()
        for _ in range(100):
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                break
            except OSError:
                time.sleep(0.05)

        rc = main(["attest-remote", "--port", str(port), "--provers", "2",
                   "--rounds", "3", "--scheme", "lofat,cflat,static",
                   "--workload", "figure4_loop", "--batch", "3",
                   "--shutdown"])
        thread.join(timeout=10)
        assert rc == 0
        assert serve_rc == [0]
        out = capsys.readouterr().out
        assert "reports      : 6 (6 accepted, 0 rejected)" in out
        assert "listening on 127.0.0.1:%d" % port in out
        assert "0 rejected" in out
        assert os.path.exists(database)  # saved (atomically) at shutdown
