"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_inputs(self):
        args = build_parser().parse_args(["run", "figure4_loop", "--inputs", "5"])
        assert args.workload == "figure4_loop"
        assert args.inputs == [5]

    def test_inputs_default_to_none(self):
        args = build_parser().parse_args(["attest", "crc32"])
        assert args.inputs is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "syringe_pump" in out
        assert "syringe_overdose" in out

    def test_run_workload(self, capsys):
        assert main(["run", "figure4_loop", "--inputs", "4"]) == 0
        out = capsys.readouterr().out
        assert "output      : 28" in out
        assert "cycles" in out

    def test_attest_workload(self, capsys):
        assert main(["attest", "figure4_loop"]) == 0
        out = capsys.readouterr().out
        assert "measurement A" in out
        assert "loop @" in out

    def test_protocol_accepted(self, capsys):
        assert main(["protocol", "auth_check"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out

    def test_attack_detected(self, capsys):
        assert main(["attack", "syringe_overdose"]) == 0
        out = capsys.readouterr().out
        assert "detected    : True" in out

    def test_overhead_table(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "cflat_overhead_%" in out
        assert "syringe_pump" in out

    def test_area_table(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "BRAM36 49" in out

    def test_unknown_workload_returns_error(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_attack_returns_error(self, capsys):
        assert main(["attack", "nope"]) == 2
        assert "error" in capsys.readouterr().err
