"""Unit tests for the indirect-target CAM."""

import pytest

from repro.lofat.target_cam import OVERFLOW_CODE, TargetCam


class TestTargetCam:
    def test_codes_assigned_in_first_seen_order(self):
        cam = TargetCam(code_bits=4)
        assert cam.encode(0x100) == 1
        assert cam.encode(0x200) == 2
        assert cam.encode(0x300) == 3

    def test_repeated_targets_keep_their_code(self):
        cam = TargetCam(code_bits=4)
        first = cam.encode(0x400)
        assert cam.encode(0x400) == first
        assert cam.occupancy == 1

    def test_capacity_is_2_pow_n_minus_1(self):
        cam = TargetCam(code_bits=2)
        assert cam.capacity == 3
        for index in range(3):
            assert cam.encode(0x100 + index * 4) == index + 1
        assert cam.is_full

    def test_overflow_returns_all_zero_code(self):
        cam = TargetCam(code_bits=2)
        for index in range(3):
            cam.encode(0x100 + index * 4)
        assert cam.encode(0x900) == OVERFLOW_CODE
        assert cam.stats.overflows == 1

    def test_known_target_still_resolves_after_overflow(self):
        cam = TargetCam(code_bits=2)
        codes = [cam.encode(0x100 + index * 4) for index in range(3)]
        cam.encode(0x900)  # overflow
        assert cam.encode(0x104) == codes[1]

    def test_lookup_does_not_insert(self):
        cam = TargetCam(code_bits=4)
        assert cam.lookup(0x500) is None
        assert cam.occupancy == 0
        cam.encode(0x500)
        assert cam.lookup(0x500) == 1

    def test_targets_in_order(self):
        cam = TargetCam(code_bits=4)
        for target in (0x30, 0x10, 0x20):
            cam.encode(target)
        assert cam.targets_in_order() == [0x30, 0x10, 0x20]

    def test_clear_resets_everything(self):
        cam = TargetCam(code_bits=3)
        cam.encode(0x10)
        cam.clear()
        assert cam.occupancy == 0
        assert len(cam) == 0
        # Codes restart from 1 after re-use for the next loop execution.
        assert cam.encode(0x99) == 1

    def test_statistics(self):
        cam = TargetCam(code_bits=2)
        cam.encode(0x1)
        cam.encode(0x1)
        cam.encode(0x2)
        cam.encode(0x3)
        cam.encode(0x4)   # overflow
        stats = cam.stats
        assert stats.lookups == 5
        assert stats.hits == 1
        assert stats.inserts == 3
        assert stats.overflows == 1
        assert stats.overflow_rate == pytest.approx(0.2)

    def test_overflow_rate_with_no_lookups(self):
        assert TargetCam(code_bits=2).stats.overflow_rate == 0.0

    def test_invalid_code_bits(self):
        with pytest.raises(ValueError):
            TargetCam(code_bits=0)
