"""Unit tests for basic-block partitioning."""

import pytest

from repro.cfg.basic_blocks import split_basic_blocks
from repro.isa.assembler import assemble


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        program = assemble("""
        _start:
            addi a0, zero, 1
            addi a1, zero, 2
            add a2, a0, a1
        """)
        blocks = split_basic_blocks(program)
        assert len(blocks) == 1
        assert blocks[0].size == 3

    def test_branch_splits_blocks(self, simple_loop_program):
        blocks = split_basic_blocks(simple_loop_program)
        # Every control-flow instruction terminates its block.
        for block in blocks:
            non_terminators = block.instructions[:-1]
            assert all(not instr.is_control_flow for instr in non_terminators)

    def test_branch_target_starts_block(self):
        program = assemble("""
        _start:
            beq a0, a1, target
            addi a0, a0, 1
            addi a0, a0, 2
        target:
            addi a1, a1, 1
        """)
        blocks = split_basic_blocks(program)
        starts = {block.start for block in blocks}
        assert program.symbols["target"] in starts

    def test_instruction_after_branch_starts_block(self):
        program = assemble("""
        _start:
            j skip
            addi a0, a0, 1
        skip:
            nop
        """)
        blocks = split_basic_blocks(program)
        starts = {block.start for block in blocks}
        assert 4 in starts  # the instruction after the jump

    def test_blocks_cover_all_instructions_once(self, two_path_loop_program):
        blocks = split_basic_blocks(two_path_loop_program)
        covered = [instr.address for block in blocks for instr in block.instructions]
        expected = [instr.address for instr in two_path_loop_program.instructions]
        assert sorted(covered) == sorted(expected)
        assert len(covered) == len(set(covered))

    def test_blocks_are_contiguous(self, two_path_loop_program):
        for block in split_basic_blocks(two_path_loop_program):
            addresses = [instr.address for instr in block.instructions]
            assert addresses == list(range(block.start, block.end, 4))

    def test_labels_attached(self):
        program = assemble("""
        _start:
            nop
            j helper
        helper:
            nop
        """)
        blocks = split_basic_blocks(program)
        labels = {block.label for block in blocks if block.label}
        assert "helper" in labels
        assert "_start" in labels

    def test_terminator_properties(self, simple_loop_program):
        blocks = split_basic_blocks(simple_loop_program)
        for block in blocks:
            assert block.terminator_address == block.end - 4
            assert block.contains(block.start)
            assert not block.contains(block.end)

    def test_empty_program(self):
        program = assemble("    .data\n    .word 1")
        assert split_basic_blocks(program) == []

    def test_indices_are_dense_and_ordered(self, two_path_loop_program):
        blocks = split_basic_blocks(two_path_loop_program)
        assert [block.index for block in blocks] == list(range(len(blocks)))
        assert all(blocks[i].start < blocks[i + 1].start for i in range(len(blocks) - 1))
