"""Tests for execution signatures and the content-addressed trace store."""

import os

import pytest

from repro.cpu.core import CpuConfig
from repro.service.tracestore import (
    CapturedExecution,
    TraceStore,
    TraceStoreError,
    cpu_config_digest,
    execution_signature,
    workload_build_signature,
)
from repro.service.worker import execute_capture_job
from repro.workloads import get_workload


class TestExecutionSignature:
    def test_deterministic(self):
        a = execution_signature("figure4_loop", (5,), None)
        b = execution_signature("figure4_loop", (5,), None)
        assert a == b

    def test_varies_with_inputs_attack_and_workload(self):
        base = execution_signature("figure4_loop", (5,), None)
        assert execution_signature("figure4_loop", (6,), None) != base
        assert execution_signature("figure4_loop", (5,), "loop_counter_corruption") != base
        assert execution_signature("crc32", (5,), None) != base

    def test_varies_with_cpu_config(self):
        base = execution_signature("figure4_loop", (5,), None)
        other = execution_signature(
            "figure4_loop", (5,), None,
            cpu_config=CpuConfig(div_latency=99))
        assert other != base

    def test_scheme_and_pipeline_independent(self):
        """The signature ignores fields that cannot change the execution."""
        base = execution_signature("figure4_loop", (5,), None)
        assert execution_signature(
            "figure4_loop", (5,), None,
            cpu_config=CpuConfig(fast_path=False, collect_trace=True,
                                 monitor_batch_size=7)) == base

    def test_cpu_config_digest_ignores_pipeline_fields(self):
        assert cpu_config_digest(CpuConfig()) == \
               cpu_config_digest(CpuConfig(fast_path=False))
        assert cpu_config_digest(CpuConfig()) != \
               cpu_config_digest(CpuConfig(load_latency=3))

    def test_varies_with_build_signature(self):
        workload = get_workload("figure4_loop")
        build = workload_build_signature(workload)
        assert execution_signature(
            "figure4_loop", (5,), None, build_signature=build
        ) == execution_signature("figure4_loop", (5,), None)
        assert execution_signature(
            "figure4_loop", (5,), None, build_signature="deadbeef"
        ) != execution_signature("figure4_loop", (5,), None)


def _capture(signature="sig", workload="figure4_loop", inputs=(5,)):
    return execute_capture_job((signature, workload, inputs, None))


class TestMemoryStore:
    def test_put_get_roundtrip(self):
        store = TraceStore()
        response = _capture()
        store.put_bytes("sig", response.trace_bytes,
                        exit_code=response.exit_code, output=response.output,
                        instructions=response.instructions,
                        cycles=response.cycles)
        assert "sig" in store
        assert len(store) == 1
        capture = store.get("sig")
        assert isinstance(capture, CapturedExecution)
        assert capture.trace_bytes == response.trace_bytes
        assert capture.trace_digest == response.trace_digest
        assert capture.instructions == response.instructions
        assert len(capture.trace()) == response.instructions

    def test_miss_returns_none_and_counts(self):
        store = TraceStore()
        assert store.get("missing") is None
        assert store.counters() == (0, 1)

    def test_content_addressing_shares_blobs(self):
        store = TraceStore()
        response = _capture()
        store.put_bytes("sig-a", response.trace_bytes, 0, "", 1, 1)
        store.put_bytes("sig-b", response.trace_bytes, 0, "", 1, 1)
        assert len(store) == 2
        assert store.unique_traces == 1


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "traces")
        store = TraceStore(directory=directory)
        response = _capture()
        store.put_bytes("sig", response.trace_bytes,
                        exit_code=7, output="out",
                        instructions=response.instructions,
                        cycles=response.cycles)

        reopened = TraceStore(directory=directory)
        assert "sig" in reopened
        capture = reopened.get("sig")
        assert capture.trace_bytes == response.trace_bytes
        assert capture.exit_code == 7
        assert capture.output == "out"

    def test_blob_files_are_content_addressed(self, tmp_path):
        directory = str(tmp_path / "traces")
        store = TraceStore(directory=directory)
        response = _capture()
        store.put_bytes("sig", response.trace_bytes, 0, "", 1, 1)
        blob_path = os.path.join(directory, "blobs",
                                 response.trace_digest + ".lftr")
        assert os.path.exists(blob_path)

    def test_memory_spill_reloads_from_disk(self, tmp_path):
        directory = str(tmp_path / "traces")
        store = TraceStore(directory=directory, max_memory_blobs=1)
        first = _capture("a", inputs=(4,))
        second = _capture("b", inputs=(9,))
        store.put_bytes("a", first.trace_bytes, 0, "", 1, 1)
        store.put_bytes("b", second.trace_bytes, 0, "", 1, 1)
        assert store.stats()["memory_blobs"] == 1  # the first was evicted
        capture = store.get("a")  # reloaded from disk
        assert capture.trace_bytes == first.trace_bytes
        assert store.blob_loads == 1

    def test_corrupted_blob_is_detected(self, tmp_path):
        directory = str(tmp_path / "traces")
        store = TraceStore(directory=directory, max_memory_blobs=0)
        response = _capture()
        store.put_bytes("sig", response.trace_bytes, 0, "", 1, 1)
        blob_path = os.path.join(directory, "blobs",
                                 response.trace_digest + ".lftr")
        with open(blob_path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff")
        with pytest.raises(TraceStoreError):
            TraceStore(directory=directory).get("sig")

    def test_unsupported_index_version(self, tmp_path):
        directory = str(tmp_path / "traces")
        TraceStore(directory=directory)  # creates an empty index layout
        with open(os.path.join(directory, "index.json"), "w") as handle:
            handle.write('{"version": 99, "captures": {}}')
        with pytest.raises(TraceStoreError):
            TraceStore(directory=directory)


class TestAtomicIndex:
    """The signature index is written with the same temp-file + os.replace
    discipline as the measurement database: a killed capture run leaves the
    previous index, never a truncated one."""

    def test_index_survives_a_crash_during_replace(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "traces")
        store = TraceStore(directory=directory)
        first = _capture()
        store.put_bytes("sig-a", first.trace_bytes, 0, "", 1, 1)

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.put_bytes("sig-b", first.trace_bytes, 0, "", 1, 1)
        monkeypatch.undo()

        reopened = TraceStore(directory=directory)
        assert "sig-a" in reopened
        assert reopened.get("sig-a").trace_bytes == first.trace_bytes
        # No temp droppings next to the index.
        droppings = [name for name in os.listdir(directory)
                     if name.endswith(".tmp")]
        assert droppings == []
