"""The CI benchmark-regression gate (scripts/bench_gate.py).

The gate reads the machine-readable ``BENCH_<experiment>.json`` results
the benchmarks emit (see ``benchmarks/conftest.py``) and compares them to
the checked-in ``benchmarks/baseline.json``.  These tests load the script
as a module and prove the contract on synthetic fixtures: a matching run
passes, a 2x slowdown on one tracked metric fails, a silently missing
benchmark fails, a new untracked metric passes, and ``--refresh`` writes
a baseline the same results then pass against.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts", "bench_gate.py")


@pytest.fixture(scope="module")
def bench_gate():
    spec = importlib.util.spec_from_file_location("bench_gate", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_results(directory, experiments):
    os.makedirs(directory, exist_ok=True)
    for experiment, metrics in experiments.items():
        path = os.path.join(directory, "BENCH_%s.json" % experiment)
        with open(path, "w") as handle:
            json.dump({"experiment": experiment, "metrics": metrics}, handle)


def _write_baseline(path, experiments):
    with open(path, "w") as handle:
        json.dump({"experiments": experiments}, handle)


RESULTS = {
    "e12_fastpath": {"speedup_lofat": 3.2, "speedup_cflat": 3.0},
    "e18_fleet_scaling": {"scaling_1_to_4": 2.4},
}


def test_matching_run_passes(bench_gate, tmp_path, capsys):
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    _write_results(results, RESULTS)
    _write_baseline(baseline, RESULTS)
    rc = bench_gate.main(["--results-dir", results, "--baseline", baseline])
    assert rc == 0
    assert "all tracked metrics within" in capsys.readouterr().out


def test_two_x_slowdown_fails(bench_gate, tmp_path, capsys):
    """The acceptance fixture: a synthetic 2x regression must trip the gate."""
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    slowed = {
        "e12_fastpath": {"speedup_lofat": 1.6, "speedup_cflat": 3.0},
        "e18_fleet_scaling": {"scaling_1_to_4": 2.4},
    }
    _write_results(results, slowed)
    _write_baseline(baseline, RESULTS)
    rc = bench_gate.main(["--results-dir", results, "--baseline", baseline])
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL e12_fastpath/speedup_lofat" in out
    # The untouched metrics still report ok.
    assert "ok   e12_fastpath/speedup_cflat" in out


def test_within_threshold_drop_passes(bench_gate, tmp_path):
    """A drop inside the 30% band is runner noise, not a regression."""
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    noisy = {
        "e12_fastpath": {"speedup_lofat": 2.4, "speedup_cflat": 2.8},
        "e18_fleet_scaling": {"scaling_1_to_4": 1.9},
    }
    _write_results(results, noisy)
    _write_baseline(baseline, RESULTS)
    assert bench_gate.main(
        ["--results-dir", results, "--baseline", baseline]) == 0


def test_missing_benchmark_fails(bench_gate, tmp_path, capsys):
    """A benchmark that silently did not run cannot hide a regression."""
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    _write_results(results, {"e12_fastpath": RESULTS["e12_fastpath"]})
    _write_baseline(baseline, RESULTS)
    rc = bench_gate.main(["--results-dir", results, "--baseline", baseline])
    assert rc == 1
    assert "missing" in capsys.readouterr().out


def test_new_metric_passes_until_tracked(bench_gate, tmp_path, capsys):
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    extended = {
        "e12_fastpath": RESULTS["e12_fastpath"],
        "e18_fleet_scaling": RESULTS["e18_fleet_scaling"],
        "e19_future": {"speedup": 5.0},
    }
    _write_results(results, extended)
    _write_baseline(baseline, RESULTS)
    rc = bench_gate.main(["--results-dir", results, "--baseline", baseline])
    assert rc == 0
    assert "new  e19_future/speedup" in capsys.readouterr().out


def test_refresh_writes_passing_baseline(bench_gate, tmp_path):
    results = str(tmp_path / "results")
    baseline = str(tmp_path / "baseline.json")
    _write_results(results, RESULTS)
    rc = bench_gate.main(
        ["--results-dir", results, "--baseline", baseline, "--refresh"])
    assert rc == 0
    with open(baseline) as handle:
        document = json.load(handle)
    assert document["experiments"]["e18_fleet_scaling"] == {
        "scaling_1_to_4": 2.4}
    # The refreshed baseline immediately passes against the same results.
    assert bench_gate.main(
        ["--results-dir", results, "--baseline", baseline]) == 0


def test_missing_baseline_is_a_setup_error(bench_gate, tmp_path, capsys):
    results = str(tmp_path / "results")
    _write_results(results, RESULTS)
    rc = bench_gate.main(
        ["--results-dir", results,
         "--baseline", str(tmp_path / "absent.json")])
    assert rc == 2
    assert "--refresh" in capsys.readouterr().out


def test_no_results_is_a_setup_error(bench_gate, tmp_path):
    assert bench_gate.main(
        ["--results-dir", str(tmp_path / "empty"),
         "--baseline", str(tmp_path / "baseline.json")]) == 2


def test_emit_report_writes_bench_json(tmp_path, monkeypatch):
    """benchmarks/conftest.py writes the JSON the gate consumes."""
    import importlib.util as iu
    conftest_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks", "conftest.py")
    spec = iu.spec_from_file_location("bench_conftest", conftest_path)
    module = iu.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIR", str(tmp_path))
    module.emit_report("e99_demo", "table", metrics={"speedup": 2.5})
    with open(str(tmp_path / "BENCH_e99_demo.json")) as handle:
        document = json.load(handle)
    assert document == {"experiment": "e99_demo",
                        "metrics": {"speedup": 2.5}}
    assert os.path.exists(str(tmp_path / "e99_demo.txt"))
