"""Tests for the parameterized workload families and their campaign preset.

The load-bearing properties: generation is a pure function of the seed
(byte-identical sources and inputs across calls), every member's execution
matches its Python reference model, members register cleanly in the
workload registry, and the ``family`` campaign preset expands to the full
schemes x members x input-sets matrix and attests green end to end.
"""

import pytest

from repro.cpu.core import run_program
from repro.lang import families
from repro.service import CampaignRunner, family_campaign
from repro.workloads.common import WORKLOAD_REGISTRY

SEED = 20170618


def _all_members():
    for name in families.family_names():
        family = families.get_family(name)
        for params in family.grid:
            yield family, params


class TestFamilyGeneration:
    def test_four_families_registered(self):
        assert families.family_names() == ["arrays", "branchy", "calls",
                                           "nest"]

    def test_member_names_encode_parameters(self):
        nest = families.get_family("nest")
        assert nest.member_name({"depth": 3, "iters": 2}) == "fam_nest_d3_i2"
        calls = families.get_family("calls")
        assert calls.member_name(
            {"shape": "tree", "depth": 4}) == "fam_calls_tree_d4"

    def test_member_names_unique_across_matrix(self):
        names = [family.member_name(params)
                 for family, params in _all_members()]
        assert len(names) == len(set(names))
        assert len(names) >= 25  # the matrix is a real population

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown family"):
            families.get_family("fractals")

    def test_generation_is_deterministic(self):
        first = families.generate_family("branchy", seed=SEED)
        second = families.generate_family("branchy", seed=SEED)
        assert [w.source for w in first] == [w.source for w in second]
        assert [w.inputs for w in first] == [w.inputs for w in second]
        assert [w.expected_output for w in first] == [
            w.expected_output for w in second]

    def test_seed_changes_inputs_not_names(self):
        a = families.generate_family("nest", seed=1)
        b = families.generate_family("nest", seed=2)
        assert [w.name for w in a] == [w.name for w in b]
        assert [w.source for w in a] == [w.source for w in b]
        assert [w.inputs for w in a] != [w.inputs for w in b]

    def test_input_variants_differ(self):
        family = families.get_family("arrays")
        params = dict(family.grid[0])
        v0 = families.member_inputs(family, params, SEED, variant=0)
        v1 = families.member_inputs(family, params, SEED, variant=1)
        assert v0 != v1


class TestFamilySemantics:
    @pytest.mark.parametrize("family_name", ["arrays", "branchy", "calls",
                                             "nest"])
    def test_every_member_matches_reference(self, family_name):
        for workload in families.generate_family(family_name, seed=SEED):
            result = run_program(workload.build(), inputs=workload.inputs)
            assert result.output == workload.expected_output, workload.name
            assert result.exit_code == 0

    def test_compilation_verifies_metadata(self):
        # verify=True (the default) cross-checks codegen's CFG/loop
        # prediction against repro.cfg on every member; reaching here
        # without CodegenError *is* the assertion, so spot-check one.
        family = families.get_family("nest")
        compiled = families.compile_member(
            family, {"depth": 4, "iters": 2}, verify=True)
        assert max(loop.depth for loop in compiled.loops) == 4

    def test_members_register_in_workload_registry(self):
        workloads = families.family_matrix(names=["calls"], seed=SEED)
        for workload in workloads:
            assert workload.name in WORKLOAD_REGISTRY
            assert WORKLOAD_REGISTRY[workload.name]().source == workload.source

    def test_members_excluded_from_default_workload_sweep(self):
        # Families register on demand, so the "every workload" sweeps
        # (benchmarks E1/E2/..., decode-cache regression) must not see
        # them -- membership would depend on test ordering otherwise.
        from repro.workloads import all_workloads

        families.family_matrix(names=["nest"], seed=SEED, register=True)
        assert not any("family" in w.tags for w in all_workloads())
        generated = {w.name for w in all_workloads(include_generated=True)}
        assert "fam_nest_d3_i2" in generated

    def test_family_tags(self):
        workload = families.generate_family("branchy", seed=SEED)[0]
        assert "lang" in workload.tags
        assert "family:branchy" in workload.tags


class TestFamilyCampaign:
    def test_spec_shape(self):
        spec = family_campaign(seed=SEED)
        assert spec.name == "family_s%d" % SEED
        assert spec.schemes == ["lofat", "cflat", "static"]
        member_count = sum(
            len(families.get_family(name).grid)
            for name in families.family_names())
        assert len(spec.workloads) == member_count
        assert all(len(w.input_sets) == 2 for w in spec.workloads)
        assert len(spec.expand()) == member_count * 2 * 3

    def test_campaign_runs_green(self):
        spec = family_campaign(seed=SEED, families=["nest"], input_sets=1)
        result = CampaignRunner().run(spec, workers=1)
        assert result.ok
        assert len(result.results) == 10 * 3  # nest grid x three schemes
