"""Cross-module integration tests: the whole pipeline on every workload."""

import pytest

from repro import attest_workload
from repro.attestation import Prover, Verifier
from repro.cfg.builder import build_cfg
from repro.cfg.loops import find_natural_loops
from repro.cfg.paths import PathChecker
from repro.cpu.core import Cpu
from repro.lofat.engine import LoFatEngine
from repro.workloads import all_workloads, get_workload

ALL_NAMES = [workload.name for workload in all_workloads()]


class TestFullProtocolAcrossWorkloads:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_benign_attestation_accepted(self, name):
        workload = get_workload(name)
        program = workload.build()
        prover = Prover({name: program})
        verifier = Verifier()
        verifier.register_program(name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())
        challenge = verifier.challenge(name, workload.inputs)
        report = prover.attest(challenge)
        assert verifier.verify(report).accepted

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_prover_measurement_matches_direct_engine_run(self, name):
        """The prover's report equals a stand-alone attested execution."""
        workload = get_workload(name)
        program = workload.build()
        _, direct = attest_workload(name)
        prover = Prover({name: program})
        verifier = Verifier()
        verifier.register_program(name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())
        report = prover.attest(verifier.challenge(name, workload.inputs))
        assert report.measurement == direct.measurement
        assert report.metadata.to_bytes() == direct.metadata.to_bytes()


class TestRuntimeLoopsVsStaticAnalysis:
    @pytest.mark.parametrize("name", [
        "figure4_loop", "bubble_sort", "crc32", "binary_search", "matmul",
        "fir_filter", "string_ops",
    ])
    def test_runtime_loop_entries_are_static_loop_headers(self, name):
        """Every loop the hardware heuristic reports corresponds to a natural
        loop header found by the verifier's offline analysis."""
        workload = get_workload(name)
        program = workload.build()
        cfg = build_cfg(program)
        headers = {loop.header for loop in find_natural_loops(cfg)}
        _, measurement = attest_workload(name)
        for record in measurement.metadata:
            entry_block = cfg.block_containing(record.entry)
            assert entry_block is not None
            assert entry_block.start in headers, (
                "runtime loop entry %#x is not a static loop header" % record.entry)

    @pytest.mark.parametrize("name", ["figure4_loop", "crc32", "bubble_sort"])
    def test_runtime_loop_paths_within_static_bodies(self, name):
        """For *innermost* loops, the distinct path count reported at run time
        never exceeds the number of simple paths through the static loop body
        (+1 for the loop-exit iteration).  Outer loops of a nest are excluded:
        their first iteration absorbs the not-yet-discovered inner loop's
        branches, which legitimately creates extra encodings."""
        workload = get_workload(name)
        program = workload.build()
        cfg = build_cfg(program)
        checker = PathChecker(cfg)
        loops = {loop.header: loop for loop in find_natural_loops(cfg)}
        innermost = {
            header for header, loop in loops.items()
            if not any(other.header != header and other.header in loop.body
                       for other in loops.values())
        }
        _, measurement = attest_workload(name)
        checked = 0
        for record in measurement.metadata:
            header = cfg.block_containing(record.entry).start
            if header not in innermost:
                continue
            static_loop = loops[header]
            static_paths = checker.enumerate_loop_paths(header, static_loop.body)
            # +1 because the exit iteration is recorded as a path as well.
            assert record.distinct_paths <= len(static_paths) + 1
            checked += 1
        assert checked > 0


class TestTraceConsistency:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_hashed_pairs_are_a_subsequence_of_the_trace(self, name):
        """Everything the hash engine absorbed really was executed."""
        workload = get_workload(name)
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs))
        engine = LoFatEngine()
        cpu.attach_monitor(engine.observe)
        result = cpu.run()
        engine.finalize()
        executed = result.trace.executed_edges
        executed_multiset = {}
        for edge in executed:
            executed_multiset[edge] = executed_multiset.get(edge, 0) + 1
        for pair in engine.hash_engine.absorbed_pairs:
            assert executed_multiset.get(pair, 0) > 0, (
                "hashed pair %s never executed" % (pair,))
            executed_multiset[pair] -= 1

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_attested_run_behaviour_is_unchanged(self, name):
        workload = get_workload(name)
        program = workload.build()
        plain = Cpu(program, inputs=list(workload.inputs)).run()
        attested_cpu = Cpu(program, inputs=list(workload.inputs))
        attested_cpu.attach_monitor(LoFatEngine().observe)
        attested = attested_cpu.run()
        assert attested.output == plain.output
        assert attested.cycles == plain.cycles
        assert attested.exit_code == plain.exit_code
