"""Unit tests for instruction specifications and classification."""

import pytest

from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    SPECS,
    spec_for,
)


class TestSpecs:
    def test_expected_instruction_count(self):
        # RV32I base (including ecall/ebreak/fence) + 8 M-extension = 48 mnemonics.
        assert len(SPECS) == 48

    def test_spec_lookup_case_insensitive(self):
        assert spec_for("ADD") is SPECS["add"]
        assert spec_for(" beq ") is SPECS["beq"]

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            spec_for("vadd")

    def test_branch_specs_flagged(self):
        for mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            spec = spec_for(mnemonic)
            assert spec.is_branch
            assert spec.fmt is InstructionFormat.B
            assert spec.is_control_flow

    def test_jump_specs_flagged(self):
        assert spec_for("jal").is_jump
        assert not spec_for("jal").is_indirect
        assert spec_for("jalr").is_jump
        assert spec_for("jalr").is_indirect

    def test_loads_and_stores_flagged(self):
        for mnemonic in ("lb", "lh", "lw", "lbu", "lhu"):
            assert spec_for(mnemonic).is_load
        for mnemonic in ("sb", "sh", "sw"):
            assert spec_for(mnemonic).is_store

    def test_mul_div_flagged(self):
        for mnemonic in ("mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu"):
            assert spec_for(mnemonic).is_mul_div

    def test_alu_not_control_flow(self):
        for mnemonic in ("add", "sub", "andi", "slli", "lui", "auipc"):
            assert not spec_for(mnemonic).is_control_flow


class TestInstructionClassification:
    def test_conditional_branch(self):
        instr = Instruction("beq", rs1=1, rs2=2, imm=8)
        assert instr.is_conditional_branch
        assert instr.is_control_flow
        assert not instr.is_direct_jump

    def test_direct_jump_vs_call(self):
        jump = Instruction("jal", rd=0, imm=-16)
        call = Instruction("jal", rd=1, imm=64)
        assert jump.is_direct_jump and not jump.writes_link_register
        assert call.is_direct_jump and call.writes_link_register

    def test_alternate_link_register_is_linking(self):
        call = Instruction("jalr", rd=5, rs1=10)
        assert call.writes_link_register

    def test_return_idiom(self):
        ret = Instruction("jalr", rd=0, rs1=1, imm=0)
        assert ret.is_return
        assert ret.is_indirect_jump
        not_ret = Instruction("jalr", rd=0, rs1=10, imm=0)
        assert not not_ret.is_return

    def test_non_control_flow(self):
        instr = Instruction("addi", rd=1, rs1=1, imm=4)
        assert not instr.is_control_flow
        assert not instr.is_conditional_branch

    def test_key_ignores_address(self):
        a = Instruction("add", rd=1, rs1=2, rs2=3, address=0x100)
        b = Instruction("add", rd=1, rs1=2, rs2=3, address=0x200)
        assert a.key() == b.key()

    def test_str_renders_assembly(self):
        instr = Instruction("add", rd=10, rs1=11, rs2=12)
        assert str(instr) == "add a0, a1, a2"

    def test_mnemonic_normalised_to_lowercase(self):
        instr = Instruction("ADD", rd=1, rs1=2, rs2=3)
        assert instr.mnemonic == "add"

    def test_unknown_instruction_rejected(self):
        with pytest.raises(KeyError):
            Instruction("frobnicate")
