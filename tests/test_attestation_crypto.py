"""Unit tests for report signing and the key store."""

import pytest

from repro.attestation.crypto import (
    SecureKeyStore,
    fresh_nonce,
    sign_report,
    verify_signature,
)


class TestKeyStore:
    def test_deterministic_key_per_device_id(self):
        a = SecureKeyStore(device_id="pump-1")
        b = SecureKeyStore(device_id="pump-1")
        c = SecureKeyStore(device_id="pump-2")
        assert a.export_for_verifier() == b.export_for_verifier()
        assert a.export_for_verifier() != c.export_for_verifier()

    def test_random_key_store(self):
        a = SecureKeyStore.with_random_key()
        b = SecureKeyStore.with_random_key()
        assert a.export_for_verifier() != b.export_for_verifier()

    def test_mac_is_deterministic(self):
        store = SecureKeyStore()
        assert store.mac(b"hello") == store.mac(b"hello")
        assert store.mac(b"hello") != store.mac(b"world")

    def test_mac_length(self):
        assert len(SecureKeyStore().mac(b"x")) == 32


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        store = SecureKeyStore()
        nonce = fresh_nonce()
        signature = sign_report(b"payload", nonce, store)
        assert verify_signature(b"payload", nonce, signature, store.export_for_verifier())

    def test_wrong_payload_rejected(self):
        store = SecureKeyStore()
        nonce = fresh_nonce()
        signature = sign_report(b"payload", nonce, store)
        assert not verify_signature(b"other", nonce, signature, store.export_for_verifier())

    def test_wrong_nonce_rejected(self):
        store = SecureKeyStore()
        signature = sign_report(b"payload", b"nonce-1", store)
        assert not verify_signature(b"payload", b"nonce-2", signature,
                                    store.export_for_verifier())

    def test_wrong_key_rejected(self):
        store = SecureKeyStore(device_id="a")
        other = SecureKeyStore(device_id="b")
        nonce = fresh_nonce()
        signature = sign_report(b"payload", nonce, store)
        assert not verify_signature(b"payload", nonce, signature,
                                    other.export_for_verifier())

    def test_tampered_signature_rejected(self):
        store = SecureKeyStore()
        nonce = fresh_nonce()
        signature = bytearray(sign_report(b"payload", nonce, store))
        signature[0] ^= 0xFF
        assert not verify_signature(b"payload", nonce, bytes(signature),
                                    store.export_for_verifier())

    def test_fresh_nonces_are_unique(self):
        nonces = {fresh_nonce() for _ in range(64)}
        assert len(nonces) == 64
        assert all(len(nonce) == 16 for nonce in nonces)

    def test_fresh_nonce_custom_length(self):
        assert len(fresh_nonce(32)) == 32
