"""Tests for the digest-keyed measurement database."""

import pytest

from repro.attestation import Prover, Verifier
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import attest_execution
from repro.service import MeasurementDatabase, config_digest
from repro.workloads import get_workload


@pytest.fixture
def figure4():
    workload = get_workload("figure4_loop")
    return workload, workload.build()


class TestKeying:
    def test_key_includes_program_inputs_and_config(self, figure4):
        _, program = figure4
        base = MeasurementDatabase.key_for(program, (5,), LoFatConfig())
        assert MeasurementDatabase.key_for(program, (5,), LoFatConfig()) == base
        assert MeasurementDatabase.key_for(program, (6,), LoFatConfig()) != base
        assert MeasurementDatabase.key_for(
            program, (5,), LoFatConfig(max_nested_loops=4)
        ) != base

    def test_key_distinguishes_programs(self, figure4):
        _, program = figure4
        other = get_workload("crc32").build()
        assert MeasurementDatabase.key_for(program, (), None) != \
               MeasurementDatabase.key_for(other, (), None)

    def test_config_digest_is_construction_independent(self):
        assert config_digest(LoFatConfig()) == config_digest(LoFatConfig())
        assert config_digest(LoFatConfig()) != \
               config_digest(LoFatConfig(counter_width_bits=16))


class TestHitMissSemantics:
    def test_miss_then_hit(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        assert database.lookup(program, (5,)) is None
        assert (database.hits, database.misses) == (0, 1)

        measurement, metadata, hit = database.lookup_or_compute(program, (5,))
        assert not hit
        assert len(database) == 1
        assert (database.hits, database.misses) == (0, 2)

        again, metadata2, hit2 = database.lookup_or_compute(program, (5,))
        assert hit2
        assert again == measurement and metadata2 == metadata
        assert (database.hits, database.misses) == (1, 2)
        assert database.hit_rate == pytest.approx(1 / 3)

    def test_computed_reference_matches_direct_attestation(self, figure4):
        workload, program = figure4
        database = MeasurementDatabase()
        measurement, metadata, _ = database.lookup_or_compute(
            program, (5,), LoFatConfig())
        _, direct = attest_execution(program, inputs=[5])
        assert measurement == direct.measurement
        assert metadata == direct.metadata.to_bytes()

    def test_different_config_is_a_different_entry(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        database.lookup_or_compute(program, (5,), LoFatConfig())
        _, _, hit = database.lookup_or_compute(
            program, (5,), LoFatConfig(max_branches_per_path=8,
                                       max_indirect_branches_per_path=2))
        assert not hit
        assert len(database) == 2

    def test_store_and_reset_counters(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        database.store(program, (9,), None, b"\x01" * 64, b"\x02")
        assert database.lookup(program, (9,)) == (b"\x01" * 64, b"\x02")
        database.reset_counters()
        assert (database.hits, database.misses) == (0, 0)
        assert len(database) == 1


class TestTraceKeys:
    """Entries keyed by (scheme, trace digest, config digest)."""

    def _capture(self, inputs=(5,)):
        from repro.service.worker import execute_capture_job
        from repro.service.tracestore import CapturedExecution
        response = execute_capture_job(("sig", "figure4_loop", inputs, None))
        return CapturedExecution(
            signature="sig", trace_digest=response.trace_digest,
            trace_bytes=response.trace_bytes, exit_code=response.exit_code,
            output=response.output, instructions=response.instructions,
            cycles=response.cycles, replayable=response.replayable)

    def test_store_and_lookup_trace(self):
        database = MeasurementDatabase()
        assert database.lookup_trace("lofat", "d" * 64) is None
        database.store_trace("lofat", "d" * 64, None, b"\x01" * 64, b"\x02")
        assert database.lookup_trace("lofat", "d" * 64) == (b"\x01" * 64, b"\x02")
        # Scheme separation: the same digest under another scheme misses.
        assert database.lookup_trace("cflat", "d" * 64) is None
        assert database.stats()["trace_entries"] == 1
        assert len(database) == 0  # trace entries are not primary entries

    def test_capture_backed_miss_replays_and_seeds_both_keys(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        capture = self._capture()
        measurement, metadata, hit = database.lookup_or_compute(
            program, (5,), scheme="lofat", capture=capture)
        assert not hit
        # The replayed reference equals the live one.
        _, direct = attest_execution(program, inputs=[5])
        assert measurement == direct.measurement
        assert metadata == direct.metadata.to_bytes()
        # Stored under the trace key too: a different (program, inputs)
        # signature with the same trace digest skips the replay.
        assert database.lookup_trace(
            "lofat", capture.trace_digest) == (measurement, metadata)

    def test_trace_key_serves_as_cache_hit(self, figure4):
        """A primary-key miss served from the trace keyspace is a hit:
        no computation happened, and the accounting must say so."""
        _, program = figure4
        database = MeasurementDatabase()
        capture = self._capture()
        database.store_trace("lofat", capture.trace_digest, None,
                             b"\x05" * 64, b"\x06")
        measurement, metadata, hit = database.lookup_or_compute(
            program, (5,), scheme="lofat", capture=capture)
        assert hit
        assert (measurement, metadata) == (b"\x05" * 64, b"\x06")
        assert (database.hits, database.misses) == (1, 0)

    def test_capture_backed_references_for_all_schemes(self, figure4):
        from repro.schemes import get_scheme, scheme_names
        from repro.cpu.core import CpuConfig
        _, program = figure4
        database = MeasurementDatabase()
        capture = self._capture()
        for scheme in scheme_names():
            measurement, metadata, hit = database.lookup_or_compute(
                program, (5,), scheme=scheme, capture=capture)
            assert not hit
            live = get_scheme(scheme).reference_measurement(
                program, [5], cpu_config=CpuConfig(collect_trace=False))
            assert measurement == live.measurement
            assert metadata == live.metadata.to_bytes()


class TestPersistence:
    def test_roundtrip_across_all_schemes(self, figure4, tmp_path):
        """save/load across lofat, cflat and static, with config-digest
        stability: reloaded entries keep hitting under fresh key derivation."""
        from repro.schemes import get_scheme, scheme_names
        _, program = figure4
        database = MeasurementDatabase()
        expected = {}
        for scheme in scheme_names():
            measurement, metadata, hit = database.lookup_or_compute(
                program, (5,), scheme=scheme)
            assert not hit
            expected[scheme] = (measurement, metadata)
        path = str(tmp_path / "schemes.json")
        assert database.save(path) == len(scheme_names())

        restored = MeasurementDatabase.load(path)
        for scheme in scheme_names():
            # Config digests are derived canonically, so a fresh process
            # (modelled by the reload) computes the same keys.
            key = MeasurementDatabase.key_for(program, (5,), None, scheme)
            assert key[3] == get_scheme(scheme).config_digest(None)
            measurement, metadata, hit = restored.lookup_or_compute(
                program, (5,), scheme=scheme)
            assert hit
            assert (measurement, metadata) == expected[scheme]
        assert restored.hits == len(scheme_names())

    def test_trace_entries_roundtrip(self, tmp_path):
        database = MeasurementDatabase()
        database.store_trace("cflat", "ab" * 32, None, b"\x03" * 64, b"")
        path = str(tmp_path / "traces.json")
        database.save(path)
        restored = MeasurementDatabase.load(path)
        assert restored.lookup_trace("cflat", "ab" * 32) == (b"\x03" * 64, b"")
        assert restored.stats()["trace_entries"] == 1

    def test_files_without_trace_entries_still_load(self, figure4, tmp_path):
        """Databases persisted before the capture-once release stay loadable."""
        import json
        _, program = figure4
        database = MeasurementDatabase()
        database.lookup_or_compute(program, (5,))
        document = json.loads(database.to_json())
        assert "trace_entries" not in document  # none stored, none written
        restored = MeasurementDatabase.from_json(json.dumps(document))
        _, _, hit = restored.lookup_or_compute(program, (5,))
        assert hit

    def test_json_roundtrip(self, figure4, tmp_path):
        _, program = figure4
        database = MeasurementDatabase()
        for iterations in (3, 5, 8):
            database.lookup_or_compute(program, (iterations,))
        path = str(tmp_path / "measurements.json")
        assert database.save(path) == 3

        restored = MeasurementDatabase.load(path)
        assert len(restored) == 3
        _, _, hit = restored.lookup_or_compute(program, (5,))
        assert hit

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            MeasurementDatabase.from_json('{"version": 2, "entries": []}')


class TestVerifierIntegration:
    def test_seeded_verifier_accepts_database_mode(self, figure4):
        workload, program = figure4
        database = MeasurementDatabase()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())

        measurement, metadata, _ = database.lookup_or_compute(program, (5,))
        verifier.seed_measurement(workload.name, (5,), measurement, metadata)

        report = prover.attest(verifier.challenge(workload.name, [5]))
        assert verifier.verify(report, mode="database").accepted

    def test_seeded_verifier_rejects_wrong_measurement(self, figure4):
        workload, program = figure4
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())
        verifier.seed_measurement(workload.name, (5,), b"\x00" * 64, b"")

        report = prover.attest(verifier.challenge(workload.name, [5]))
        verdict = verifier.verify(report, mode="database")
        assert not verdict.accepted
        assert verdict.reason.value == "measurement_mismatch"


class TestAtomicPersistence:
    """A killed campaign/server must never leave a truncated database file."""

    def _populated(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        database.lookup_or_compute(program, (5,))
        return database

    def test_save_replaces_atomically_and_leaves_no_temp_files(
            self, figure4, tmp_path):
        import os

        path = str(tmp_path / "measurements.json")
        database = self._populated(figure4)
        database.save(path)
        database.save(path)  # overwrite path, same discipline
        assert MeasurementDatabase.load(path).stats()["entries"] == 1
        assert os.listdir(str(tmp_path)) == ["measurements.json"]

    def test_failed_save_keeps_the_previous_file_intact(
            self, figure4, tmp_path, monkeypatch):
        import os

        path = str(tmp_path / "measurements.json")
        database = self._populated(figure4)
        database.save(path)
        before = open(path).read()

        # A crash at the final rename: the new content never lands, the
        # previous database must survive byte-for-byte and no temp file
        # may linger.
        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            database.save(path)
        monkeypatch.undo()
        assert open(path).read() == before
        assert os.listdir(str(tmp_path)) == ["measurements.json"]
        assert MeasurementDatabase.load(path).stats()["entries"] == 1
