"""Tests for the digest-keyed measurement database."""

import pytest

from repro.attestation import Prover, Verifier
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import attest_execution
from repro.service import MeasurementDatabase, config_digest
from repro.workloads import get_workload


@pytest.fixture
def figure4():
    workload = get_workload("figure4_loop")
    return workload, workload.build()


class TestKeying:
    def test_key_includes_program_inputs_and_config(self, figure4):
        _, program = figure4
        base = MeasurementDatabase.key_for(program, (5,), LoFatConfig())
        assert MeasurementDatabase.key_for(program, (5,), LoFatConfig()) == base
        assert MeasurementDatabase.key_for(program, (6,), LoFatConfig()) != base
        assert MeasurementDatabase.key_for(
            program, (5,), LoFatConfig(max_nested_loops=4)
        ) != base

    def test_key_distinguishes_programs(self, figure4):
        _, program = figure4
        other = get_workload("crc32").build()
        assert MeasurementDatabase.key_for(program, (), None) != \
               MeasurementDatabase.key_for(other, (), None)

    def test_config_digest_is_construction_independent(self):
        assert config_digest(LoFatConfig()) == config_digest(LoFatConfig())
        assert config_digest(LoFatConfig()) != \
               config_digest(LoFatConfig(counter_width_bits=16))


class TestHitMissSemantics:
    def test_miss_then_hit(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        assert database.lookup(program, (5,)) is None
        assert (database.hits, database.misses) == (0, 1)

        measurement, metadata, hit = database.lookup_or_compute(program, (5,))
        assert not hit
        assert len(database) == 1
        assert (database.hits, database.misses) == (0, 2)

        again, metadata2, hit2 = database.lookup_or_compute(program, (5,))
        assert hit2
        assert again == measurement and metadata2 == metadata
        assert (database.hits, database.misses) == (1, 2)
        assert database.hit_rate == pytest.approx(1 / 3)

    def test_computed_reference_matches_direct_attestation(self, figure4):
        workload, program = figure4
        database = MeasurementDatabase()
        measurement, metadata, _ = database.lookup_or_compute(
            program, (5,), LoFatConfig())
        _, direct = attest_execution(program, inputs=[5])
        assert measurement == direct.measurement
        assert metadata == direct.metadata.to_bytes()

    def test_different_config_is_a_different_entry(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        database.lookup_or_compute(program, (5,), LoFatConfig())
        _, _, hit = database.lookup_or_compute(
            program, (5,), LoFatConfig(max_branches_per_path=8,
                                       max_indirect_branches_per_path=2))
        assert not hit
        assert len(database) == 2

    def test_store_and_reset_counters(self, figure4):
        _, program = figure4
        database = MeasurementDatabase()
        database.store(program, (9,), None, b"\x01" * 64, b"\x02")
        assert database.lookup(program, (9,)) == (b"\x01" * 64, b"\x02")
        database.reset_counters()
        assert (database.hits, database.misses) == (0, 0)
        assert len(database) == 1


class TestPersistence:
    def test_json_roundtrip(self, figure4, tmp_path):
        _, program = figure4
        database = MeasurementDatabase()
        for iterations in (3, 5, 8):
            database.lookup_or_compute(program, (iterations,))
        path = str(tmp_path / "measurements.json")
        assert database.save(path) == 3

        restored = MeasurementDatabase.load(path)
        assert len(restored) == 3
        _, _, hit = restored.lookup_or_compute(program, (5,))
        assert hit

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            MeasurementDatabase.from_json('{"version": 2, "entries": []}')


class TestVerifierIntegration:
    def test_seeded_verifier_accepts_database_mode(self, figure4):
        workload, program = figure4
        database = MeasurementDatabase()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())

        measurement, metadata, _ = database.lookup_or_compute(program, (5,))
        verifier.seed_measurement(workload.name, (5,), measurement, metadata)

        report = prover.attest(verifier.challenge(workload.name, [5]))
        assert verifier.verify(report, mode="database").accepted

    def test_seeded_verifier_rejects_wrong_measurement(self, figure4):
        workload, program = figure4
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())
        verifier.seed_measurement(workload.name, (5,), b"\x00" * 64, b"")

        report = prover.attest(verifier.challenge(workload.name, [5]))
        verdict = verifier.verify(report, mode="database")
        assert not verdict.accepted
        assert verdict.reason.value == "measurement_mismatch"
