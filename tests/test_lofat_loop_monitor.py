"""Direct unit tests for the loop monitor (driven with synthetic records)."""

import pytest

from repro.cpu.trace import BranchKind, TraceRecord
from repro.isa.instructions import Instruction
from repro.lofat.config import LoFatConfig
from repro.lofat.loop_monitor import LoopMonitor


def record(pc, next_pc, kind=BranchKind.CONDITIONAL, taken=True, cycle=0):
    mnemonic = {
        BranchKind.CONDITIONAL: "beq",
        BranchKind.DIRECT_JUMP: "jal",
        BranchKind.DIRECT_CALL: "jal",
        BranchKind.INDIRECT_CALL: "jalr",
        BranchKind.INDIRECT_JUMP: "jalr",
        BranchKind.RETURN: "jalr",
    }[kind]
    rd = 1 if kind in (BranchKind.DIRECT_CALL, BranchKind.INDIRECT_CALL) else 0
    rs1 = 1 if kind is BranchKind.RETURN else 6
    instruction = Instruction(mnemonic, rd=rd, rs1=rs1, imm=0, address=pc)
    return TraceRecord(index=0, cycle=cycle, pc=pc, word=0,
                       instruction=instruction, next_pc=next_pc,
                       kind=kind, taken=taken)


class Harness:
    """Captures hash requests and loop-exit records."""

    def __init__(self, config=None):
        self.hashed = []
        self.loops = []
        self.monitor = LoopMonitor(
            config=config or LoFatConfig(),
            hash_pairs=lambda pairs, cycle: self.hashed.append(list(pairs)),
            on_loop_exit=self.loops.append,
        )


class TestLoopMonitor:
    def test_enter_and_exit_loop(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=10)
        assert h.monitor.depth == 1
        record_out = h.monitor.exit_loop(cycle=20)
        assert h.monitor.depth == 0
        assert record_out.entry == 0x100
        assert h.loops == [record_out]

    def test_new_path_is_hashed_once(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        for _ in range(3):
            h.monitor.loop_branch(record(0x110, 0x118, taken=True))
            h.monitor.loop_branch(record(0x130, 0x100, kind=BranchKind.DIRECT_JUMP))
            h.monitor.iteration_boundary(record(0x130, 0x100, kind=BranchKind.DIRECT_JUMP))
        h.monitor.exit_loop(cycle=99)
        # Three identical iterations: the pair sequence is hashed exactly once.
        assert len(h.hashed) == 1
        assert h.hashed[0] == [(0x110, 0x118), (0x130, 0x100)]
        assert h.monitor.stats.repeated_paths_compressed == 2

    def test_distinct_paths_hashed_separately(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        for taken in (True, False, True):
            h.monitor.loop_branch(record(0x110, 0x118 if taken else 0x114, taken=taken))
            h.monitor.loop_branch(record(0x130, 0x100, kind=BranchKind.DIRECT_JUMP))
            h.monitor.iteration_boundary(record(0x130, 0x100, kind=BranchKind.DIRECT_JUMP))
        loop_record = h.monitor.exit_loop(cycle=5)
        assert len(h.hashed) == 2
        assert loop_record.distinct_paths == 2
        assert loop_record.iterations == 3
        counts = {path.encoding.bits: path.iterations for path in loop_record.paths}
        assert counts == {"11": 2, "01": 1}

    def test_partial_path_at_exit_is_recorded(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        h.monitor.loop_branch(record(0x110, 0x140, taken=True))  # exit branch
        loop_record = h.monitor.exit_loop(cycle=5)
        assert loop_record.iterations == 1
        assert loop_record.paths[0].encoding.bits == "1"
        assert len(h.hashed) == 1

    def test_indirect_targets_reported_in_metadata(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        h.monitor.loop_branch(record(0x110, 0x500, kind=BranchKind.INDIRECT_CALL))
        h.monitor.loop_branch(record(0x120, 0x100, kind=BranchKind.DIRECT_JUMP))
        h.monitor.iteration_boundary(record(0x120, 0x100, kind=BranchKind.DIRECT_JUMP))
        loop_record = h.monitor.exit_loop(cycle=1)
        assert loop_record.indirect_targets == [0x500]

    def test_first_seen_order_preserved_in_metadata(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        for taken in (False, True, False):
            h.monitor.loop_branch(record(0x110, 0x118, taken=taken))
            h.monitor.iteration_boundary(record(0x110, 0x100, kind=BranchKind.DIRECT_JUMP))
        loop_record = h.monitor.exit_loop(cycle=0)
        assert [path.first_seen_index for path in loop_record.paths] == [0, 1]
        assert loop_record.paths[0].encoding.bits == "0"

    def test_nested_loops_use_separate_state(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x180, call_depth=0, cycle=0)
        h.monitor.enter_loop(entry=0x120, exit_node=0x150, call_depth=0, cycle=1)
        assert h.monitor.depth == 2
        assert h.monitor.find_loop_by_entry(0x100) == 0
        assert h.monitor.find_loop_by_entry(0x120) == 1
        assert h.monitor.find_loop_by_entry(0x999) is None
        # Branches go to the innermost loop only.
        h.monitor.loop_branch(record(0x130, 0x120, kind=BranchKind.DIRECT_JUMP))
        h.monitor.iteration_boundary(record(0x130, 0x120, kind=BranchKind.DIRECT_JUMP))
        inner = h.monitor.exit_loop(cycle=2)
        outer = h.monitor.exit_loop(cycle=3)
        assert inner.depth == 2 and outer.depth == 1
        assert inner.iterations == 1 and outer.iterations == 0

    def test_stats_accounting(self):
        h = Harness()
        h.monitor.enter_loop(entry=0x100, exit_node=0x140, call_depth=0, cycle=0)
        for _ in range(4):
            h.monitor.loop_branch(record(0x110, 0x100, kind=BranchKind.DIRECT_JUMP))
            h.monitor.iteration_boundary(record(0x110, 0x100, kind=BranchKind.DIRECT_JUMP))
        h.monitor.exit_loop(cycle=0)
        stats = h.monitor.stats
        assert stats.iterations_total == 4
        assert stats.new_paths_hashed == 1
        assert stats.repeated_paths_compressed == 3
        assert stats.pairs_hashed_from_loops == 1
        assert stats.pairs_compressed == 3
        assert stats.as_dict()["loops_exited"] == 1

    def test_errors_without_active_loop(self):
        h = Harness()
        with pytest.raises(RuntimeError):
            h.monitor.loop_branch(record(0x10, 0x20))
        with pytest.raises(RuntimeError):
            h.monitor.iteration_boundary(record(0x10, 0x20))
        with pytest.raises(RuntimeError):
            h.monitor.exit_loop(cycle=0)
