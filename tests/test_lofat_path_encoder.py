"""Unit tests for the loop path encoder (Figure 4 semantics)."""

import pytest

from repro.lofat.config import LoFatConfig
from repro.lofat.path_encoder import LoopPathEncoder, PathEncoding


class TestFigure4Encodings:
    """The canonical example from the paper."""

    def test_dashed_path_encodes_011(self):
        """N2 -> N3 -> N5 -> N6 -> N2: while-cond not taken, if-cond taken,
        (fall-through to N6), back jump."""
        encoder = LoopPathEncoder()
        encoder.on_conditional(False)   # N2: while condition stays in the loop
        encoder.on_conditional(True)    # N3: else branch taken
        encoder.on_direct_jump()        # N6: back jump to N2
        assert encoder.finish().bits == "011"

    def test_bold_path_encodes_0011(self):
        """N2 -> N3 -> N4 -> N6 -> N2: both conditionals not taken, then the
        jump out of N4 and the back jump."""
        encoder = LoopPathEncoder()
        encoder.on_conditional(False)   # N2
        encoder.on_conditional(False)   # N3: falls through into N4
        encoder.on_direct_jump()        # N4 -> N6
        encoder.on_direct_jump()        # N6 -> N2
        assert encoder.finish().bits == "0011"

    def test_the_two_paths_have_distinct_ids(self):
        dashed = PathEncoding(bits="011")
        bold = PathEncoding(bits="0011")
        assert dashed.path_id != bold.path_id


class TestEncoderBehaviour:
    def test_conditional_bits(self):
        encoder = LoopPathEncoder()
        encoder.on_conditional(True)
        encoder.on_conditional(False)
        encoder.on_conditional(True)
        assert encoder.finish().bits == "101"

    def test_indirect_branches_use_n_bit_codes(self):
        config = LoFatConfig(indirect_target_bits=4)
        encoder = LoopPathEncoder(config)
        encoder.on_conditional(True)
        code = encoder.on_indirect(0x800)
        assert code == 1
        encoding = encoder.finish()
        assert encoding.bits == "1" + "0001"
        assert encoding.indirect_codes == (1,)

    def test_repeated_indirect_target_reuses_code(self):
        encoder = LoopPathEncoder()
        first = encoder.on_indirect(0x444)
        encoder.finish()
        second = encoder.on_indirect(0x444)
        assert first == second == 1

    def test_cam_overflow_encodes_all_zero(self):
        config = LoFatConfig(indirect_target_bits=2, max_indirect_branches_per_path=1,
                             max_branches_per_path=16)
        encoder = LoopPathEncoder(config)
        for index in range(3):
            encoder.on_indirect(0x100 + 4 * index)
        code = encoder.on_indirect(0x999)
        assert code == 0
        assert encoder.finish().bits.endswith("00")

    def test_truncation_beyond_max_branches(self):
        config = LoFatConfig(max_branches_per_path=4, indirect_target_bits=2,
                             max_indirect_branches_per_path=1)
        encoder = LoopPathEncoder(config)
        for _ in range(6):
            encoder.on_conditional(True)
        encoding = encoder.finish()
        assert encoding.truncated
        assert len(encoding.bits) == 4
        assert encoding.branch_count == 6

    def test_finish_resets_path_but_keeps_cam(self):
        encoder = LoopPathEncoder()
        encoder.on_indirect(0x500)
        encoder.finish()
        assert encoder.is_empty
        assert encoder.cam.occupancy == 1

    def test_reset_loop_clears_cam(self):
        encoder = LoopPathEncoder()
        encoder.on_indirect(0x500)
        encoder.reset_loop()
        assert encoder.cam.occupancy == 0

    def test_current_bits_view(self):
        encoder = LoopPathEncoder()
        encoder.on_conditional(True)
        encoder.on_conditional(False)
        assert encoder.current_bits == "10"

    def test_empty_path_encoding(self):
        encoding = LoopPathEncoder().finish()
        assert encoding.bits == ""
        assert encoding.path_id == 1
        assert encoding.width == 0


class TestPathEncodingSerialisation:
    def test_to_bytes_is_deterministic(self):
        encoding = PathEncoding(bits="0110", indirect_codes=(3,), branch_count=4)
        assert encoding.to_bytes() == encoding.to_bytes()

    def test_to_bytes_distinguishes_different_paths(self):
        a = PathEncoding(bits="011")
        b = PathEncoding(bits="0011")
        c = PathEncoding(bits="011", truncated=True)
        assert a.to_bytes() != b.to_bytes()
        assert a.to_bytes() != c.to_bytes()

    def test_str_rendering(self):
        assert str(PathEncoding(bits="01")) == "01"
        assert "truncated" in str(PathEncoding(bits="01", truncated=True))

    def test_width_and_path_id(self):
        encoding = PathEncoding(bits="0011")
        assert encoding.width == 4
        assert encoding.path_id == int("10011", 2)
