"""The attestation server must serve many provers and fail closed on abuse.

Two families of pins:

* **Protocol fuzz, fail-closed** (the satellite requirement): truncated
  frames, oversized length prefixes, unknown frame types, malformed
  reports, wrong scheme tags and mid-stream disconnects must each tear
  down at most the offending connection -- the server keeps serving and
  never crashes.
* **Service behaviour**: version negotiation, lazy program registration,
  challenge withdrawal on disconnect, batched sessions, the shared
  measurement database (warm verification is lookup-only) and the
  trace-store-backed reference path.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.attestation.framing import (
    FrameType,
    encode_frame,
    hello_payload,
    read_frame,
    write_frame,
)
from repro.attestation.prover import Prover
from repro.attestation.protocol import AttestationReport
from repro.attestation.verifier import Verifier
from repro.service.client import (
    AttestationClient,
    RemoteAttestationError,
    SimulatedProver,
    run_load,
)
from repro.service.server import AttestationServer
from repro.service.tracestore import TraceStore, execution_signature
from repro.service.worker import execute_capture_job
from repro.workloads import get_workload

WORKLOAD = "figure4_loop"


def serve(coro_factory, **server_kwargs):
    """Run ``coro_factory(server)`` against a fresh started server."""
    async def go():
        server = AttestationServer(**server_kwargs)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()
    return asyncio.run(go())


async def raw_connection(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def handshake(reader, writer, device_id="prover-0", versions=(1,)):
    await write_frame(writer, FrameType.HELLO,
                      hello_payload(versions, device_id))
    frame = await read_frame(reader)
    assert frame is not None
    return frame


async def connected_client(server, device_id="prover-0", trace_store=None):
    client = AttestationClient(
        "127.0.0.1", server.port, device_id,
        SimulatedProver(device_id=device_id, trace_store=trace_store))
    await client.connect()
    return client


class TestHandshake:
    def test_hello_negotiates_version_and_lists_schemes(self):
        async def scenario(server):
            client = await connected_client(server)
            info = client.server_info
            await client.close()
            return info
        info = serve(scenario)
        assert info["version"] == 1
        assert info["schemes"] == ["cflat", "lofat", "static"]

    def test_version_mismatch_is_fatal(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            frame_type, payload = await handshake(reader, writer, versions=(99,))
            assert frame_type == FrameType.ERROR
            document = json.loads(payload)
            writer.close()
            return document, server.stats.protocol_errors
        document, errors = serve(scenario)
        assert document["code"] == "version_mismatch"
        assert document["fatal"] is True
        assert errors == 1

    def test_first_frame_must_be_hello(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            await write_frame(writer, FrameType.STATS_REQUEST)
            frame_type, payload = await read_frame(reader)
            writer.close()
            return frame_type, json.loads(payload)
        frame_type, document = serve(scenario)
        assert frame_type == FrameType.ERROR
        assert document["code"] == "hello_expected"

    def test_malformed_hello_json_is_fatal(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            await write_frame(writer, FrameType.HELLO, b"not json")
            frame_type, payload = await read_frame(reader)
            writer.close()
            return json.loads(payload)
        assert serve(scenario)["code"] == "malformed_hello"


class TestFailClosed:
    """The satellite fuzz matrix: every abuse path must fail closed."""

    def test_oversized_length_prefix(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            await handshake(reader, writer)
            writer.write(bytes([FrameType.REPORT])
                         + (1 << 31).to_bytes(4, "little"))
            await writer.drain()
            frame_type, payload = await read_frame(reader)
            assert frame_type == FrameType.ERROR
            assert json.loads(payload)["code"] == "frame_too_large"
            assert await read_frame(reader) is None  # connection torn down
            # ... and the server still serves new connections.
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted, server.stats.protocol_errors
        accepted, errors = serve(scenario)
        assert accepted and errors == 1

    def test_unknown_frame_type_byte(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            await handshake(reader, writer)
            writer.write(b"\xee" + (0).to_bytes(4, "little"))
            await writer.drain()
            frame_type, payload = await read_frame(reader)
            writer.close()
            return json.loads(payload)["code"]
        assert serve(scenario) == "unknown_frame_type"

    def test_mid_stream_disconnect_leaves_server_alive(self):
        async def scenario(server):
            reader, writer = await raw_connection(server)
            await handshake(reader, writer)
            # Half a frame header, then vanish.
            writer.write(bytes([FrameType.REPORT, 0x10]))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # Give the handler a tick to observe the EOF.
            await asyncio.sleep(0.05)
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted, server.stats.active_connections
        accepted, active = serve(scenario)
        assert accepted
        assert active == 0

    def test_malformed_report_payload_is_fatal(self):
        async def scenario(server):
            client = await connected_client(server)
            await client.request_challenge(WORKLOAD)
            await write_frame(client._writer, FrameType.REPORT,
                              b"\x01garbage-report-bytes")
            with pytest.raises(RemoteAttestationError) as caught:
                await client._expect(FrameType.VERDICT)
            return caught.value.code, caught.value.fatal
        code, fatal = serve(scenario)
        assert code == "malformed_report" and fatal

    def test_wrong_scheme_tag_rejected_as_scheme_mismatch(self):
        async def scenario(server):
            client = await connected_client(server)
            challenge = await client.request_challenge(WORKLOAD, None, "lofat")
            report = client.prover.respond(challenge)
            retagged = AttestationReport(
                program_id=report.program_id,
                measurement=report.measurement,
                metadata=report.metadata,
                nonce=report.nonce,
                signature=report.signature,
                exit_code=report.exit_code,
                output=report.output,
                scheme="cflat",
            )
            verdict = await client.submit_report(retagged)
            await client.close()
            return verdict
        verdict = serve(scenario)
        assert not verdict.accepted
        assert verdict.reason == "scheme_mismatch"

    def test_unknown_scheme_in_challenge_request_is_nonfatal(self):
        async def scenario(server):
            client = await connected_client(server)
            with pytest.raises(RemoteAttestationError) as caught:
                await client.request_challenge(WORKLOAD, None, "no-such-scheme")
            assert caught.value.code == "unknown_scheme"
            assert not caught.value.fatal
            # The session survives the rejected request.
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted
        assert serve(scenario)

    def test_unknown_program_is_nonfatal(self):
        async def scenario(server):
            client = await connected_client(server)
            with pytest.raises(RemoteAttestationError) as caught:
                await client.request_challenge("no-such-workload")
            assert caught.value.code == "unknown_program"
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted
        assert serve(scenario)

    def test_shutdown_refused_unless_enabled(self):
        async def scenario(server):
            client = await connected_client(server)
            with pytest.raises(RemoteAttestationError) as caught:
                await client.shutdown_server()
            return caught.value.code
        assert serve(scenario, allow_shutdown=False) == "shutdown_refused"

    def test_random_blob_connections_never_kill_the_server(self):
        """Seeded byte-soup fuzz against the raw socket."""
        import random

        rng = random.Random(0x10FA7)
        blobs = [bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
                 for _ in range(24)]

        async def scenario(server):
            for blob in blobs:
                reader, writer = await raw_connection(server)
                writer.write(blob)
                await writer.drain()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await asyncio.sleep(0.05)
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted
        assert serve(scenario)


class TestVerification:
    def test_all_three_schemes_accept_benign_reports(self):
        async def scenario(server):
            client = await connected_client(server)
            verdicts = {}
            for scheme in ("lofat", "cflat", "static"):
                _, verdict = await client.attest_round(WORKLOAD, None, scheme)
                verdicts[scheme] = verdict
            await client.close()
            return verdicts
        verdicts = serve(scenario)
        assert all(v.accepted for v in verdicts.values())
        assert {v.reason for v in verdicts.values()} == {"accepted"}

    def test_warm_database_makes_repeat_verification_lookup_only(self):
        async def scenario(server):
            client = await connected_client(server)
            await client.attest_round(WORKLOAD)
            misses_after_first = server.database.misses
            opened_after_first = server.pool.sessions_opened
            for _ in range(3):
                _, verdict = await client.attest_round(WORKLOAD)
                assert verdict.accepted
            await client.close()
            return (misses_after_first, server.database.misses,
                    opened_after_first, server.pool.sessions_opened)
        first_m, later_m, first_s, later_s = serve(scenario)
        assert later_m == first_m  # no further misses
        assert later_s == first_s  # no further reference sessions

    def test_trace_store_backed_reference_replays_instead_of_simulating(
            self, tmp_path):
        store = TraceStore(directory=str(tmp_path))
        workload = get_workload(WORKLOAD)
        signature = execution_signature(WORKLOAD, tuple(workload.inputs))
        response = execute_capture_job(
            (signature, WORKLOAD, tuple(workload.inputs), None))
        store.put_bytes(
            signature, response.trace_bytes, response.exit_code,
            response.output, response.instructions, response.cycles,
            response.replayable)

        async def scenario(server):
            client = await connected_client(server, trace_store=store)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict, server.database.stats()
        verdict, stats = serve(scenario, trace_store=store)
        assert verdict.accepted
        # The reference landed under both keyspaces: input-keyed and
        # trace-digest-keyed.
        assert stats["entries"] == 1
        assert stats["trace_entries"] == 1

    def test_disconnect_withdraws_outstanding_challenges(self):
        async def scenario(server):
            client = await connected_client(server)
            challenge = await client.request_challenge(WORKLOAD)
            report = client.prover.respond(challenge)
            await client.close()  # disconnect with the challenge unanswered
            await asyncio.sleep(0.05)
            assert server.verifier.outstanding_challenge(challenge.nonce) is None
            # Answering the withdrawn nonce later must be rejected as stale.
            client = await connected_client(server)
            verdict = await client.submit_report(report)
            await client.close()
            return verdict
        verdict = serve(scenario)
        assert not verdict.accepted
        assert verdict.reason == "nonce_reused"

    def test_rejected_report_keeps_the_challenge_withdrawable(self):
        """A rejection that does not consume the nonce (wrong scheme tag)
        must leave the challenge outstanding, and disconnecting must then
        withdraw it -- the nonce can never verify later."""
        from repro.attestation.protocol import AttestationReport

        async def scenario(server):
            client = await connected_client(server)
            challenge = await client.request_challenge(WORKLOAD, None, "lofat")
            report = client.prover.respond(challenge)
            retagged = AttestationReport(
                program_id=report.program_id, measurement=report.measurement,
                metadata=report.metadata, nonce=report.nonce,
                signature=report.signature, scheme="cflat",
            )
            verdict = await client.submit_report(retagged)
            assert verdict.reason == "scheme_mismatch"
            # The nonce was not consumed: still outstanding on the server.
            assert server.verifier.outstanding_challenge(
                challenge.nonce) is not None
            await client.close()
            await asyncio.sleep(0.05)
            # ... and withdrawn at disconnect.
            assert server.verifier.outstanding_challenge(
                challenge.nonce) is None
            client = await connected_client(server)
            late = await client.submit_report(report)
            await client.close()
            return late
        late = serve(scenario)
        assert not late.accepted
        assert late.reason == "nonce_reused"

    def test_internal_verify_failure_fails_closed_per_connection(self):
        """An internal error during verification (corrupt store, I/O) must
        answer an ERROR frame and drop only that connection."""
        async def scenario(server):
            async def exploding(scheme, program, inputs):
                raise RuntimeError("simulated corrupt trace blob")

            original = server._expected_measurement
            server._expected_measurement = exploding
            client = await connected_client(server)
            challenge = await client.request_challenge(WORKLOAD)
            report = client.prover.respond(challenge)
            await write_frame(client._writer, FrameType.REPORT,
                              report.to_bytes())
            with pytest.raises(RemoteAttestationError) as caught:
                await client._expect(FrameType.VERDICT)
            assert caught.value.code == "internal_error"
            assert caught.value.fatal
            server._expected_measurement = original
            # The server survives and serves the next connection.
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict.accepted, server.stats.protocol_errors
        accepted, errors = serve(scenario)
        assert accepted and errors == 1

    def test_unsigned_reports_cannot_drive_reference_computation(self):
        """Reports with garbage signatures must be rejected without costing
        a reference simulation or a database entry."""
        from repro.attestation.protocol import AttestationReport

        async def scenario(server):
            client = await connected_client(server)
            for index in range(5):
                challenge = await client.request_challenge(
                    WORKLOAD, [index], "lofat")
                forged = AttestationReport(
                    program_id=challenge.program_id,
                    measurement=b"\x00" * 64,
                    metadata=client.prover.respond(challenge).metadata,
                    nonce=challenge.nonce,
                    signature=b"\x00" * 32,
                    scheme="lofat",
                )
                verdict = await client.submit_report(forged)
                assert verdict.reason == "bad_signature"
            await client.close()
            return server.pool.sessions_opened, len(server.database)
        sessions, entries = serve(scenario)
        assert sessions == 0
        assert entries == 0

    def test_batched_session_preserves_order_and_verdicts(self):
        async def scenario(server):
            client = await connected_client(server)
            rounds = [(WORKLOAD, None, "lofat"),
                      ("syringe_pump", None, "cflat"),
                      (WORKLOAD, None, "static")] * 2
            results = await client.attest_batch(rounds)
            await client.close()
            return rounds, results
        rounds, results = serve(scenario)
        assert len(results) == len(rounds)
        for (_, _, scheme), (report, verdict) in zip(rounds, results):
            assert report.scheme == scheme
            assert verdict.accepted

    def test_concurrent_provers_share_one_server(self):
        async def scenario(server):
            load = await run_load(
                "127.0.0.1", server.port, provers=6, rounds=4,
                schemes=("lofat", "cflat", "static"),
                workloads=(WORKLOAD,))
            return load, server.stats.as_dict()
        load, stats = serve(scenario)
        assert load.ok
        assert load.reports == 24
        assert stats["accepted"] >= 24
        assert stats["protocol_errors"] == 0
        assert stats["active_connections"] == 0

    def test_stats_frame_reports_database_and_pool(self):
        async def scenario(server):
            client = await connected_client(server)
            await client.attest_round(WORKLOAD)
            stats = await client.server_stats()
            await client.close()
            return stats
        stats = serve(scenario)
        assert stats["reports_verified"] == 1
        assert "database" in stats and "session_pool" in stats


class TestVerifierChallengeWithdrawal:
    """The Verifier additions the server builds on."""

    def test_discard_challenge_consumes_the_nonce(self):
        workload = get_workload(WORKLOAD)
        program = workload.build()
        prover = Prover({WORKLOAD: program})
        verifier = Verifier()
        verifier.register_program(WORKLOAD, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier())
        challenge = verifier.challenge(WORKLOAD, workload.inputs)
        report = prover.attest(challenge)
        assert verifier.outstanding_challenge(challenge.nonce) is challenge
        assert verifier.discard_challenge(challenge.nonce)
        assert verifier.outstanding_challenge(challenge.nonce) is None
        assert not verifier.discard_challenge(challenge.nonce)
        verdict = verifier.verify(report)
        assert not verdict.accepted
        assert verdict.reason.value == "nonce_reused"
