"""The multi-process verifier fleet (repro.service.fleet + loadgen).

Covers the three layers the fleet deployment adds:

* the database substrate -- :class:`DeltaLog` append/recovery semantics,
  the snapshot overlay a worker layers over the shared base, and the
  parent-side delta merge (overlap dedup, last-writer-wins, crash during
  the merged save leaving the old file intact);
* the process fleet itself -- :class:`FleetServer` lifecycle in both
  dispatcher modes, ready files, wire-shutdown teardown, clean drain and
  the merged database being byte-identical to a single-process server's;
* the load generator -- heavy-tailed device sampling, churn accounting,
  and the stale/duplicate injections being *rejected* by a live fleet.
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import pytest

from repro.dataflow import analyze_program
from repro.service.client import AttestationClient, SimulatedProver
from repro.service.database import (
    DeltaLog,
    MeasurementDatabase,
    iter_delta_records,
)
from repro.service.fleet import (
    FleetError,
    FleetServer,
    resolve_dispatcher,
    reuseport_available,
)
from repro.service.loadgen import (
    STALE_REJECT_REASONS,
    FleetLoadReport,
    FleetLoadSpec,
    run_fleet_load,
    sample_device,
)
from repro.workloads import get_workload

#: Dispatcher modes exercisable on this host.  ``reuseport`` needs the
#: socket option; ``handoff`` needs the fork start method.
AVAILABLE_MODES = [
    mode for mode, ok in (
        ("reuseport", reuseport_available()),
        ("handoff", "fork" in __import__("multiprocessing").get_all_start_methods()),
    ) if ok
]


# --------------------------------------------------------------- DeltaLog
class TestDeltaLog:
    def test_append_iter_roundtrip(self, tmp_path):
        path = str(tmp_path / "delta.jsonl")
        with DeltaLog(path) as log:
            log.append({"kind": "entry", "n": 1})
            log.append({"kind": "trace", "n": 2})
            assert log.records_written == 2
        assert list(iter_delta_records(path)) == [
            {"kind": "entry", "n": 1},
            {"kind": "trace", "n": 2},
        ]

    def test_torn_tail_is_tolerated(self, tmp_path):
        """A writer killed mid-append leaves a partial final line; the
        reader yields every complete record and stops."""
        path = str(tmp_path / "delta.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "entry", "n": 1}\n')
            handle.write('{"kind": "entry", "n"')  # torn mid-write
        assert list(iter_delta_records(path)) == [{"kind": "entry", "n": 1}]

    def test_corrupt_middle_line_raises(self, tmp_path):
        """Garbage *followed by more data* is corruption, not a crash tail."""
        path = str(tmp_path / "delta.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "entry", "n": 1}\n')
            handle.write("not json\n")
            handle.write('{"kind": "entry", "n": 3}\n')
        with pytest.raises(ValueError, match="not the tail"):
            list(iter_delta_records(path))

    def test_non_object_line_raises(self, tmp_path):
        path = str(tmp_path / "delta.jsonl")
        with open(path, "w") as handle:
            handle.write("[1, 2]\n")
            handle.write('{"kind": "entry"}\n')
        with pytest.raises(ValueError, match="not an object"):
            list(iter_delta_records(path))

    def test_trailing_blank_lines_ignored(self, tmp_path):
        path = str(tmp_path / "delta.jsonl")
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n\n\n')
        assert list(iter_delta_records(path)) == [{"n": 1}]


# ------------------------------------------------------- snapshot overlay
def _compute(database, program, inputs, scheme):
    measurement, metadata, _ = database.lookup_or_compute(
        program, tuple(inputs), scheme=scheme)
    return measurement, metadata


class TestSnapshotOverlay:
    @pytest.fixture(scope="class")
    def pump(self):
        workload = get_workload("syringe_pump")
        return workload.build(), tuple(workload.inputs)

    def test_lookup_falls_through_to_snapshot(self, pump):
        program, inputs = pump
        base = MeasurementDatabase()
        _compute(base, program, inputs, "lofat")
        overlay = MeasurementDatabase(snapshot=base)
        assert overlay.lookup(program, inputs, scheme="lofat") is not None
        # Served from the snapshot: nothing was copied into the overlay.
        assert len(overlay) == 0
        assert overlay.hits == 1

    def test_writes_stay_local_and_mirror_to_the_delta_log(self, pump, tmp_path):
        program, inputs = pump
        base = MeasurementDatabase()
        overlay = MeasurementDatabase(snapshot=base)
        log = DeltaLog(str(tmp_path / "delta.jsonl"))
        overlay.attach_delta_log(log)
        _compute(overlay, program, inputs, "lofat")
        log.close()
        assert len(overlay) == 1
        assert len(base) == 0  # the snapshot is never mutated
        records = list(iter_delta_records(log.path))
        assert [r["kind"] for r in records] == ["entry"]
        assert records[0]["scheme"] == "lofat"
        assert records[0]["program_digest"] == program.digest

    def test_stats_show_the_layering(self, pump, tmp_path):
        program, inputs = pump
        base = MeasurementDatabase()
        _compute(base, program, inputs, "lofat")
        overlay = MeasurementDatabase(snapshot=base)
        log = DeltaLog(str(tmp_path / "delta.jsonl"))
        overlay.attach_delta_log(log)
        _compute(overlay, program, inputs, "cflat")
        log.close()
        stats = overlay.stats()
        assert stats["snapshot_entries"] == 1
        assert stats["delta_records"] == 1
        assert stats["entries"] == 1


# ------------------------------------------------------------ delta merge
class TestDeltaMerge:
    @pytest.fixture(scope="class")
    def pump(self):
        workload = get_workload("syringe_pump")
        return workload.build(), tuple(workload.inputs)

    def test_concurrent_workers_with_overlap_merge_to_single_process_bytes(
            self, pump, tmp_path):
        """Two workers over one base, overlapping on cflat: the merged base
        serialises byte-identically to a single-process database that
        computed the same references -- the PR's storage acceptance pin."""
        program, inputs = pump

        single = MeasurementDatabase()
        for scheme in ("lofat", "cflat", "static"):
            _compute(single, program, inputs, scheme)

        base = MeasurementDatabase()
        logs = []
        for index, schemes in enumerate((("lofat", "cflat"),
                                         ("cflat", "static"))):
            worker = MeasurementDatabase(snapshot=base)
            log = DeltaLog(str(tmp_path / ("delta-%d.jsonl" % index)))
            worker.attach_delta_log(log)
            for scheme in schemes:
                _compute(worker, program, inputs, scheme)
            log.close()
            logs.append(log.path)

        applied = sum(base.merge_delta_log(path) for path in logs)
        assert applied == 4  # both cflat records applied; last writer wins
        assert len(base) == 3  # ...but the key space deduplicates them
        assert base.to_json() == single.to_json()

        merged_path = str(tmp_path / "merged.json")
        single_path = str(tmp_path / "single.json")
        base.save(merged_path)
        single.save(single_path)
        with open(merged_path, "rb") as merged, open(single_path, "rb") as one:
            assert merged.read() == one.read()

    def test_trace_records_merge(self, pump, tmp_path):
        program, inputs = pump
        worker = MeasurementDatabase()
        log = DeltaLog(str(tmp_path / "delta.jsonl"))
        worker.attach_delta_log(log)
        measurement, metadata = _compute(worker, program, inputs, "lofat")
        worker.store_trace("lofat", "t" * 64, None, measurement, metadata)
        log.close()
        base = MeasurementDatabase()
        assert base.merge_delta_log(log.path) == 2
        assert base.lookup_trace("lofat", "t" * 64) == (measurement, metadata)

    def test_policy_records_merge(self, pump, tmp_path):
        program, _ = pump
        policy = analyze_program(program).policy
        worker = MeasurementDatabase()
        log = DeltaLog(str(tmp_path / "delta.jsonl"))
        worker.attach_delta_log(log)
        worker.store_policy(policy)
        log.close()
        base = MeasurementDatabase()
        assert base.merge_delta_log(log.path) == 1
        merged = base.lookup_policy(program.digest)
        assert merged is not None
        assert merged.to_json() == policy.to_json()

    def test_unknown_record_kind_raises(self, tmp_path):
        path = str(tmp_path / "delta.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            MeasurementDatabase().merge_delta_log(path)

    def test_crash_during_merged_save_leaves_old_file_intact(
            self, pump, tmp_path, monkeypatch):
        """The merged save is atomic: a crash at the rename must not tear
        the database other readers (and the next fleet start) load."""
        program, inputs = pump
        db_path = str(tmp_path / "db.json")
        base = MeasurementDatabase()
        _compute(base, program, inputs, "lofat")
        base.save(db_path)
        before = open(db_path, "rb").read()

        worker = MeasurementDatabase(snapshot=base)
        log = DeltaLog(str(tmp_path / "delta.jsonl"))
        worker.attach_delta_log(log)
        _compute(worker, program, inputs, "cflat")
        log.close()
        assert base.merge_delta_log(log.path) == 1

        real_replace = os.replace

        def crash(*args, **kwargs):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            base.save(db_path)
        monkeypatch.setattr(os, "replace", real_replace)

        assert open(db_path, "rb").read() == before
        assert len(MeasurementDatabase.load(db_path)) == 1  # the old state


# ---------------------------------------------------------- process fleet
def _make_fleet(tmp_path, workers=2, dispatcher="auto", **kwargs):
    return FleetServer(
        host="127.0.0.1",
        port=0,
        workers=workers,
        dispatcher=dispatcher,
        state_dir=str(tmp_path / "state"),
        **kwargs,
    )


class TestFleetServer:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(FleetError, match="at least one worker"):
            FleetServer(workers=0)

    def test_unknown_dispatcher_rejected(self):
        with pytest.raises(FleetError, match="unknown dispatcher"):
            resolve_dispatcher("roundrobin")

    def test_auto_resolves_to_an_available_mode(self):
        assert resolve_dispatcher("auto") in ("reuseport", "handoff")

    @pytest.mark.parametrize("dispatcher", AVAILABLE_MODES)
    def test_fleet_serves_drains_and_merges(self, dispatcher, tmp_path):
        db_path = str(tmp_path / "measurements.json")
        fleet = _make_fleet(tmp_path, workers=2, dispatcher=dispatcher,
                            database_path=db_path,
                            ready_file=str(tmp_path / "fleet.ready"))
        fleet.start()
        try:
            # Every worker announced readiness; the fleet ready file names
            # the shared endpoint.
            with open(str(tmp_path / "fleet.ready")) as handle:
                host, _, port = handle.read().strip().partition(":")
            assert host == "127.0.0.1" and int(port) == fleet.port

            report = run_fleet_load(
                "127.0.0.1", fleet.port,
                devices=100, connections=4, reports=24,
                schemes=("lofat",), workloads=("syringe_pump",))
            assert report.ok, report.rejections
            assert report.reports == 24
        finally:
            summary = fleet.stop()

        assert summary.clean, summary.worker_exit_codes
        assert summary.worker_exit_codes == [0, 0]
        assert summary.dispatcher == dispatcher
        # Every worker wrote at least the shared reference into its delta
        # log; the merge deduplicates them into the one database entry.
        assert summary.delta_records >= 1
        assert summary.database_entries == 1
        assert summary.stats["reports_verified"] >= report.reports
        assert summary.stats["accepted"] >= report.accepted
        assert summary.stats["workers_reporting"] == 2

        saved = MeasurementDatabase.load(db_path)
        assert len(saved) == 1

    def test_merged_database_matches_single_process_server(self, tmp_path):
        """The fleet's saved database is byte-identical to the database a
        single-process server accumulates serving the same traffic --
        measurement entries and stored policies both."""
        db_path = str(tmp_path / "measurements.json")
        fleet = _make_fleet(tmp_path, workers=2, database_path=db_path)
        fleet.start()
        try:
            report = run_fleet_load(
                "127.0.0.1", fleet.port,
                devices=10, connections=4, reports=18,
                schemes=("lofat", "cflat", "static"),
                workloads=("syringe_pump",))
            assert report.ok, report.rejections
        finally:
            fleet.stop()

        from repro.service.server import AttestationServer

        single = MeasurementDatabase()

        async def single_process_traffic():
            server = AttestationServer(database=single)
            await server.start()
            try:
                prover = SimulatedProver(device_id="device-single")
                client = AttestationClient(
                    "127.0.0.1", server.port, "device-single", prover)
                await client.connect()
                for scheme in ("lofat", "cflat", "static"):
                    _, verdict = await client.attest_round(
                        "syringe_pump", None, scheme)
                    assert verdict.accepted
                await client.close()
            finally:
                await server.stop()
        asyncio.run(single_process_traffic())

        single_path = str(tmp_path / "single.json")
        single.save(single_path)
        with open(db_path, "rb") as merged, open(single_path, "rb") as one:
            assert merged.read() == one.read()

    def test_wire_shutdown_tears_the_whole_fleet_down(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=2, allow_shutdown=True)
        fleet.start()

        async def shutdown():
            client = AttestationClient(
                "127.0.0.1", fleet.port, "prover-admin")
            await client.connect()
            await client.shutdown_server()
        asyncio.run(shutdown())

        fleet.wait()  # returns via the stop flag, not worker death
        summary = fleet.stop()
        assert summary.clean, summary.worker_exit_codes

    def test_stop_is_idempotent(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=1)
        fleet.start()
        first = fleet.stop()
        assert fleet.stop() is first

    def test_double_start_rejected(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=1)
        fleet.start()
        try:
            with pytest.raises(FleetError, match="already started"):
                fleet.start()
        finally:
            fleet.stop()

    def test_workers_write_stats_files(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=2)
        fleet.start()
        try:
            report = run_fleet_load(
                "127.0.0.1", fleet.port, devices=5, connections=2,
                reports=8, schemes=("lofat",), workloads=("syringe_pump",))
            assert report.ok
        finally:
            summary = fleet.stop()
        stats_files = sorted(
            name for name in os.listdir(str(tmp_path / "state"))
            if name.startswith("stats-"))
        assert stats_files == ["stats-0.json", "stats-1.json"]
        for name in stats_files:
            with open(str(tmp_path / "state" / name)) as handle:
                payload = json.load(handle)
            assert payload["drained"] is True
            assert "server" in payload and "database" in payload
        assert len(summary.stats["per_worker"]) == 2


# ---------------------------------------------------------- load generator
class TestLoadGenerator:
    def test_sample_device_is_deterministic_and_in_range(self):
        population = 1_000_000
        first = [sample_device(random.Random(7), population)
                 for _ in range(50)]
        second = [sample_device(random.Random(7), population)
                  for _ in range(50)]
        assert first == second
        for device in first:
            rank = int(device.split("-")[1])
            assert 0 <= rank < population

    def test_sample_device_is_heavy_tailed(self):
        rng = random.Random(11)
        ranks = [int(sample_device(rng, 1_000_000).split("-")[1])
                 for _ in range(2000)]
        # A few hot devices dominate...
        assert ranks.count(0) > 50
        # ...while the deep tail still gets drawn.
        assert max(ranks) > 10_000

    def test_spec_validation(self):
        for field_name, value in (
            ("devices", 0), ("connections", 0), ("processes", 0),
            ("reports", 0), ("schemes", ()), ("workloads", ()),
            ("stale_fraction", 1.5), ("duplicate_fraction", -0.1),
        ):
            spec = FleetLoadSpec(**{field_name: value})
            with pytest.raises(ValueError):
                spec.validate()

    def test_report_merge_and_ok(self):
        left = FleetLoadReport(processes=1, connections=2, reports=10,
                               accepted=10, stale_injected=1,
                               stale_rejected=1, elapsed_seconds=1.0,
                               by_scheme={"lofat": 10})
        right = FleetLoadReport(processes=1, connections=2, reports=5,
                                accepted=5, elapsed_seconds=2.0,
                                by_scheme={"lofat": 3, "cflat": 2})
        left.merge(right)
        assert left.ok
        assert left.reports == 15 and left.accepted == 15
        assert left.by_scheme == {"lofat": 13, "cflat": 2}
        assert left.elapsed_seconds == 2.0
        assert left.reports_per_second == 7.5
        bad = FleetLoadReport(reports=1, accepted=0, rejected_unexpected=1)
        assert not bad.ok
        unrejected = FleetLoadReport(reports=1, accepted=1, stale_injected=1)
        assert not unrejected.ok

    def test_stale_and_duplicate_injections_are_rejected_by_a_live_fleet(
            self, tmp_path):
        """Every injected stale report (nonce withdrawn on disconnect) and
        duplicate report (nonce consumed) must be refused over the wire --
        the load generator doubling as a freshness check."""
        fleet = _make_fleet(tmp_path, workers=2, allow_shutdown=False)
        fleet.start()
        try:
            report = run_fleet_load(
                "127.0.0.1", fleet.port,
                devices=50, connections=3, reports=18,
                schemes=("lofat",), workloads=("syringe_pump",),
                stale_fraction=1.0, duplicate_fraction=0.5)
            assert report.ok, report.rejections
            assert report.stale_injected > 0
            assert report.stale_rejected == report.stale_injected
            assert report.duplicate_injected > 0
            assert report.duplicate_rejected == report.duplicate_injected
            # Stale retries travel on fresh connections the dispatcher may
            # route anywhere; the accounted reasons stay within the
            # freshness-preserving set by construction.
            assert STALE_REJECT_REASONS >= {
                "nonce_reused", "unknown_nonce", "unknown_program"}
        finally:
            fleet.stop()

    def test_reconnect_storms_churn_every_connection(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=1)
        fleet.start()
        try:
            report = run_fleet_load(
                "127.0.0.1", fleet.port,
                devices=20, connections=2, reports=30,
                schemes=("lofat",), workloads=("syringe_pump",),
                storms=2)
            assert report.ok, report.rejections
            assert report.storms_completed == 2
            assert report.reconnects >= report.storms_completed
            assert report.sessions > report.connections
        finally:
            fleet.stop()

    def test_multi_process_clients_aggregate(self, tmp_path):
        fleet = _make_fleet(tmp_path, workers=2)
        fleet.start()
        try:
            report = run_fleet_load(
                "127.0.0.1", fleet.port,
                devices=100, connections=4, processes=2, reports=24,
                schemes=("lofat",), workloads=("syringe_pump",))
            assert report.ok, report.rejections
            assert report.processes == 2
            assert report.connections == 4
            assert report.reports == 24
        finally:
            fleet.stop()
