"""Assembler/disassembler error paths and the reassembly round-trip.

Two halves:

* Error paths the tier-1 suite previously never pinned: duplicate label
  definitions, immediates and branch offsets that do not fit their encoding
  fields, and malformed operands -- each must raise the documented error
  class with a line number, never a bare ``Exception`` or silent wrap.
* The disassemble -> reassemble property: the canonical text rendered by
  :func:`repro.isa.disassembler.disassemble_program` must reassemble to the
  byte-identical code section, exercised over *compiled* programs (the
  workload-language ports and seeded family members), whose generated code
  covers every instruction shape the code generator can emit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import disassemble_program
from repro.isa.encoding import EncodingError
from repro.lang import compile_source
from repro.lang.families import get_family
from repro.lang.ports import PORTS, compile_port

#: Width of the "address:  word  " prefix in disassembly listing lines.
_PREFIX = len("%08x:  %08x  " % (0, 0))


def _reassemble(program):
    """Disassemble ``program``'s code and assemble the listing again."""
    listing = disassemble_program(program.code, base=program.code_base)
    source = ".text\n" + "".join(
        "    %s\n" % line[_PREFIX:] for line in listing)
    return assemble(source)


class TestAssemblerErrors:
    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="symbol redefined"):
            assemble(".text\nfoo:\n    nop\nfoo:\n    nop\n")

    def test_duplicate_label_reports_line(self):
        with pytest.raises(AssemblerError, match="line 4"):
            assemble(".text\nfoo:\n    nop\nfoo:\n    nop\n")

    def test_same_label_same_address_is_allowed(self):
        # Aliases at one address are legal (two names for one entry point).
        program = assemble(".text\nfoo:\nbar:\n    nop\n")
        assert program.symbols["foo"] == program.symbols["bar"]

    def test_undefined_symbol_rejected(self):
        # An unknown label falls through to integer parsing and fails there.
        with pytest.raises(AssemblerError, match="nowhere"):
            assemble(".text\n    j nowhere\n")

    def test_itype_immediate_out_of_range(self):
        with pytest.raises(EncodingError, match="does not fit"):
            assemble(".text\n    addi a0, a0, 5000\n")

    def test_itype_immediate_negative_out_of_range(self):
        with pytest.raises(EncodingError, match="does not fit"):
            assemble(".text\n    addi a0, a0, -2049\n")

    def test_itype_immediate_boundaries_accepted(self):
        assemble(".text\n    addi a0, a0, 2047\n    addi a0, a0, -2048\n")

    def test_store_offset_out_of_range(self):
        with pytest.raises(EncodingError, match="does not fit"):
            assemble(".text\n    sw a0, 4096(sp)\n")

    def test_branch_offset_out_of_range(self):
        # A conditional branch reaches +-4 KiB; jump over >4 KiB of nops.
        source = (".text\n    beqz a0, far\n" + "    nop\n" * 1100
                  + "far:\n    nop\n")
        with pytest.raises(EncodingError, match="does not fit"):
            assemble(source)

    def test_branch_within_range_accepted(self):
        source = (".text\n    beqz a0, near\n" + "    nop\n" * 1000
                  + "near:\n    nop\n")
        program = assemble(source)
        assert len(program.code) == 4 * 1002

    def test_odd_branch_offset_rejected(self):
        with pytest.raises(EncodingError, match="must be even"):
            assemble(".text\n    beq a0, a1, 3\n")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble(".text\n    add a0, a1\n")

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n    addi q7, a0, 1\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".text\n    frobnicate a0, a1\n")

    def test_unsupported_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unsupported directive"):
            assemble(".text\n.unknown_directive 4\n")


class TestDisassembleReassemble:
    @pytest.mark.parametrize("port_name", sorted(PORTS))
    def test_ports_round_trip(self, port_name):
        program = compile_port(port_name)
        again = _reassemble(program.program)
        assert again.code == program.program.code

    @pytest.mark.parametrize("family_name,params", [
        ("nest", {"depth": 4, "iters": 3}),
        ("branchy", {"branches": 6, "filler": 3}),
        ("calls", {"shape": "tree", "depth": 3}),
        ("arrays", {"size": 64, "window": 8}),
    ])
    def test_family_members_round_trip(self, family_name, params):
        family = get_family(family_name)
        compiled = compile_source(
            family.source(params), name="rt_%s" % family_name)
        again = _reassemble(compiled.program)
        assert again.code == compiled.program.code

    @settings(max_examples=25, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=4),
        iters=st.integers(min_value=2, max_value=6),
        branches=st.integers(min_value=1, max_value=8),
    )
    def test_generated_programs_round_trip(self, depth, iters, branches):
        """Property: every compiled program survives the text round-trip."""
        nest = get_family("nest").source({"depth": depth, "iters": iters})
        branchy = get_family("branchy").source(
            {"branches": branches, "filler": depth - 1})
        for source in (nest, branchy):
            compiled = compile_source(source, name="prop")
            again = _reassemble(compiled.program)
            assert again.code == compiled.program.code

    def test_round_trip_covers_all_emitted_mnemonics(self):
        """The corpus exercised above covers every mnemonic codegen emits."""
        from repro.isa.encoding import decode

        seen = set()
        for port_name in PORTS:
            code = compile_port(port_name).program.code
            for offset in range(0, len(code), 4):
                word = int.from_bytes(code[offset:offset + 4], "little")
                seen.add(decode(word, offset).mnemonic)
        # The structural core of the code generator's output.
        assert {"addi", "add", "sub", "lw", "sw", "jal", "jalr", "beq",
                "ecall"} <= seen
