"""Tests for the campaign runner: fan-out, recombination, caching."""

import pytest

from repro.service import (
    CampaignRunner,
    CampaignSpec,
    ConfigVariant,
    MeasurementDatabase,
    WorkloadSelection,
    experiment_campaign,
)


@pytest.fixture
def small_spec():
    """A small but representative campaign: benign runs plus one attack."""
    return CampaignSpec(
        name="small",
        workloads=[
            WorkloadSelection("figure4_loop", input_sets=[[4], [8]]),
            WorkloadSelection("auth_check"),
        ],
        configs=[ConfigVariant(),
                 ConfigVariant("deep", {"max_nested_loops": 4})],
        attacks=["auth_flag_flip"],
    )


class TestSequentialExecution:
    def test_benign_accepted_attacks_rejected(self, small_spec):
        result = CampaignRunner().run(small_spec)
        assert result.ok
        benign = [r for r in result.results if not r.job.expects_detection]
        attacked = [r for r in result.results if r.job.expects_detection]
        assert benign and attacked
        assert all(r.accepted for r in benign)
        assert all(r.detected for r in attacked)

    def test_summary_shape(self, small_spec):
        result = CampaignRunner().run(small_spec)
        summary = result.summary()
        assert summary["jobs"] == len(small_spec.expand())
        assert summary["ok"] is True
        assert summary["attacks_detected"] == "2/2"
        assert summary["database"]["entries"] > 0
        assert result.jobs_per_second > 0

    def test_replay_mode_skips_database(self, small_spec):
        small_spec.verify_mode = "replay"
        database = MeasurementDatabase()
        result = CampaignRunner(database=database).run(small_spec)
        assert result.ok
        assert len(database) == 0
        assert all(r.cache_hit is None for r in result.results)

    def test_structural_mode(self):
        spec = CampaignSpec(name="structural",
                            workloads=[WorkloadSelection("figure4_loop")],
                            verify_mode="structural")
        result = CampaignRunner().run(spec)
        assert result.ok


class TestParallelExecution:
    def test_parallel_results_identical_to_sequential(self, small_spec):
        sequential = CampaignRunner().run(small_spec, workers=1)
        parallel = CampaignRunner().run(small_spec, workers=4)
        assert parallel.identities() == sequential.identities()
        assert parallel.workers == 4

    def test_parallel_full_attack_suite(self):
        spec = experiment_campaign("e5")
        sequential = CampaignRunner().run(spec, workers=1)
        parallel = CampaignRunner().run(spec, workers=2)
        assert parallel.identities() == sequential.identities()
        assert parallel.ok
        assert parallel.detected_count == 4

    def test_more_workers_than_jobs(self):
        spec = CampaignSpec(name="tiny",
                            workloads=[WorkloadSelection("figure4_loop")])
        result = CampaignRunner().run(spec, workers=16)
        assert result.ok
        assert len(result.results) == 1


class TestSchemeMatrixExecution:
    """One campaign sweeping all three schemes, end to end (the tentpole
    acceptance criterion)."""

    @pytest.fixture
    def matrix_spec(self):
        return CampaignSpec(
            name="matrix",
            workloads=[WorkloadSelection("figure4_loop"),
                       WorkloadSelection("auth_check")],
            schemes=["lofat", "cflat", "static"],
            attacks=["auth_flag_flip"],
        )

    def test_matrix_runs_end_to_end(self, matrix_spec):
        database = MeasurementDatabase()
        result = CampaignRunner(database=database).run(matrix_spec)
        assert result.ok
        by_scheme = {}
        for job_result in result.results:
            by_scheme.setdefault(job_result.job.scheme, []).append(job_result)
        assert set(by_scheme) == {"lofat", "cflat", "static"}
        # Control-flow schemes reject the attack; static accepts it (and
        # that acceptance is the expected outcome).
        for scheme in ("lofat", "cflat"):
            attacked = [r for r in by_scheme[scheme] if r.job.attack]
            assert attacked and all(r.detected and r.ok for r in attacked)
        static_attacked = [r for r in by_scheme["static"] if r.job.attack]
        assert static_attacked
        assert all(r.accepted and r.ok for r in static_attacked)
        # The measurement database holds scheme-separated references.
        assert len(database) > 0

    def test_matrix_parallel_identical_to_sequential(self, matrix_spec):
        sequential = CampaignRunner().run(matrix_spec, workers=1)
        parallel = CampaignRunner().run(matrix_spec, workers=4)
        assert parallel.identities() == sequential.identities()
        assert parallel.ok

    def test_matrix_replay_mode(self, matrix_spec):
        matrix_spec.verify_mode = "replay"
        assert CampaignRunner().run(matrix_spec).ok

    def test_e11_preset_runs(self):
        result = CampaignRunner().run(experiment_campaign("e11"), workers=2)
        assert result.ok
        assert {r.job.scheme for r in result.results} == \
               {"lofat", "cflat", "static"}

    def test_matrix_database_roundtrip_warm_run(self, matrix_spec, tmp_path):
        database = MeasurementDatabase()
        CampaignRunner(database=database).run(matrix_spec)
        path = str(tmp_path / "matrix.json")
        database.save(path)
        warm = CampaignRunner(database=MeasurementDatabase.load(path))
        second = warm.run(matrix_spec)
        assert second.ok
        assert all(r.cache_hit for r in second.results)


class TestMeasurementCaching:
    def test_repeat_campaign_hits_database(self, small_spec):
        database = MeasurementDatabase()
        runner = CampaignRunner(database=database)

        first = runner.run(small_spec)
        assert first.ok
        cold_entries = len(database)
        assert cold_entries > 0

        second = runner.run(small_spec)
        assert second.ok
        # No new reference executions: every verification was a lookup.
        assert len(database) == cold_entries
        assert all(r.cache_hit for r in second.results)

    def test_repeats_within_one_campaign_share_references(self):
        spec = CampaignSpec(name="repeats",
                            workloads=[WorkloadSelection("figure4_loop")],
                            repeats=3)
        database = MeasurementDatabase()
        result = CampaignRunner(database=database).run(spec)
        assert result.ok
        assert len(database) == 1
        assert [r.cache_hit for r in result.results] == [False, True, True]

    def test_shared_database_across_runners(self, small_spec):
        database = MeasurementDatabase()
        CampaignRunner(database=database).run(small_spec)
        second = CampaignRunner(database=database).run(small_spec)
        assert all(r.cache_hit for r in second.results)

    def test_database_stats_are_per_run(self, small_spec):
        runner = CampaignRunner()
        first = runner.run(small_spec)
        second = runner.run(small_spec)
        assert first.database_stats["misses"] > 0
        # The warm run reports its own counters, not lifetime totals.
        assert second.database_stats["misses"] == 0
        assert second.database_stats["hit_rate"] == 1.0
        assert second.database_stats["hits"] == len(second.results)


class TestCpuConfigForwarding:
    def test_runner_cpu_config_reaches_prover_workers(self):
        from repro.cpu.core import CpuConfig
        from repro.cpu.exceptions import OutOfFuelError
        spec = CampaignSpec(name="fuel",
                            workloads=[WorkloadSelection("figure4_loop")])
        # If the workers silently kept the default instruction budget, this
        # tight budget would go unnoticed on the prover side.
        config = CpuConfig(max_instructions=50)
        with pytest.raises(OutOfFuelError):
            CampaignRunner(cpu_config=config).run(spec)

        roomy = CpuConfig(max_instructions=500_000)
        result = CampaignRunner(cpu_config=roomy).run(spec, workers=2)
        assert result.ok


class TestJobResults:
    def test_job_rows_render(self, small_spec):
        from repro.analysis.campaign_report import (
            format_campaign_failures,
            format_campaign_summary,
            format_campaign_table,
        )
        result = CampaignRunner().run(small_spec)
        summary = format_campaign_summary(result)
        assert "attacks detected : 2/2" in summary
        table = format_campaign_table(result, limit=3)
        assert "more jobs" in table
        assert format_campaign_failures(result) == "no unexpected job outcomes"

    def test_prover_numbers_reported(self, small_spec):
        result = CampaignRunner().run(small_spec)
        for job_result in result.results:
            assert job_result.instructions > 0
            assert job_result.cycles >= job_result.instructions
            assert job_result.measurement_hex


class TestWorkerProgramCache:
    """Regression: the per-worker program cache must key on the build, not
    just the workload name -- a re-registration under the same name (or a
    parameterized build) must never serve a stale Program."""

    def _register(self, name, return_value):
        from repro.workloads import WORKLOAD_REGISTRY
        from repro.workloads.common import Workload

        source = """
        _start:
            li a0, %d
            li a7, 93
            ecall
        """ % return_value
        WORKLOAD_REGISTRY[name] = lambda: Workload(
            name=name, description="cache regression probe", source=source)

    def test_reregistered_workload_is_reassembled(self):
        from repro.service.worker import _assembled_program
        from repro.workloads import WORKLOAD_REGISTRY

        name = "_worker_cache_probe"
        try:
            self._register(name, 1)
            first = _assembled_program(name)
            assert _assembled_program(name) is first  # cached within a build
            self._register(name, 2)
            second = _assembled_program(name)
            assert second is not first
            assert second.digest != first.digest
        finally:
            WORKLOAD_REGISTRY.pop(name, None)

    def test_campaign_picks_up_reregistered_workload(self):
        from repro.workloads import WORKLOAD_REGISTRY

        name = "_worker_cache_probe_campaign"
        try:
            self._register(name, 1)
            spec = CampaignSpec(
                name="probe",
                workloads=[WorkloadSelection(name)],
                verify_mode="replay",
            )
            assert CampaignRunner().run(spec).ok
            self._register(name, 2)  # same name, different binary
            assert CampaignRunner().run(spec).ok  # stale cache would reject
        finally:
            WORKLOAD_REGISTRY.pop(name, None)

    def test_parameterized_subclass_build_not_served_stale(self):
        from dataclasses import dataclass, field
        from repro.service.worker import _assembled_program
        from repro.workloads import WORKLOAD_REGISTRY
        from repro.workloads.common import Workload

        @dataclass
        class ScaledWorkload(Workload):
            scale: int = 1

            def build(self):
                from repro.isa.assembler import assemble
                return assemble(self.source % self.scale)

        name = "_worker_cache_probe_scaled"
        template = """
        _start:
            li a0, %d
            li a7, 93
            ecall
        """
        try:
            WORKLOAD_REGISTRY[name] = lambda: ScaledWorkload(
                name=name, description="", source=template, scale=1)
            first = _assembled_program(name)
            # Same name, same source template, different build parameter.
            WORKLOAD_REGISTRY[name] = lambda: ScaledWorkload(
                name=name, description="", source=template, scale=2)
            second = _assembled_program(name)
            assert second.digest != first.digest
        finally:
            WORKLOAD_REGISTRY.pop(name, None)
