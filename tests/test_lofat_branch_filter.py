"""Unit tests for the branch filter's loop detection heuristics.

The filter is exercised through the LO-FAT engine attached to small, purpose
written programs, mirroring how the hardware block sees the pipeline signals.
"""

import pytest

from repro.cpu.core import Cpu
from repro.isa.assembler import assemble
from repro.lofat.branch_filter import FilterEventKind
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine


def run_engine(source, inputs=None, config=None, record_events=True):
    program = assemble(source)
    cpu = Cpu(program, inputs=list(inputs or []))
    engine = LoFatEngine(config, record_filter_events=record_events)
    cpu.attach_monitor(engine.observe)
    result = cpu.run()
    measurement = engine.finalize()
    return program, result, engine, measurement


EXIT = "    li a7, 93\n    ecall\n"

STRAIGHT_LINE = """
_start:
    li a0, 1
    beq a0, zero, skip
    addi a0, a0, 1
skip:
""" + EXIT

SIMPLE_LOOP = """
_start:
    li t0, 4
loop:
    addi t0, t0, -1
    bnez t0, loop
""" + EXIT

LOOP_WITH_CALL = """
_start:
    li s0, 3
loop:
    call helper
    addi s0, s0, -1
    bnez s0, loop
""" + EXIT + """
helper:
    addi a0, a0, 1
    ret
"""

LOOP_WITH_BREAK = """
_start:
    li t0, 0
    li t1, 100
loop:
    addi t0, t0, 1
    li t2, 3
    beq t0, t2, escape
    blt t0, t1, loop
escape:
""" + EXIT

NESTED_LOOPS = """
_start:
    li s0, 0
outer:
    li s1, 0
inner:
    addi s1, s1, 1
    li t0, 3
    blt s1, t0, inner
    addi s0, s0, 1
    li t0, 2
    blt s0, t0, outer
""" + EXIT

LOOP_IN_FUNCTION = """
_start:
    call worker
""" + EXIT + """
worker:
    li t0, 3
wloop:
    addi t0, t0, -1
    bnez t0, wloop
    ret
"""


class TestBasicFiltering:
    def test_all_control_flow_observed(self):
        _, result, engine, _ = run_engine(STRAIGHT_LINE)
        stats = engine.branch_filter.stats
        assert stats.instructions_observed == result.instructions
        assert stats.control_flow_instructions == result.trace.control_flow_events

    def test_non_loop_branches_hashed_directly(self):
        _, result, engine, measurement = run_engine(STRAIGHT_LINE)
        stats = engine.branch_filter.stats
        assert stats.loops_discovered == 0
        assert stats.non_loop_branches == result.trace.control_flow_events
        assert measurement.stats["pairs_hashed"] == result.trace.control_flow_events

    def test_not_taken_branches_still_recorded(self):
        _, result, engine, measurement = run_engine(STRAIGHT_LINE)
        # The not-taken beq is a control-flow event and must reach the hash.
        hashed = engine.hash_engine.absorbed_pairs
        not_taken = [r for r in result.trace.control_flow_records if not r.taken]
        assert all(record.src_dest in hashed for record in not_taken)


class TestLoopDetection:
    def test_backward_conditional_discovers_loop(self):
        program, _, engine, measurement = run_engine(SIMPLE_LOOP)
        stats = engine.branch_filter.stats
        assert stats.loops_discovered == 1
        assert len(measurement.metadata) == 1
        assert measurement.metadata.loops[0].entry == program.symbol("loop")

    def test_loop_exit_node_is_block_after_back_edge(self):
        program, _, engine, measurement = run_engine(SIMPLE_LOOP)
        record = measurement.metadata.loops[0]
        # The back edge is the bnez; the exit node is the instruction after it.
        back_edge_addr = None
        for instr in program.instructions:
            if instr.is_conditional_branch and instr.imm < 0:
                back_edge_addr = instr.address
        assert record.exit_node == back_edge_addr + 4

    def test_iteration_count_matches_execution(self):
        _, _, engine, measurement = run_engine(SIMPLE_LOOP)
        record = measurement.metadata.loops[0]
        # t0 = 4: the loop body runs 4 times; the first iteration happens
        # before the loop is discovered, so 3 tracked iterations follow.
        assert record.iterations == 3

    def test_calls_are_not_loop_back_edges(self):
        _, _, engine, _ = run_engine("""
        _start:
            call helper
            call helper
        """ + EXIT + """
        helper:
            ret
        """)
        assert engine.branch_filter.stats.loops_discovered == 0

    def test_forward_jumps_are_not_back_edges(self):
        _, _, engine, _ = run_engine(STRAIGHT_LINE)
        assert engine.branch_filter.stats.loops_discovered == 0

    def test_filter_event_stream(self):
        _, _, engine, _ = run_engine(SIMPLE_LOOP)
        kinds = [event.kind for event in engine.branch_filter.events]
        assert FilterEventKind.LOOP_DISCOVERED in kinds
        assert FilterEventKind.LOOP_ITERATION in kinds
        assert FilterEventKind.LOOP_EXIT in kinds


class TestLoopExit:
    def test_loop_exits_on_fallthrough(self):
        _, _, engine, measurement = run_engine(SIMPLE_LOOP)
        assert engine.branch_filter.stats.loop_exits == 1
        assert engine.loop_monitor.depth == 0

    def test_loop_exits_on_break(self):
        program, _, engine, measurement = run_engine(LOOP_WITH_BREAK)
        assert engine.branch_filter.stats.loops_discovered == 1
        assert engine.branch_filter.stats.loop_exits == 1

    def test_call_inside_loop_does_not_exit_loop(self):
        program, _, engine, measurement = run_engine(LOOP_WITH_CALL)
        # One loop execution with 2 tracked iterations (3 total, first untracked).
        assert engine.branch_filter.stats.loops_discovered == 1
        assert len(measurement.metadata) == 1
        assert measurement.metadata.loops[0].iterations == 2

    def test_return_from_enclosing_function_exits_loop(self):
        program, _, engine, measurement = run_engine(LOOP_IN_FUNCTION)
        assert engine.branch_filter.stats.loops_discovered == 1
        assert engine.branch_filter.stats.loop_exits == 1
        assert engine.loop_monitor.depth == 0

    def test_finalize_closes_open_loops(self):
        # A loop that is still active when the program exits (exit inside it).
        source = """
        _start:
            li t0, 3
        loop:
            addi t0, t0, -1
            beqz t0, quit
            j loop
        quit:
            li a7, 93
            ecall
        """
        _, _, engine, measurement = run_engine(source)
        assert engine.loop_monitor.depth == 0
        assert len(measurement.metadata) >= 1


class TestNestedLoops:
    def test_nested_loops_tracked_at_two_levels(self):
        _, _, engine, measurement = run_engine(NESTED_LOOPS)
        depths = {record.depth for record in measurement.metadata}
        assert 1 in depths and 2 in depths

    def test_nesting_beyond_limit_is_not_tracked_separately(self):
        config = LoFatConfig(max_nested_loops=1)
        _, _, engine, measurement = run_engine(NESTED_LOOPS, config=config)
        assert engine.branch_filter.stats.loops_beyond_max_depth > 0
        assert all(record.depth == 1 for record in measurement.metadata)

    def test_zero_depth_configuration_tracks_no_loops(self):
        config = LoFatConfig(max_nested_loops=0)
        _, result, engine, measurement = run_engine(SIMPLE_LOOP, config=config)
        assert len(measurement.metadata) == 0
        # Without loop tracking every event is hashed directly.
        assert measurement.stats["pairs_hashed"] == result.trace.control_flow_events


class TestLatencyAccounting:
    def test_internal_latency_formula(self):
        config = LoFatConfig()
        _, result, engine, measurement = run_engine(SIMPLE_LOOP, config=config)
        stats = engine.branch_filter.stats
        expected = (config.branch_tracking_latency * stats.control_flow_instructions
                    + config.loop_exit_latency * stats.loop_exits)
        assert engine.branch_filter.internal_latency_cycles == expected
        assert measurement.stats["internal_latency_cycles"] == expected

    def test_processor_never_stalls(self):
        program = assemble(SIMPLE_LOOP)
        plain = Cpu(program).run()
        cpu = Cpu(program)
        engine = LoFatEngine()
        cpu.attach_monitor(engine.observe)
        monitored = cpu.run()
        assert monitored.cycles == plain.cycles
        assert engine.finalize().stats["processor_stall_cycles"] == 0
