"""Execution-engine equivalence: fast and compiled must change nothing.

The fused fetch/decode/dispatch interpreter (:meth:`repro.cpu.core.Cpu.run_fast`),
the superblock trace compiler (:meth:`repro.cpu.core.Cpu.run_compiled` over
:mod:`repro.cpu.compile` plans) and the batched observation path through the
LO-FAT engine are pure performance work.  These tests pin down, across every
attestation scheme and a spread of workloads (including the loop-heavy ones,
where the batched absorb and the range-based loop-exit check actually
diverge in code path), that both accelerated engines produce byte-identical
measurements, metadata, architectural results and verifier verdicts -- and
that ineligible programs decline cleanly to :meth:`run_fast`.
"""

import pytest

from repro.attestation import Prover, Verifier
from repro.cpu.core import Cpu, CpuConfig
from repro.schemes import get_scheme, scheme_names
from repro.workloads import get_workload

#: At least five workloads, biased toward loop-heavy/nested control flow.
WORKLOAD_NAMES = [
    "figure4_loop",   # the paper's data-dependent loop
    "syringe_pump",   # nested loops + calls (paper workload)
    "matmul",         # deep nesting
    "quicksort",      # recursion + loops
    "crc32",          # nested data-dependent loops
    "dispatcher",     # indirect control flow
    "fibonacci",      # recursion
]

SCHEMES = scheme_names()

ENGINES = ("legacy", "fast", "compiled")


def _fingerprint(scheme_name, program, inputs, engine):
    """Everything an engine is allowed to influence exactly nothing of."""
    scheme = get_scheme(scheme_name)
    config = CpuConfig(engine=engine, collect_trace=False)
    result, measured = scheme.measure_execution(
        program, list(inputs), cpu_config=config)
    return (measured.measurement, measured.metadata.to_bytes(),
            result.output, result.exit_code, result.instructions,
            result.cycles, result.registers)


def _measure(scheme_name, workload, fast, collect=False):
    scheme = get_scheme(scheme_name)
    config = CpuConfig(fast_path=fast, collect_trace=collect)
    result, measured = scheme.measure_execution(
        workload.build(), list(workload.inputs), cpu_config=config)
    return result, measured


class TestMeasurementEquivalence:
    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_batched_equals_per_pair(self, scheme_name, workload_name):
        """Fast (batched) and legacy (per-pair) measurements are identical."""
        workload = get_workload(workload_name)
        legacy_result, legacy = _measure(scheme_name, workload, fast=False)
        fast_result, fast = _measure(scheme_name, workload, fast=True)

        assert fast.measurement == legacy.measurement
        assert fast.metadata.to_bytes() == legacy.metadata.to_bytes()
        assert fast_result.output == legacy_result.output
        assert fast_result.exit_code == legacy_result.exit_code
        assert fast_result.instructions == legacy_result.instructions
        assert fast_result.cycles == legacy_result.cycles
        assert fast_result.registers == legacy_result.registers

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fast_path_with_collected_trace(self, scheme_name):
        """Trace collection does not perturb the batched measurement."""
        workload = get_workload("figure4_loop")
        _, streamed = _measure(scheme_name, workload, fast=True, collect=False)
        collected_result, collected = _measure(
            scheme_name, workload, fast=True, collect=True)
        assert collected.measurement == streamed.measurement
        assert collected.metadata.to_bytes() == streamed.metadata.to_bytes()
        # The collected trace itself matches a legacy-loop trace.
        legacy_result, _ = _measure(
            scheme_name, workload, fast=False, collect=True)
        assert len(collected_result.trace) == len(legacy_result.trace)
        for lhs, rhs in zip(collected_result.trace, legacy_result.trace):
            assert (lhs.pc, lhs.next_pc, lhs.cycle, lhs.kind, lhs.taken) == \
                   (rhs.pc, rhs.next_pc, rhs.cycle, rhs.kind, rhs.taken)

    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    def test_lofat_compression_stats_identical(self, workload_name):
        """Loop compression behaves identically under batched observation."""
        workload = get_workload(workload_name)
        _, legacy = _measure("lofat", workload, fast=False)
        _, fast = _measure("lofat", workload, fast=True)
        for key in ("pairs_hashed", "control_flow_events", "pairs_compressed",
                    "compression_ratio"):
            assert fast.stats[key] == legacy.stats[key], key
        assert fast.stats["loops"] == legacy.stats["loops"]


class TestVerifierEquivalence:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_fast_prover_accepted_by_legacy_verifier(self, scheme_name):
        """Reports measured on the fast path verify against a legacy replay
        (and vice versa): the wire format is pipeline-agnostic."""
        workload = get_workload("syringe_pump")
        program = workload.build()
        for prover_fast, verifier_fast in ((True, False), (False, True)):
            prover = Prover(
                {workload.name: program},
                cpu_config=CpuConfig(fast_path=prover_fast,
                                     collect_trace=False),
            )
            verifier = Verifier(
                cpu_config=CpuConfig(fast_path=verifier_fast,
                                     collect_trace=False),
            )
            verifier.register_program(workload.name, program)
            verifier.register_device_key(
                "prover-0", prover.keystore.export_for_verifier())
            challenge = verifier.challenge(
                workload.name, list(workload.inputs), scheme=scheme_name)
            report = prover.attest(challenge)
            verdict = verifier.verify(report)
            assert verdict.accepted, (scheme_name, prover_fast, verdict.reason)


class TestFastPathFallback:
    def test_plain_monitor_forces_legacy_loop(self):
        """A monitor without observe_batch keeps seeing every instruction."""
        workload = get_workload("figure4_loop")
        program = workload.build()
        seen = []
        cpu = Cpu(program, inputs=list(workload.inputs))
        cpu.attach_monitor(seen.append)
        result = cpu.run()
        assert len(seen) == result.instructions  # every retirement observed

    def test_fast_path_opt_out_flag(self):
        workload = get_workload("figure4_loop")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs),
                  config=CpuConfig(fast_path=False))
        legacy = cpu.run()
        fast = Cpu(program, inputs=list(workload.inputs)).run()
        assert legacy.cycles == fast.cycles
        assert legacy.output == fast.output

    def test_fast_path_enabled_by_default(self):
        assert CpuConfig().fast_path is True

    def test_raising_batch_monitor_does_not_duplicate_delivery(self):
        """If a monitor raises mid-flush, earlier monitors in the same
        flush must not receive the batch a second time from cleanup."""
        class Recorder:
            def __init__(self, explode=False):
                self.records = []
                self.explode = explode

            def observe(self, record):
                pass

            def observe_batch(self, records):
                if self.explode:
                    raise RuntimeError("monitor failure")
                self.records.extend(records)

        workload = get_workload("figure4_loop")
        good, bad = Recorder(), Recorder(explode=True)
        cpu = Cpu(workload.build(), inputs=list(workload.inputs),
                  config=CpuConfig(collect_trace=False, monitor_batch_size=4))
        cpu.attach_monitor(good.observe)
        cpu.attach_monitor(bad.observe)
        with pytest.raises(RuntimeError, match="monitor failure"):
            cpu.run()
        indices = [record.index for record in good.records]
        assert indices == sorted(set(indices))  # delivered at most once

    def test_redirecting_pre_hook_preserves_equivalence(self):
        """A hook that redirects control flow (no trace record exists for
        the transfer) must not break fast/legacy measurement identity: the
        fast path detects the redirect and finishes per record."""
        from repro.lofat.engine import LoFatEngine

        workload = get_workload("figure4_loop")
        program = workload.build()

        def make_hook():
            state = {"fired": False}

            def hook(cpu, pc, retired):
                # Skip one instruction mid-loop, once.
                if retired == 30 and not state["fired"]:
                    state["fired"] = True
                    cpu.pc = pc + 4
            return hook

        results = {}
        for fast in (False, True):
            cpu = Cpu(program, inputs=list(workload.inputs),
                      config=CpuConfig(fast_path=fast, collect_trace=False))
            engine = LoFatEngine()
            cpu.attach_monitor(engine.observe)
            cpu.add_pre_instruction_hook(make_hook())
            result = cpu.run()
            measurement = engine.finalize()
            results[fast] = (
                measurement.measurement,
                measurement.metadata.to_bytes(),
                result.instructions,
                result.cycles,
                result.output,
            )
        assert results[True] == results[False]

    def test_redirect_into_active_loop_region_preserves_equivalence(self):
        """Nastier redirect: execution falls through past a loop's exit node
        (straight-line, so the fast path has no records for it yet) and a
        hook then redirects back into the loop body.  The legacy loop exits
        the loop at the fall-through; the fast path must reconstruct that
        from the unobserved straight-line run before switching to per-record
        observation, or the loop wrongly stays active and the metadata
        diverges."""
        from repro.cpu.trace import BranchKind
        from repro.isa.assembler import assemble
        from repro.lofat.engine import LoFatEngine

        source = """
        _start:
            li t1, 2
        loop:
            addi t1, t1, -1
            bne t1, zero, loop
            addi t2, t2, 0
            addi t2, t2, 0
            addi t2, t2, 0
            li a0, 0
            li a7, 93
            ecall
        """
        program = assemble(source)
        reference = Cpu(program, config=CpuConfig(fast_path=False)).run()
        branch_pc = next(r.pc for r in reference.trace
                         if r.kind is BranchKind.CONDITIONAL)
        trigger_pc = branch_pc + 12  # third straight-line addi past the exit

        def make_hook():
            state = {"fired": False}

            def hook(cpu, pc, retired):
                if pc == trigger_pc and not state["fired"]:
                    state["fired"] = True
                    cpu.pc = branch_pc  # back into [entry, exit_node)
            return hook

        results = {}
        for fast in (False, True):
            cpu = Cpu(program, config=CpuConfig(fast_path=fast,
                                                collect_trace=False))
            engine = LoFatEngine()
            cpu.attach_monitor(engine.observe)
            cpu.add_pre_instruction_hook(make_hook())
            result = cpu.run()
            measurement = engine.finalize()
            results[fast] = (
                measurement.measurement,
                measurement.metadata.to_bytes(),
                result.instructions,
                result.cycles,
            )
        assert results[True] == results[False]

    def test_pre_hooks_run_on_fast_path(self):
        """Attack-style pre-instruction hooks fire on the fused loop too."""
        workload = get_workload("figure4_loop")
        program = workload.build()
        fired = []
        cpu = Cpu(program, inputs=list(workload.inputs),
                  config=CpuConfig(collect_trace=False))
        cpu.add_pre_instruction_hook(
            lambda c, pc, retired: fired.append((pc, retired)))
        result = cpu.run()
        assert len(fired) == result.instructions
        assert fired[0] == (program.entry, 0)


class TestCompiledEquivalence:
    """legacy == fast == compiled, byte for byte, across program sources.

    The lofat *internal* cycle-model stats (``last_absorb_cycle``) are
    compared fast-vs-compiled only: batched observation's cycle bookkeeping
    is documented to be coarser than the legacy per-pair path (see
    ``LoFatEngine.observe_batch``), and the compiled engine must match the
    fast path it is replacing, not re-litigate that known coarseness.
    """

    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_registry_three_way(self, scheme_name, workload_name):
        workload = get_workload(workload_name)
        program = workload.build()
        prints = {engine: _fingerprint(scheme_name, program,
                                       workload.inputs, engine)
                  for engine in ENGINES}
        assert prints["compiled"] == prints["fast"] == prints["legacy"]

    def test_lang_corpus_three_way(self):
        """Every golden lang-corpus program measures identically."""
        from repro.isa.assembler import assemble
        from repro.lang.corpus import build_corpus

        checked = 0
        for entry in build_corpus():
            program = assemble(entry.assembly)
            prints = {engine: _fingerprint("lofat", program,
                                           entry.inputs, engine)
                      for engine in ENGINES}
            assert (prints["compiled"] == prints["fast"]
                    == prints["legacy"]), entry.name
            checked += 1
        assert checked >= 5

    def test_family_matrix_three_way(self):
        """Every seeded compiled-family member measures identically."""
        from repro.lang.families import family_names, generate_family

        checked = 0
        for family in family_names():
            for workload in generate_family(family, seed=20260808):
                program = workload.build()
                prints = {engine: _fingerprint("lofat", program,
                                               workload.inputs, engine)
                          for engine in ENGINES}
                assert (prints["compiled"] == prints["fast"]
                        == prints["legacy"]), workload.name
                checked += 1
        assert checked >= 20

    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    def test_lofat_stats_identical_fast_vs_compiled(self, workload_name):
        """The compiled engine matches run_fast on *every* stat, including
        the cycle-model bookkeeping excluded from the legacy comparison."""
        workload = get_workload(workload_name)
        program = workload.build()
        scheme = get_scheme("lofat")
        stats = {}
        for engine in ("fast", "compiled"):
            _, measured = scheme.measure_execution(
                program, list(workload.inputs),
                cpu_config=CpuConfig(engine=engine, collect_trace=False))
            stats[engine] = measured.stats
        assert stats["compiled"] == stats["fast"]

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_compiled_prover_accepted_by_legacy_verifier(self, scheme_name):
        """Reports measured on the compiled engine verify against a legacy
        replay and vice versa: the wire format is engine-agnostic."""
        workload = get_workload("syringe_pump")
        program = workload.build()
        for prover_engine, verifier_engine in (("compiled", "legacy"),
                                               ("legacy", "compiled")):
            prover = Prover(
                {workload.name: program},
                cpu_config=CpuConfig(engine=prover_engine,
                                     collect_trace=False),
            )
            verifier = Verifier(
                cpu_config=CpuConfig(engine=verifier_engine,
                                     collect_trace=False),
            )
            verifier.register_program(workload.name, program)
            verifier.register_device_key(
                "prover-0", prover.keystore.export_for_verifier())
            challenge = verifier.challenge(
                workload.name, list(workload.inputs), scheme=scheme_name)
            report = prover.attest(challenge)
            verdict = verifier.verify(report)
            assert verdict.accepted, (
                scheme_name, prover_engine, verdict.reason)


class TestCompiledFallback:
    """Ineligible programs and configurations decline to run_fast."""

    def test_eligible_workload_actually_compiles(self):
        workload = get_workload("figure4_loop")
        cpu = Cpu(workload.build(), inputs=list(workload.inputs),
                  config=CpuConfig(engine="compiled", collect_trace=False))
        cpu.run()
        assert cpu.engine_used == "compiled"

    def test_unresolved_indirect_declines_to_fast(self):
        """dispatcher's input-dependent jalr has no statically resolved
        target, so the compiler declines the whole program and run()
        records the fast path -- while staying architecturally identical."""
        workload = get_workload("dispatcher")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs),
                  config=CpuConfig(engine="compiled", collect_trace=False))
        result = cpu.run()
        assert cpu.engine_used == "fast"
        reference = Cpu(program, inputs=list(workload.inputs),
                        config=CpuConfig(engine="legacy")).run()
        assert result.output == reference.output
        assert result.cycles == reference.cycles
        assert result.registers == reference.registers

    def test_pre_hook_forces_per_record_engine(self):
        """Attack-style hooks must observe every instruction: a pre-hook
        keeps the compiled engine off even when explicitly requested."""
        workload = get_workload("figure4_loop")
        cpu = Cpu(workload.build(), inputs=list(workload.inputs),
                  config=CpuConfig(engine="compiled", collect_trace=False))
        cpu.add_pre_instruction_hook(lambda c, pc, retired: None)
        cpu.run()
        assert cpu.engine_used == "fast"

    def test_collect_trace_forces_per_record_engine(self):
        """Trace collection needs per-record delivery, so the compiled
        engine declines and the collected trace stays legacy-identical."""
        workload = get_workload("figure4_loop")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs),
                  config=CpuConfig(engine="compiled", collect_trace=True))
        result = cpu.run()
        assert cpu.engine_used == "fast"
        legacy = Cpu(program, inputs=list(workload.inputs),
                     config=CpuConfig(engine="legacy",
                                      collect_trace=True)).run()
        assert len(result.trace) == len(legacy.trace)
        for lhs, rhs in zip(result.trace, legacy.trace):
            assert (lhs.pc, lhs.next_pc, lhs.cycle, lhs.kind, lhs.taken) == \
                   (rhs.pc, rhs.next_pc, rhs.cycle, rhs.kind, rhs.taken)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(engine="turbo").resolved_engine()

    def test_engine_default_resolution(self):
        assert CpuConfig().resolved_engine() == "fast"
        assert CpuConfig(fast_path=False).resolved_engine() == "legacy"
        assert CpuConfig(engine="compiled").resolved_engine() == "compiled"
