"""The adversarial oracle harness: generated scenarios vs. the detection matrix.

This is experiment E5 at generator scale: instead of the ~5 hand-written
attacks, the CFG-derived generator synthesizes benign variants and attacks
by class, and every generated scenario is driven through the *full* signed
attestation protocol under every scheme.  The matrix the paper claims:

* every benign variant verifies under every scheme;
* every control-flow-visible attack (edge bends, skipped nodes, loop
  over/under-counts) is rejected by lofat and cflat;
* static attestation accepts every runtime attack (expected miss, asserted);
* data-only corruption is accepted by *all* schemes (the C-FLAT lineage's
  documented blind spot -- expected miss, asserted).
"""

import os

import pytest

from repro.adversary import GeneratorLimits, derive_rng, generate_suite, resolve_seed
from repro.adversary.generator import DEFAULT_WORKLOADS
from repro.adversary.oracle import expected_accept, run_oracle
from repro.adversary.seeds import DEFAULT_SEED, ENV_SEED
from repro.attacks import (
    ATTACK_REGISTRY,
    get_attack,
    register_scenario,
    unregister_attack,
)
from repro.attestation import Prover, Verifier
from repro.cli import main as cli_main
from repro.analysis.campaign_report import (
    format_campaign_failures,
    format_campaign_summary,
    format_campaign_table,
)
from repro.service.campaign import CampaignSpec, WorkloadSelection
from repro.service.presets import adversary_campaign
from repro.service.runner import CampaignRunner
from repro.workloads import get_workload

#: One fixed seed for the whole module so the expensive artefacts (suites,
#: oracle run) are generated once and shared.
SEED = 20170618


@pytest.fixture(scope="module")
def suites():
    return {
        name: generate_suite(name, seed=SEED) for name in DEFAULT_WORKLOADS
    }


@pytest.fixture(scope="module")
def oracle_report(suites):
    return run_oracle(DEFAULT_WORKLOADS, seed=SEED, suites=suites)


@pytest.fixture
def clean_registry():
    """Roll back any attack registrations a test performs."""
    before = set(ATTACK_REGISTRY)
    yield
    for name in set(ATTACK_REGISTRY) - before:
        unregister_attack(name)


class TestSeedPlumbing:
    def test_explicit_seed_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "123")
        assert resolve_seed(7) == 7

    def test_env_seed_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "123")
        assert resolve_seed() == 123

    def test_env_seed_accepts_hex(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "0x10")
        assert resolve_seed() == 16

    def test_default_seed(self, monkeypatch):
        monkeypatch.delenv(ENV_SEED, raising=False)
        assert resolve_seed() == DEFAULT_SEED

    def test_invalid_env_seed_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "not-a-number")
        with pytest.raises(ValueError):
            resolve_seed()

    def test_derived_streams_are_deterministic_and_independent(self):
        a1 = derive_rng(1, "generator", "x").random()
        a2 = derive_rng(1, "generator", "x").random()
        b = derive_rng(1, "generator", "y").random()
        c = derive_rng(2, "generator", "x").random()
        assert a1 == a2
        assert a1 != b
        assert a1 != c


def _suite_fingerprint(suite):
    rows = [(v.name, v.kind, v.inputs) for v in suite.benign]
    for scenario in suite.attacks:
        corruptions = scenario.build_corruptions(
            get_workload(scenario.workload_name).build()
        )
        params = tuple(
            (type(c).__name__, c.trigger_pc, getattr(c, "target", None),
             getattr(c, "address", None), getattr(c, "value", None),
             c.occurrence)
            for c in corruptions
        )
        rows.append((scenario.name, scenario.category, params))
    return rows


class TestGenerator:
    def test_deterministic_in_seed(self):
        first = generate_suite("auth_check", seed=77)
        second = generate_suite("auth_check", seed=77)
        assert _suite_fingerprint(first) == _suite_fingerprint(second)

    def test_different_seeds_differ(self):
        first = generate_suite("auth_check", seed=77)
        second = generate_suite("auth_check", seed=78)
        assert _suite_fingerprint(first) != _suite_fingerprint(second)

    def test_scenario_floor_per_workload(self, suites):
        for name, suite in suites.items():
            assert suite.scenario_count >= 25, (
                "%s generated only %d scenarios" % (name, suite.scenario_count)
            )

    def test_all_attack_classes_covered(self, suites):
        classes = {
            scenario.attack_class
            for suite in suites.values()
            for scenario in suite.attacks
        }
        assert classes == {1, 2, 3}

    def test_loop_rich_workload_gets_loop_tampering(self, suites):
        counts = suites["syringe_pump"].counts()
        assert counts.get("loop_overcount", 0) >= 1
        assert counts.get("loop_undercount", 0) >= 1

    def test_benign_variants_include_default_inputs(self, suites):
        for name, suite in suites.items():
            default = suite.benign[0]
            assert default.kind == "default"
            assert list(default.inputs) == get_workload(name).inputs

    def test_data_only_scenarios_are_invisible_class_one(self, suites):
        for suite in suites.values():
            data_only = [s for s in suite.attacks if s.category == "data_only"]
            assert data_only, "no data-only scenarios for %s" % suite.workload_name
            for scenario in data_only:
                assert scenario.attack_class == 1
                assert not scenario.control_flow_visible

    def test_control_flow_families_are_visible(self, suites):
        for suite in suites.values():
            for scenario in suite.attacks:
                if scenario.category != "data_only":
                    assert scenario.control_flow_visible

    def test_generated_scenarios_register_and_resolve(self, suites, clean_registry):
        scenario = suites["auth_check"].attacks[0]
        name = register_scenario(scenario)
        assert get_attack(name) is scenario
        with pytest.raises(ValueError):
            register_scenario(scenario)
        unregister_attack(name)
        assert name not in ATTACK_REGISTRY

    def test_limits_scale_down(self):
        limits = GeneratorLimits().scaled(0.25)
        suite = generate_suite("vulnerable_process", seed=5, limits=limits)
        assert suite.scenario_count < 25  # genuinely smaller quotas
        assert suite.attacks


class TestGetAttackErrors:
    def test_unknown_attack_lists_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_attack("definitely_not_registered")
        message = str(excinfo.value)
        assert "definitely_not_registered" in message
        for name in sorted(ATTACK_REGISTRY):
            assert name in message


class TestOracleMatrix:
    def test_full_matrix_holds(self, oracle_report):
        assert oracle_report.ok, "\n".join(
            "%s/%s %s: expected %s, got %s (%s)"
            % (e.workload, e.scheme, e.scenario, e.expected, e.actual, e.reason)
            for e in oracle_report.failures
        )

    def test_every_scheme_saw_every_scenario(self, oracle_report, suites):
        per_scheme = {
            scheme: sum(
                1 for e in oracle_report.entries if e.scheme == scheme
            )
            for scheme in oracle_report.schemes
        }
        total = sum(suite.scenario_count for suite in suites.values())
        assert set(oracle_report.schemes) == {"lofat", "cflat", "static"}
        for scheme, count in per_scheme.items():
            assert count == total

    def test_benign_variants_all_verify(self, oracle_report):
        benign = [
            e for e in oracle_report.entries if e.family.startswith("benign:")
        ]
        assert benign
        assert all(e.actual == "accept" for e in benign)

    def test_claimed_catch_attacks_all_rejected(self, oracle_report):
        claimed = [
            e for e in oracle_report.entries
            if e.attack_class is not None and e.expected == "reject"
        ]
        assert claimed
        assert all(e.actual == "reject" for e in claimed)
        assert {e.scheme for e in claimed} == {"lofat", "cflat"}

    def test_expected_misses_are_asserted_as_misses(self, oracle_report):
        misses = oracle_report.expected_misses
        assert misses
        # Static accepts every attack; lofat/cflat accept only data-only.
        for entry in misses:
            assert entry.actual == "accept"
            if entry.scheme in ("lofat", "cflat"):
                assert entry.family == "data_only"
        static_families = {
            e.family for e in misses if e.scheme == "static"
        }
        assert "edge_bend" in static_families

    def test_expected_accept_derivation(self, suites):
        edge_bend = next(
            s for s in suites["auth_check"].attacks if s.category == "edge_bend"
        )
        data_only = next(
            s for s in suites["auth_check"].attacks if s.category == "data_only"
        )
        assert not expected_accept("lofat", edge_bend)
        assert not expected_accept("cflat", edge_bend)
        assert expected_accept("static", edge_bend)
        assert expected_accept("lofat", data_only)
        assert expected_accept("cflat", data_only)
        assert expected_accept("static", data_only)

    def test_matrix_formatting_mentions_all_families(self, oracle_report):
        table = oracle_report.format_matrix()
        for family in ("edge_bend", "data_only", "benign:default"):
            assert family in table


class TestExpectedMissSemantics:
    """Satellite: data-only attacks verify as benign and are labelled so."""

    def test_data_only_attack_verifies_under_runtime_schemes(self, suites):
        scenario = next(
            s for s in suites["syringe_pump"].attacks
            if s.category == "data_only"
        )
        workload = get_workload(scenario.workload_name)
        program = workload.build()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key(
            "prover-0", prover.keystore.export_for_verifier()
        )
        prover.install_attack(scenario.prover_hook(program))
        try:
            for scheme in ("lofat", "cflat"):
                challenge = verifier.challenge(
                    workload.name, scenario.challenge_inputs, scheme=scheme
                )
                verdict = verifier.verify(prover.attest(challenge))
                assert verdict.accepted, (
                    "data-only attack rejected under %s: %s"
                    % (scheme, verdict.reason)
                )
        finally:
            prover.clear_attacks()

    def test_campaign_labels_expected_miss_not_detected(
        self, suites, clean_registry
    ):
        data_only = next(
            s for s in suites["auth_check"].attacks if s.category == "data_only"
        )
        edge_bend = next(
            s for s in suites["auth_check"].attacks if s.category == "edge_bend"
        )
        register_scenario(data_only)
        register_scenario(edge_bend)
        spec = CampaignSpec(
            name="expected_miss_check",
            workloads=[WorkloadSelection(name="auth_check")],
            schemes=["lofat", "static"],
            attacks=[data_only.name, edge_bend.name],
        )
        result = CampaignRunner().run(spec)
        assert result.ok
        outcomes = {
            (r.job.scheme, r.job.attack): r.outcome for r in result.results
        }
        assert outcomes[("lofat", data_only.name)] == "expected_miss"
        assert outcomes[("static", data_only.name)] == "expected_miss"
        assert outcomes[("lofat", edge_bend.name)] == "detected"
        assert outcomes[("static", edge_bend.name)] == "expected_miss"
        assert outcomes[("lofat", None)] == "benign_pass"

        summary = result.summary()
        assert summary["expected_misses"] == 3
        assert "expected misses" in format_campaign_summary(result)
        table = format_campaign_table(result)
        assert "outcome" in table
        assert "expected_miss" in table
        assert format_campaign_failures(result) == "no unexpected job outcomes"

    def test_handwritten_noncontrol_data_attack_still_detected(self):
        # The paper's point (and E5's): the *path-steering* class-1 attack is
        # exactly what control-flow attestation catches -- only corruption
        # that never perturbs the measured stream is the documented miss.
        scenario = get_attack("auth_flag_flip")
        assert scenario.attack_class == 1
        assert scenario.control_flow_visible


class TestAdversaryCampaignPreset:
    def test_preset_registers_and_expands(self, clean_registry):
        limits = GeneratorLimits().scaled(0.2)
        spec = adversary_campaign(
            seed=3, workloads=["auth_check"], limits=limits
        )
        assert spec.name == "adversary_s3"
        assert spec.schemes == ["lofat", "cflat", "static"]
        assert spec.attacks
        for name in spec.attacks:
            assert name in ATTACK_REGISTRY
            assert name.startswith("adv_auth_check_")
        jobs = spec.expand()
        data_only_jobs = [
            job for job in jobs
            if job.attack and "data_only" in job.attack
        ]
        assert data_only_jobs
        assert not any(job.expects_detection for job in data_only_jobs)
        static_jobs = [
            job for job in jobs if job.attack and job.scheme == "static"
        ]
        assert static_jobs
        assert not any(job.expects_detection for job in static_jobs)

    def test_preset_campaign_runs_clean(self, clean_registry):
        limits = GeneratorLimits().scaled(0.2)
        spec = adversary_campaign(
            seed=3, workloads=["vulnerable_process"], limits=limits
        )
        result = CampaignRunner().run(spec)
        assert result.ok
        outcomes = {r.outcome for r in result.results}
        assert "detected" in outcomes
        assert "expected_miss" in outcomes
        assert "missed" not in outcomes
        assert "unexpected_reject" not in outcomes


class TestAdversaryCli:
    def test_list_mode(self, capsys):
        assert cli_main(
            ["adversary", "--seed", "5", "--workloads", "vulnerable_process",
             "--list"]
        ) == 0
        out = capsys.readouterr().out
        assert "adversary seed: 5" in out
        assert "adv_vulnerable_process_" in out

    def test_oracle_and_fuzz_smoke(self, capsys, tmp_path):
        failures_file = tmp_path / "failures.json"
        code = cli_main(
            ["adversary", "--seed", "5", "--workloads", "vulnerable_process",
             "--fuzz-examples", "100", "--failures-file", str(failures_file)]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 failures" in out
        assert failures_file.exists()

    def test_attack_list_flag(self, capsys):
        assert cli_main(["attack", "--list"]) == 0
        out = capsys.readouterr().out
        assert "auth_flag_flip" in out
        assert "return_address_overwrite" in out

    def test_campaign_seed_flag_parses(self, clean_registry, capsys):
        code = cli_main(
            ["campaign", "--experiment", "adversary", "--seed", "11"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "adversary_s11" in out
        assert "expected misses" in out

    def test_seed_env_reaches_campaign(self, clean_registry, monkeypatch,
                                       capsys):
        monkeypatch.setenv(ENV_SEED, "12")
        code = cli_main(["campaign", "--experiment", "adversary"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "adversary_s12" in out
