"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import decode


def _mnemonics(program):
    return [instr.mnemonic for instr in program.instructions]


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("add a0, a1, a2")
        assert len(program.code) == 4
        assert _mnemonics(program) == ["add"]

    def test_code_is_little_endian_words(self):
        program = assemble("addi a0, zero, 1")
        word = int.from_bytes(program.code[:4], "little")
        assert decode(word).mnemonic == "addi"

    def test_labels_and_branches(self):
        program = assemble("""
        _start:
            beq a0, a1, target
            addi a0, a0, 1
        target:
            addi a1, a1, 1
        """)
        branch = program.instructions[0]
        assert branch.mnemonic == "beq"
        assert branch.imm == 8  # two instructions ahead

    def test_backward_branch_negative_offset(self):
        program = assemble("""
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
        """)
        branch = program.instructions[1]
        assert branch.imm == -4

    def test_comments_are_ignored(self):
        program = assemble("""
            addi a0, zero, 1   # a comment
            // another comment
            addi a1, zero, 2   ; third style
        """)
        assert _mnemonics(program) == ["addi", "addi"]

    def test_multiple_labels_same_address(self):
        program = assemble("""
        first:
        second:
            nop
        """)
        assert program.symbols["first"] == program.symbols["second"]

    def test_entry_point_prefers_start_symbol(self):
        program = assemble("""
            nop
        _start:
            nop
        """)
        assert program.entry == program.symbols["_start"]

    def test_entry_point_falls_back_to_main(self):
        program = assemble("""
            nop
        main:
            nop
        """)
        assert program.entry == program.symbols["main"]

    def test_instruction_addresses_are_sequential(self):
        program = assemble("nop\nnop\nnop")
        addresses = [instr.address for instr in program.instructions]
        assert addresses == [0, 4, 8]

    def test_instruction_at_and_word_at(self):
        program = assemble("addi a0, zero, 7\nnop")
        assert program.instruction_at(0).imm == 7
        assert decode(program.word_at(4)).mnemonic == "addi"
        with pytest.raises(ValueError):
            program.instruction_at(2)


class TestPseudoInstructions:
    def test_nop(self):
        program = assemble("nop")
        instr = program.instructions[0]
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == ("addi", 0, 0, 0)

    def test_li_small(self):
        program = assemble("li a0, 42")
        assert _mnemonics(program) == ["addi"]
        assert program.instructions[0].imm == 42

    def test_li_large_expands_to_lui_addi(self):
        program = assemble("li a0, 0x12345678")
        assert _mnemonics(program) == ["lui", "addi"]

    def test_li_negative_large(self):
        program = assemble("li a0, -100000")
        assert _mnemonics(program) == ["lui", "addi"]

    def test_la_uses_data_symbol(self):
        program = assemble("""
            .data
        value:
            .word 99
            .text
        _start:
            la t0, value
        """)
        assert _mnemonics(program) == ["lui", "addi"]

    def test_mv_not_neg(self):
        program = assemble("mv a0, a1\nnot a2, a3\nneg a4, a5")
        assert _mnemonics(program) == ["addi", "xori", "sub"]

    def test_set_pseudo_ops(self):
        program = assemble("seqz a0, a1\nsnez a2, a3\nsltz a4, a5\nsgtz a6, a7")
        assert _mnemonics(program) == ["sltiu", "sltu", "slt", "slt"]

    def test_branch_zero_aliases(self):
        program = assemble("""
        target:
            beqz a0, target
            bnez a0, target
            blez a0, target
            bgez a0, target
            bltz a0, target
            bgtz a0, target
        """)
        assert _mnemonics(program) == ["beq", "bne", "bge", "bge", "blt", "blt"]

    def test_swapped_comparison_aliases(self):
        program = assemble("""
        target:
            bgt a0, a1, target
            ble a0, a1, target
            bgtu a0, a1, target
            bleu a0, a1, target
        """)
        mnems = _mnemonics(program)
        assert mnems == ["blt", "bge", "bltu", "bgeu"]
        # Operands must be swapped.
        assert program.instructions[0].rs1 == 11 and program.instructions[0].rs2 == 10

    def test_jump_and_call_aliases(self):
        program = assemble("""
        _start:
            j _start
            jr a0
            ret
            call _start
            tail _start
        """)
        assert _mnemonics(program) == ["jal", "jalr", "jalr", "jal", "jal"]
        assert program.instructions[0].rd == 0       # j does not link
        assert program.instructions[3].rd == 1       # call links
        assert program.instructions[4].rd == 0       # tail does not link

    def test_jal_single_operand_links(self):
        program = assemble("""
        _start:
            jal _start
        """)
        assert program.instructions[0].rd == 1


class TestDataDirectives:
    def test_word_and_byte(self):
        program = assemble("""
            .data
        values:
            .word 1, 2, 3
            .byte 0xAA, 0xBB
        """)
        assert len(program.data) == 14
        assert program.data[0:4] == (1).to_bytes(4, "little")
        assert program.data[12] == 0xAA

    def test_word_with_symbol_reference(self):
        program = assemble("""
            .text
        handler:
            ret
            .data
        table:
            .word handler
        """)
        stored = int.from_bytes(program.data[0:4], "little")
        assert stored == program.symbols["handler"]

    def test_asciiz_and_space(self):
        program = assemble("""
            .data
        msg:
            .asciiz "hi"
        buffer:
            .space 8
        """)
        assert program.data[:3] == b"hi\x00"
        assert len(program.data) == 3 + 8
        assert program.symbols["buffer"] == program.data_base + 3

    def test_align_directive(self):
        program = assemble("""
            .data
            .byte 1
            .align 2
        aligned:
            .word 5
        """)
        assert program.symbols["aligned"] % 4 == 0

    def test_half_directive(self):
        program = assemble("""
            .data
            .half 0x1234, 0x5678
        """)
        assert program.data == bytes([0x34, 0x12, 0x78, 0x56])

    def test_equ_constant(self):
        program = assemble("""
            .equ LIMIT, 7
            addi a0, zero, LIMIT
        """)
        assert program.symbols["LIMIT"] == 7
        assert program.instructions[0].imm == 7

    def test_data_and_text_interleaving(self):
        program = assemble("""
            .data
        a:  .word 1
            .text
        _start:
            nop
            .data
        b:  .word 2
        """)
        assert program.symbols["b"] == program.symbols["a"] + 4

    def test_char_literal(self):
        program = assemble("li a0, 'A'")
        assert program.instructions[0].imm == ord("A")


class TestMemoryOperands:
    def test_load_store_offsets(self):
        program = assemble("""
            lw a0, 8(sp)
            sw a0, -4(s0)
            lb t0, 0(a1)
        """)
        assert program.instructions[0].imm == 8
        assert program.instructions[1].imm == -4
        assert program.instructions[2].imm == 0

    def test_hi_lo_relocations(self):
        program = assemble("""
            .data
        var: .word 0
            .text
        _start:
            lui t0, %hi(var)
            addi t0, t0, %lo(var)
        """)
        hi = program.instructions[0].imm
        lo = program.instructions[1].imm
        assert ((hi << 12) + lo) & 0xFFFFFFFF == program.symbols["var"]

    def test_jalr_memory_form(self):
        program = assemble("jalr ra, 4(t0)")
        instr = program.instructions[0]
        assert instr.mnemonic == "jalr" and instr.imm == 4 and instr.rs1 == 5


class TestAssemblerErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd a0, a1, a2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("""
            here:
                nop
            here:
                nop
            """)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nbadop x1")
        assert "line 2" in str(excinfo.value)

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1, b2")

    def test_bad_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 3")


class TestLayout:
    def test_custom_bases(self):
        program = assemble("nop", code_base=0x1000, data_base=0x8000)
        assert program.code_base == 0x1000
        assert program.instructions[0].address == 0x1000
        assert program.data_base == 0x8000

    def test_code_end_and_data_end(self):
        program = assemble("""
            nop
            nop
            .data
            .word 1
        """)
        assert program.code_end == program.code_base + 8
        assert program.data_end == program.data_base + 4

    def test_symbol_lookup_error(self):
        program = assemble("nop")
        with pytest.raises(KeyError):
            program.symbol("missing")
