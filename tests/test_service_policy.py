"""StaticPolicy wiring through the measurement database and the server."""

import asyncio
import json

from repro.dataflow import analyze_program
from repro.schemes import get_scheme
from repro.service.client import AttestationClient, SimulatedProver
from repro.service.database import MeasurementDatabase
from repro.service.server import AttestationServer
from repro.workloads import get_workload

WORKLOAD = "figure4_loop"


def serve(coro_factory, **server_kwargs):
    async def go():
        server = AttestationServer(**server_kwargs)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()
    return asyncio.run(go())


async def connected_client(server, device_id="prover-0"):
    client = AttestationClient(
        "127.0.0.1", server.port, device_id,
        SimulatedProver(device_id=device_id))
    await client.connect()
    return client


def _tightened_policy(program):
    """A well-formed policy that rejects the benign run's loop records."""
    workload = get_workload(WORKLOAD)
    _, measurement = get_scheme("lofat").measure_execution(
        program, list(workload.inputs))
    target = next(r for r in measurement.metadata.loops if r.iterations > 0)
    policy = analyze_program(program).policy
    return policy.with_bound(target.entry, 0, target.iterations - 1)


class TestDatabasePolicyKeyspace:
    def test_store_lookup_and_stats(self):
        program = get_workload(WORKLOAD).build()
        policy = analyze_program(program).policy
        database = MeasurementDatabase()
        assert database.lookup_policy(program.digest) is None
        database.store_policy(policy)
        assert database.lookup_policy(program.digest) == policy
        assert database.stats()["policy_entries"] == 1

    def test_json_roundtrip_preserves_policies(self):
        program = get_workload(WORKLOAD).build()
        policy = analyze_program(program).policy
        database = MeasurementDatabase()
        database.store_policy(policy)
        restored = MeasurementDatabase.from_json(database.to_json())
        clone = restored.lookup_policy(program.digest)
        assert clone == policy
        assert clone.policy_digest() == policy.policy_digest()

    def test_empty_database_emits_no_policy_block(self):
        document = json.loads(MeasurementDatabase().to_json())
        assert "policy_entries" not in document


class TestServerPolicyEnforcement:
    def test_first_use_derives_and_persists_policy(self):
        database = MeasurementDatabase()

        async def scenario(server):
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict

        verdict = serve(scenario, database=database)
        assert verdict.accepted
        program = get_workload(WORKLOAD).build()
        persisted = database.lookup_policy(program.digest)
        assert persisted is not None
        assert persisted == analyze_program(program).policy

    def test_database_policy_wins_and_rejects(self):
        """A policy persisted in the shared database overrides derivation."""
        program = get_workload(WORKLOAD).build()
        database = MeasurementDatabase()
        database.store_policy(_tightened_policy(program))

        async def scenario(server):
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict

        verdict = serve(scenario, database=database)
        assert not verdict.accepted
        assert verdict.reason == "policy_violation"

    def test_enforcement_can_be_disabled(self):
        program = get_workload(WORKLOAD).build()
        database = MeasurementDatabase()
        database.store_policy(_tightened_policy(program))

        async def scenario(server):
            client = await connected_client(server)
            _, verdict = await client.attest_round(WORKLOAD)
            await client.close()
            return verdict, server.verifier.installed_policy(WORKLOAD)

        verdict, installed = serve(
            scenario, database=database, enforce_policies=False)
        assert verdict.accepted
        assert installed is None
