"""Unit tests for dominator analysis."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.dominators import (
    compute_dominators,
    dominates,
    dominator_tree,
    immediate_dominators,
)
from repro.isa.assembler import assemble

DIAMOND = """
_start:
    beq a0, a1, right
left:
    addi a0, a0, 1
    j join
right:
    addi a0, a0, 2
join:
    nop
    li a7, 93
    ecall
"""


class TestDominators:
    def test_entry_dominates_everything(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        dominators = compute_dominators(cfg)
        entry = cfg.entry_block.start
        for node, dom_set in dominators.items():
            assert entry in dom_set

    def test_every_node_dominates_itself(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        for node, dom_set in compute_dominators(cfg).items():
            assert node in dom_set

    def test_diamond_join_not_dominated_by_branches(self):
        program = assemble(DIAMOND)
        cfg = build_cfg(program)
        dominators = compute_dominators(cfg)
        left = cfg.block_containing(program.symbols["left"]).start
        right = cfg.block_containing(program.symbols["right"]).start
        join = cfg.block_containing(program.symbols["join"]).start
        assert not dominates(dominators, left, join)
        assert not dominates(dominators, right, join)
        assert dominates(dominators, cfg.entry_block.start, join)

    def test_immediate_dominators_diamond(self):
        program = assemble(DIAMOND)
        cfg = build_cfg(program)
        idoms = immediate_dominators(cfg)
        entry = cfg.entry_block.start
        join = cfg.block_containing(program.symbols["join"]).start
        assert idoms[entry] is None
        assert idoms[join] == entry

    def test_dominator_tree_structure(self):
        program = assemble(DIAMOND)
        cfg = build_cfg(program)
        tree = dominator_tree(cfg)
        entry = cfg.entry_block.start
        # The entry's children include both branch arms and the join block.
        assert len(tree[entry]) >= 3

    def test_loop_header_dominates_body(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        dominators = compute_dominators(cfg)
        header = cfg.block_containing(simple_loop_program.symbols["loop"]).start
        # The block containing the backward jump is dominated by the header.
        back_block = None
        for block in cfg.blocks:
            terminator = block.terminator
            if terminator.is_direct_jump and terminator.address + terminator.imm == header:
                back_block = block.start
        assert back_block is not None
        assert dominates(dominators, header, back_block)

    def test_unreachable_blocks_excluded(self):
        program = assemble("""
        _start:
            j end
        orphan:
            addi a0, a0, 1
        end:
            nop
        """)
        cfg = build_cfg(program)
        dominators = compute_dominators(cfg)
        orphan = cfg.block_containing(program.symbols["orphan"]).start
        # "orphan" is only reachable as a fall-through target of nothing: the
        # jump skips it and nothing branches to it, so it must not appear.
        assert orphan not in dominators
