"""Compiled-program cache lifecycle: bounds, single-flight, declines.

The equivalence of the compiled engine itself is pinned in
``test_fastpath_equivalence.py``; this module covers the cache that makes
it cheap: plans are built once per (digest, cost key), concurrent builders
are single-flighted, declined programs are remembered as None, and the
store stays bounded under the same clear-on-full discipline as the decode
cache.
"""

import threading

import pytest

from repro.cpu import compile as compile_mod
from repro.cpu.compile import COMPILE_CACHE, CompiledProgramCache
from repro.cpu.core import Cpu, CpuConfig
from repro.workloads import get_workload


def _config(**overrides):
    return CpuConfig(collect_trace=False, **overrides)


@pytest.fixture
def cache():
    return CompiledProgramCache(max_programs=4)


class TestPlanReuse:
    def test_same_key_compiles_once(self, cache):
        program = get_workload("figure4_loop").build()
        first = cache.plan_for(program, _config())
        second = cache.plan_for(program, _config())
        assert first is not None
        assert second is first
        assert cache.compiles == 1

    def test_cost_key_separates_plans(self, cache):
        """Cycle costs are baked into the generated code as constants, so
        differing cost models must never share a plan."""
        program = get_workload("figure4_loop").build()
        base = cache.plan_for(program, _config())
        slow = cache.plan_for(program, _config(taken_branch_penalty=7))
        assert slow is not base
        assert cache.compiles == 2
        assert cache.cached_programs == 2

    def test_declined_program_cached_as_none(self, cache):
        """dispatcher's unresolved indirect declines compilation; the
        decline is cached so the interval analysis runs once, not per run."""
        program = get_workload("dispatcher").build()
        assert cache.plan_for(program, _config()) is None
        assert cache.compiles == 1
        assert cache.plan_for(program, _config()) is None
        assert cache.compiles == 1  # served from the cache, not re-analyzed

    def test_distinct_digests_get_distinct_plans(self, cache):
        loop = get_workload("figure4_loop").build()
        pump = get_workload("syringe_pump").build()
        assert cache.plan_for(loop, _config()) is not cache.plan_for(
            pump, _config())
        assert cache.cached_programs == 2


class TestCacheBound:
    def test_clear_on_full_keeps_store_bounded(self, cache):
        program = get_workload("figure4_loop").build()
        for penalty in range(cache.max_programs):
            cache.plan_for(program, _config(taken_branch_penalty=penalty))
        assert cache.cached_programs == cache.max_programs
        cache.plan_for(program, _config(taken_branch_penalty=99))
        # The insert that would overflow clears the store first.
        assert cache.cached_programs == 1
        assert cache.compiles == cache.max_programs + 1

    def test_clear_resets_plans_but_not_counter(self, cache):
        program = get_workload("figure4_loop").build()
        cache.plan_for(program, _config())
        cache.clear()
        assert cache.cached_programs == 0
        cache.plan_for(program, _config())
        assert cache.compiles == 2


class TestSingleFlight:
    def test_concurrent_requests_compile_once(self, cache, monkeypatch):
        """N threads racing on one digest produce one build: the first
        becomes the builder, the rest wait on its event and read the
        shared plan."""
        program = get_workload("syringe_pump").build()
        real_build = compile_mod._build_plan
        entered = threading.Event()
        release = threading.Event()
        builds = []

        def slow_build(prog, costs):
            builds.append(threading.get_ident())
            entered.set()
            release.wait(timeout=10)
            return real_build(prog, costs)

        monkeypatch.setattr(compile_mod, "_build_plan", slow_build)

        plans = [None] * 6
        def worker(slot):
            plans[slot] = cache.plan_for(program, _config())

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(plans))]
        for thread in threads:
            thread.start()
        assert entered.wait(timeout=10)  # one builder is inside _build_plan
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads)

        assert len(builds) == 1
        assert cache.compiles == 1
        assert all(plan is plans[0] and plan is not None for plan in plans)

    def test_failed_build_releases_waiters(self, cache, monkeypatch):
        """A builder that raises must wake waiters and leave no stale
        in-flight entry, so the next request retries the build."""
        program = get_workload("figure4_loop").build()

        calls = []

        def exploding_build(prog, costs):
            calls.append(1)
            raise RuntimeError("synthetic compile failure")

        monkeypatch.setattr(compile_mod, "_build_plan", exploding_build)
        with pytest.raises(RuntimeError, match="synthetic compile failure"):
            cache.plan_for(program, _config())
        assert not cache._inflight  # no stale event left behind

        monkeypatch.undo()
        plan = cache.plan_for(program, _config())
        assert plan is not None
        assert len(calls) == 1


class TestProcessWideCache:
    def test_run_populates_shared_cache(self):
        workload = get_workload("figure4_loop")
        program = workload.build()
        config = CpuConfig(engine="compiled", collect_trace=False)
        key = (program.digest, CompiledProgramCache.cost_key(config))
        COMPILE_CACHE._plans.pop(key, None)
        before = COMPILE_CACHE.compiles
        cpu = Cpu(program, inputs=list(workload.inputs), config=config)
        cpu.run()
        assert cpu.engine_used == "compiled"
        assert key in COMPILE_CACHE._plans
        assert COMPILE_CACHE.compiles == before + 1
        # A second run on the same digest reuses the plan.
        Cpu(program, inputs=list(workload.inputs), config=config).run()
        assert COMPILE_CACHE.compiles == before + 1
