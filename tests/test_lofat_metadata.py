"""Unit tests for the loop metadata L."""

import pytest

from repro.lofat.metadata import LoopMetadata, LoopRecord, MetadataGenerator, PathRecord
from repro.lofat.path_encoder import PathEncoding


def make_loop(entry=0x100, paths=None, iterations=None, indirect=()):
    paths = paths or [("011", 3), ("0011", 2)]
    records = [
        PathRecord(encoding=PathEncoding(bits=bits), iterations=count, first_seen_index=i)
        for i, (bits, count) in enumerate(paths)
    ]
    total = iterations if iterations is not None else sum(count for _, count in paths)
    return LoopRecord(entry=entry, exit_node=entry + 0x40, depth=1,
                      iterations=total, paths=records, indirect_targets=list(indirect))


class TestLoopRecord:
    def test_distinct_paths(self):
        assert make_loop().distinct_paths == 2

    def test_serialisation_deterministic(self):
        assert make_loop().to_bytes() == make_loop().to_bytes()

    def test_serialisation_sensitive_to_counts(self):
        a = make_loop(paths=[("011", 3)])
        b = make_loop(paths=[("011", 4)])
        assert a.to_bytes() != b.to_bytes()

    def test_serialisation_sensitive_to_indirect_targets(self):
        a = make_loop(indirect=[0x200])
        b = make_loop(indirect=[0x204])
        assert a.to_bytes() != b.to_bytes()


class TestLoopMetadata:
    def test_add_assigns_exit_sequence(self):
        metadata = LoopMetadata()
        metadata.add(make_loop(entry=0x100))
        metadata.add(make_loop(entry=0x200))
        assert [record.exit_sequence for record in metadata] == [0, 1]

    def test_totals(self):
        metadata = LoopMetadata()
        metadata.add(make_loop(paths=[("0", 5)]))
        metadata.add(make_loop(paths=[("1", 2), ("0", 1)]))
        assert metadata.total_iterations == 8
        assert metadata.total_distinct_paths == 3
        assert len(metadata) == 2

    def test_size_matches_serialisation(self):
        metadata = LoopMetadata()
        metadata.add(make_loop())
        assert metadata.size_bytes == len(metadata.to_bytes())

    def test_loops_at_entry(self):
        metadata = LoopMetadata()
        metadata.add(make_loop(entry=0x100))
        metadata.add(make_loop(entry=0x100))
        metadata.add(make_loop(entry=0x300))
        assert len(metadata.loops_at_entry(0x100)) == 2
        assert metadata.loops_at_entry(0x999) == []

    def test_summary(self):
        metadata = LoopMetadata()
        metadata.add(make_loop())
        summary = metadata.summary()
        assert summary["loop_executions"] == 1
        assert summary["total_iterations"] == 5
        assert summary["max_depth"] == 1

    def test_empty_metadata_serialises(self):
        metadata = LoopMetadata()
        assert metadata.to_bytes() == (0).to_bytes(2, "little")
        assert metadata.summary()["max_depth"] == 0

    def test_serialisation_order_sensitive(self):
        a = LoopMetadata()
        a.add(make_loop(entry=0x100))
        a.add(make_loop(entry=0x200))
        b = LoopMetadata()
        b.add(make_loop(entry=0x200))
        b.add(make_loop(entry=0x100))
        assert a.to_bytes() != b.to_bytes()


class TestMetadataGenerator:
    def test_collects_in_exit_order(self):
        generator = MetadataGenerator()
        generator.on_loop_exit(make_loop(entry=0x10))
        generator.on_loop_exit(make_loop(entry=0x20))
        metadata = generator.finalize()
        assert [record.entry for record in metadata] == [0x10, 0x20]
