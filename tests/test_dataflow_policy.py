"""Fail-closed property tests for StaticPolicy and the verifier pre-screen.

Two directions, both must fail closed:

* a loop bound *injected* into the program must be recovered by the
  analyzer, and lint must flag injected dead code — the static side cannot
  silently under-report;
* a policy bound *tightened* below the true trip count must make the
  verifier reject an otherwise benign attestation report with
  ``POLICY_VIOLATION`` — the enforcement side cannot silently accept.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attestation import Prover, Verifier
from repro.attestation.verifier import VerdictReason
from repro.dataflow import (
    StaticPolicy,
    analyze_program,
    lint_program,
    new_findings,
)
from repro.dataflow.policy import LoopPolicy
from repro.isa.assembler import assemble
from repro.schemes import get_scheme
from repro.workloads import get_workload

LOOP_TEMPLATE = """
_start:
    addi t0, x0, 0
    addi t1, x0, %d
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    addi a7, x0, 93
    ecall
"""


# ---------------------------------------------------------------- pure policy

class TestCheckLoopRecord:
    @given(
        entry=st.integers(min_value=0, max_value=0xFFFF),
        lo=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=0, max_value=100),
        iterations=st.integers(min_value=0, max_value=300),
    )
    def test_bound_semantics(self, entry, lo, span, iterations):
        policy = StaticPolicy(
            program_digest="d",
            loop_entries=frozenset({entry}),
            loop_bounds=(LoopPolicy(entry, lo, lo + span),),
            valid_pairs=frozenset(),
        )
        detail = policy.check_loop_record(entry, iterations)
        if lo <= iterations <= lo + span:
            assert detail is None
        else:
            assert detail is not None

    @given(entry=st.integers(min_value=4, max_value=0xFFFF))
    def test_unknown_entry_rejected_only_when_enforcing(self, entry):
        base = dict(
            program_digest="d",
            loop_entries=frozenset({0}),
            loop_bounds=(),
            valid_pairs=frozenset(),
        )
        strict = StaticPolicy(enforce_entries=True, **base)
        lenient = StaticPolicy(enforce_entries=False, **base)
        assert strict.check_loop_record(entry, 1) is not None
        assert lenient.check_loop_record(entry, 1) is None

    def test_with_bound_replaces_row(self):
        policy = StaticPolicy(
            program_digest="d",
            loop_entries=frozenset({8}),
            loop_bounds=(LoopPolicy(8, 0, 10),),
            valid_pairs=frozenset(),
        )
        tightened = policy.with_bound(8, 0, 3)
        assert tightened.bound_for(8) == LoopPolicy(8, 0, 3)
        assert tightened.check_loop_record(8, 10) is not None
        assert policy.check_loop_record(8, 10) is None


# ------------------------------------------------- analyzer vs injected facts

@given(n=st.integers(min_value=1, max_value=60))
@settings(max_examples=25, deadline=None)
def test_injected_trip_count_recovered(n):
    """The inferred bound tracks the literal loop bound in the source."""
    analysis = analyze_program(assemble(LOOP_TEMPLATE % n))
    loop = analysis.program.symbols["loop"]
    bound = analysis.loop_bounds[loop]
    # i counts 1..n; the back edge is taken while i < n.
    assert bound.max_back_edges == max(0, n - 1)

    true_iterations = max(0, n - 1)
    policy = analysis.policy
    assert policy.check_loop_record(loop, true_iterations) is None
    if true_iterations > 0:
        tightened = policy.with_bound(loop, 0, true_iterations - 1)
        assert tightened.check_loop_record(loop, true_iterations) is not None


@given(payload=st.integers(min_value=1, max_value=2047))
@settings(max_examples=25, deadline=None)
def test_injected_dead_code_flagged(payload):
    """Dead code spliced behind a jump surfaces as a *new* lint finding."""
    n = 12
    clean = analyze_program(assemble(LOOP_TEMPLATE % n))
    baseline = [f.to_json() for f in lint_program(clean)]

    injected_source = LOOP_TEMPLATE % n
    injected_source = injected_source.replace(
        "    addi a7, x0, 93",
        "    j    epilogue\n"
        "orphan:\n"
        "    addi a0, x0, %d\n" % payload +
        "epilogue:\n"
        "    addi a7, x0, 93",
    )
    analysis = analyze_program(assemble(injected_source))
    orphan = analysis.program.symbols["orphan"]
    assert orphan in analysis.unreachable_blocks
    fresh = new_findings(lint_program(analysis), baseline)
    assert any(f.kind == "dead-block" and f.address == orphan for f in fresh)


# ------------------------------------------------------- verifier integration

@pytest.fixture
def protocol():
    workload = get_workload("figure4_loop")
    program = workload.build()
    prover = Prover({workload.name: program}, device_id="device-1")
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key(
        "device-1", prover.keystore.export_for_verifier())
    return workload, program, prover, verifier


def _attest(workload, prover, verifier):
    challenge = verifier.challenge(workload.name, workload.inputs)
    return prover.attest(challenge)


class TestVerifierPolicyScreen:
    def test_default_policy_accepts_benign(self, protocol):
        workload, _, prover, verifier = protocol
        policy = verifier.install_policy(workload.name)
        assert verifier.installed_policy(workload.name) is policy
        report = _attest(workload, prover, verifier)
        verdict = verifier.verify(report, device_id="device-1")
        assert verdict.accepted, verdict

    def test_tightened_bound_rejects_benign_report(self, protocol):
        """The fail-closed direction: an over-tight policy must reject."""
        workload, program, prover, verifier = protocol
        scheme = get_scheme("lofat")
        _, measurement = scheme.measure_execution(
            program, list(workload.inputs))
        records = [r for r in measurement.metadata.loops if r.iterations > 0]
        assert records, "workload has no iterating loop records"
        target = records[0]

        policy = analyze_program(program).policy.with_bound(
            target.entry, 0, target.iterations - 1)
        verifier.install_policy(workload.name, policy)
        report = _attest(workload, prover, verifier)
        verdict = verifier.verify(report, device_id="device-1")
        assert not verdict.accepted
        assert verdict.reason is VerdictReason.POLICY_VIOLATION

    def test_policy_screen_applies_in_every_mode(self, protocol):
        workload, program, prover, verifier = protocol
        scheme = get_scheme("lofat")
        _, measurement = scheme.measure_execution(
            program, list(workload.inputs))
        target = next(
            r for r in measurement.metadata.loops if r.iterations > 0)
        verifier.install_policy(
            workload.name,
            analyze_program(program).policy.with_bound(
                target.entry, 0, target.iterations - 1),
        )
        for mode in ("replay", "structural"):
            report = _attest(workload, prover, verifier)
            verdict = verifier.verify(
                report, device_id="device-1", mode=mode)
            assert verdict.reason is VerdictReason.POLICY_VIOLATION, mode

    def test_install_policy_clears_memoised_verdicts(self, protocol):
        """A structural verdict cached before install must not leak through."""
        workload, program, prover, verifier = protocol
        report = _attest(workload, prover, verifier)
        assert verifier.verify(
            report, device_id="device-1", mode="structural").accepted

        scheme = get_scheme("lofat")
        _, measurement = scheme.measure_execution(
            program, list(workload.inputs))
        target = next(
            r for r in measurement.metadata.loops if r.iterations > 0)
        verifier.install_policy(
            workload.name,
            analyze_program(program).policy.with_bound(
                target.entry, 0, target.iterations - 1),
        )
        second = _attest(workload, prover, verifier)
        verdict = verifier.verify(
            second, device_id="device-1", mode="structural")
        assert verdict.reason is VerdictReason.POLICY_VIOLATION

    def test_install_policy_guards(self, protocol):
        workload, program, _, verifier = protocol
        with pytest.raises(KeyError):
            verifier.install_policy("no-such-program")
        foreign = StaticPolicy(
            program_digest="not-the-digest",
            loop_entries=frozenset(),
            loop_bounds=(),
            valid_pairs=frozenset(),
        )
        with pytest.raises(ValueError):
            verifier.install_policy(workload.name, foreign)
