"""Integration-level tests of the full LO-FAT engine."""

import pytest

from repro.cpu.core import Cpu
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine, attest_execution
from repro.workloads import all_workloads, get_workload


def attest(workload_name, inputs=None, config=None):
    workload = get_workload(workload_name)
    program = workload.build()
    return attest_execution(
        program,
        inputs=list(workload.inputs) if inputs is None else list(inputs),
        config=config,
    )


class TestFigure4:
    """Experiment E4 at unit-test granularity."""

    def test_loop_paths_match_paper_encodings(self):
        result, measurement = attest("figure4_loop")
        assert len(measurement.metadata) == 1
        loop = measurement.metadata.loops[0]
        encodings = {path.encoding.bits for path in loop.paths}
        # The two valid loop paths of Figure 4 plus the loop-exit path.
        assert "011" in encodings
        assert "0011" in encodings

    def test_iteration_counts_split_between_paths(self):
        result, measurement = attest("figure4_loop", inputs=[6])
        loop = measurement.metadata.loops[0]
        counts = {path.encoding.bits: path.iterations for path in loop.paths}
        # 6 iterations alternate between the two paths; the first iteration is
        # untracked (loop discovery) and the final failing check is the exit path.
        assert counts["011"] + counts["0011"] == 5
        assert loop.iterations == 6

    def test_more_iterations_do_not_add_hash_work(self):
        _, few = attest("figure4_loop", inputs=[4])
        _, many = attest("figure4_loop", inputs=[40])
        assert many.stats["pairs_hashed"] == few.stats["pairs_hashed"]
        assert many.stats["pairs_compressed"] > few.stats["pairs_compressed"]


class TestMeasurementProperties:
    def test_deterministic_measurement(self):
        _, first = attest("bubble_sort")
        _, second = attest("bubble_sort")
        assert first.measurement == second.measurement
        assert first.metadata.to_bytes() == second.metadata.to_bytes()

    def test_different_inputs_change_measurement(self):
        _, a = attest("figure4_loop", inputs=[3])
        _, b = attest("figure4_loop", inputs=[4])
        assert (a.measurement != b.measurement
                or a.metadata.to_bytes() != b.metadata.to_bytes())

    def test_same_path_different_iteration_count_differs_via_metadata(self):
        """crc32 of different data with identical CFG paths still yields a
        different (A, L): the loop iteration counts and path mix differ."""
        _, a = attest("crc32", inputs=[1, 0])
        _, b = attest("crc32", inputs=[1, 0xFFFFFFFF])
        assert (a.measurement, a.metadata.to_bytes()) != (b.measurement, b.metadata.to_bytes())

    def test_report_payload_concatenates_a_and_l(self):
        _, measurement = attest("figure4_loop")
        assert measurement.report_payload == (
            measurement.measurement + measurement.metadata.to_bytes()
        )

    def test_measurement_hex(self):
        _, measurement = attest("auth_check")
        assert len(measurement.measurement_hex) == 128


class TestEngineInvariants:
    @pytest.mark.parametrize("workload_name", [
        "figure4_loop", "bubble_sort", "crc32", "syringe_pump", "dispatcher",
        "fibonacci", "matmul", "binary_search", "string_ops", "fir_filter",
    ])
    def test_every_event_hashed_or_compressed(self, workload_name):
        result, measurement = attest(workload_name)
        stats = measurement.stats
        assert (stats["pairs_hashed"] + stats["pairs_compressed"]
                == stats["control_flow_events"])
        assert stats["control_flow_events"] == result.trace.control_flow_events

    @pytest.mark.parametrize("workload_name", [
        "figure4_loop", "bubble_sort", "crc32", "syringe_pump", "dispatcher",
    ])
    def test_metadata_iteration_counts_consistent(self, workload_name):
        _, measurement = attest(workload_name)
        for loop in measurement.metadata:
            assert sum(path.iterations for path in loop.paths) == loop.iterations

    @pytest.mark.parametrize("workload_name", [
        "figure4_loop", "bubble_sort", "crc32", "syringe_pump", "dispatcher",
        "matmul", "fir_filter",
    ])
    def test_no_dropped_pairs_with_default_buffer(self, workload_name):
        _, measurement = attest(workload_name)
        assert measurement.stats["hash_engine"]["dropped_pairs"] == 0

    def test_compression_reduces_hash_work_on_loopy_code(self):
        _, measurement = attest("crc32")
        stats = measurement.stats
        assert stats["pairs_hashed"] < stats["control_flow_events"] / 2

    def test_zero_processor_overhead(self):
        workload = get_workload("matmul")
        program = workload.build()
        plain = Cpu(program, inputs=list(workload.inputs)).run()
        cpu = Cpu(program, inputs=list(workload.inputs))
        engine = LoFatEngine()
        cpu.attach_monitor(engine.observe)
        attested = cpu.run()
        assert attested.cycles == plain.cycles
        assert attested.output == plain.output


class TestEngineLifecycle:
    def test_finalize_idempotent(self):
        workload = get_workload("auth_check")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs))
        engine = LoFatEngine()
        cpu.attach_monitor(engine.observe)
        cpu.run()
        first = engine.finalize()
        second = engine.finalize()
        assert first is second

    def test_observe_after_finalize_rejected(self):
        workload = get_workload("auth_check")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs))
        engine = LoFatEngine()
        cpu.attach_monitor(engine.observe)
        result = cpu.run()
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.observe(result.trace[0])

    def test_engine_is_callable_as_monitor(self):
        workload = get_workload("auth_check")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs))
        engine = LoFatEngine()
        cpu.attach_monitor(engine)          # __call__ alias
        cpu.run()
        assert engine.finalize().stats["control_flow_events"] > 0

    def test_statistics_structure(self):
        _, measurement = attest("figure4_loop")
        stats = measurement.stats
        for key in ("control_flow_events", "pairs_hashed", "pairs_compressed",
                    "compression_ratio", "internal_latency_cycles",
                    "processor_stall_cycles", "filter", "loops", "hash_engine"):
            assert key in stats
