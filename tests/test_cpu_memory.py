"""Unit tests for the protected memory model."""

import pytest

from repro.cpu.exceptions import MemoryProtectionError, MisalignedAccessError
from repro.cpu.memory import Memory, MemoryRegion, Permissions


def make_memory():
    memory = Memory()
    memory.add_region(MemoryRegion("code", 0x0000, 0x1000, Permissions.rx()))
    memory.add_region(MemoryRegion("data", 0x10000, 0x1000, Permissions.rw()))
    return memory


class TestRegions:
    def test_region_lookup(self):
        memory = make_memory()
        assert memory.region_for(0x10).name == "code"
        assert memory.region_for(0x10004).name == "data"
        assert memory.region_for(0x50000) is None

    def test_overlapping_regions_rejected(self):
        memory = make_memory()
        with pytest.raises(ValueError):
            memory.add_region(MemoryRegion("bad", 0x800, 0x1000, Permissions.rw()))

    def test_region_properties(self):
        region = MemoryRegion("r", 0x100, 0x10, Permissions.rw())
        assert region.end == 0x110
        assert region.contains(0x100) and region.contains(0x10F)
        assert not region.contains(0x110)

    def test_regions_copy(self):
        memory = make_memory()
        regions = memory.regions
        regions.clear()
        assert len(memory.regions) == 2


class TestPermissions:
    def test_write_to_code_rejected(self):
        """The adversary cannot modify program code at run time (threat model)."""
        memory = make_memory()
        with pytest.raises(MemoryProtectionError):
            memory.store(0x10, 0xDEAD, 4)

    def test_execute_from_data_rejected(self):
        memory = make_memory()
        memory.store(0x10000, 0x13, 4)
        with pytest.raises(MemoryProtectionError):
            memory.fetch_word(0x10000)

    def test_read_write_data(self):
        memory = make_memory()
        memory.store(0x10020, 0xCAFEBABE, 4)
        assert memory.load(0x10020, 4) == 0xCAFEBABE

    def test_fetch_from_code(self):
        memory = make_memory()
        memory.load_image(0x0, (0x00000013).to_bytes(4, "little"))
        assert memory.fetch_word(0x0) == 0x13

    def test_unmapped_access_rejected(self):
        memory = make_memory()
        with pytest.raises(MemoryProtectionError):
            memory.load(0x90000, 4)

    def test_access_straddling_region_end_rejected(self):
        memory = make_memory()
        memory.add_region(MemoryRegion("tiny", 0x20000, 6, Permissions.rw()))
        with pytest.raises(MemoryProtectionError):
            memory.load(0x20004, 4)  # aligned, but the last byte is unmapped

    def test_protection_can_be_disabled(self):
        memory = Memory(enforce_protection=False)
        memory.store(0x123458, 7, 4)
        assert memory.load(0x123458, 4) == 7

    def test_load_image_bypasses_protection(self):
        memory = make_memory()
        memory.load_image(0x0, b"\x01\x02\x03\x04")
        assert memory.load_bytes(0x0, 4, check=False) == b"\x01\x02\x03\x04"


class TestAccessSemantics:
    def test_little_endian_word(self):
        memory = make_memory()
        memory.store(0x10000, 0x11223344, 4)
        assert memory.load_bytes(0x10000, 4) == b"\x44\x33\x22\x11"

    def test_signed_and_unsigned_loads(self):
        memory = make_memory()
        memory.store(0x10000, 0xFF, 1)
        assert memory.load(0x10000, 1, signed=True) == -1
        assert memory.load(0x10000, 1, signed=False) == 0xFF

    def test_halfword_access(self):
        memory = make_memory()
        memory.store(0x10002, 0xBEEF, 2)
        assert memory.load(0x10002, 2) == 0xBEEF

    def test_store_truncates_value(self):
        memory = make_memory()
        memory.store(0x10000, 0x1FF, 1)
        assert memory.load(0x10000, 1) == 0xFF

    def test_misaligned_word_rejected(self):
        memory = make_memory()
        with pytest.raises(MisalignedAccessError):
            memory.load(0x10001, 4)
        with pytest.raises(MisalignedAccessError):
            memory.store(0x10002, 1, 4)

    def test_misaligned_fetch_rejected(self):
        memory = make_memory()
        with pytest.raises(MisalignedAccessError):
            memory.fetch_word(0x2)

    def test_uninitialised_memory_reads_zero(self):
        memory = make_memory()
        assert memory.load(0x10800, 4) == 0

    def test_read_cstring(self):
        memory = make_memory()
        memory.store_bytes(0x10000, b"hello\x00world", check=False)
        assert memory.read_cstring(0x10000) == "hello"

    def test_word_helpers(self):
        memory = make_memory()
        memory.store_word(0x10010, 42)
        assert memory.load_word(0x10010) == 42

    def test_snapshot(self):
        memory = make_memory()
        memory.store(0x10000, 0xAB, 1)
        assert memory.snapshot()[0x10000] == 0xAB
