"""End-to-end protocol tests: prover and verifier."""

import pytest

from repro.attestation import Prover, Verifier
from repro.attestation.verifier import VerdictReason
from repro.lofat.metadata import LoopMetadata
from repro.workloads import get_workload


@pytest.fixture
def protocol_setup():
    """A prover provisioned with two programs, plus a matching verifier."""
    pump = get_workload("syringe_pump")
    fig4 = get_workload("figure4_loop")
    programs = {pump.name: pump.build(), fig4.name: fig4.build()}
    prover = Prover(programs, device_id="device-7")
    verifier = Verifier()
    for name, program in programs.items():
        verifier.register_program(name, program)
    verifier.register_device_key("device-7", prover.keystore.export_for_verifier())
    return pump, fig4, programs, prover, verifier


class TestHappyPath:
    def test_benign_report_accepted(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        verdict = verifier.verify(report, device_id="device-7")
        assert verdict.accepted
        assert verdict.reason is VerdictReason.ACCEPTED

    def test_report_echoes_program_output(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        assert report.output == pump.expected_output

    def test_database_mode(self, protocol_setup):
        _, fig4, _, prover, verifier = protocol_setup
        verifier.precompute_measurement(fig4.name, fig4.inputs)
        challenge = verifier.challenge(fig4.name, fig4.inputs)
        report = prover.attest(challenge)
        assert verifier.verify(report, device_id="device-7", mode="database").accepted

    def test_database_mode_without_reference(self, protocol_setup):
        _, fig4, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(fig4.name, [9])
        report = prover.attest(challenge)
        verdict = verifier.verify(report, device_id="device-7", mode="database")
        assert verdict.reason is VerdictReason.NO_REFERENCE

    def test_structural_mode_accepts_benign(self, protocol_setup):
        _, fig4, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(fig4.name, fig4.inputs)
        report = prover.attest(challenge)
        assert verifier.verify(report, device_id="device-7", mode="structural").accepted

    def test_different_inputs_give_different_measurements(self, protocol_setup):
        _, fig4, _, prover, verifier = protocol_setup
        reports = []
        for iterations in (3, 5):
            challenge = verifier.challenge(fig4.name, [iterations])
            reports.append(prover.attest(challenge))
        assert reports[0].payload != reports[1].payload

    def test_prover_run_info_populated(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        prover.attest(challenge)
        assert prover.last_run is not None
        assert prover.last_run.instructions > 0
        assert prover.last_run.engine_stats["processor_stall_cycles"] == 0


class TestRejections:
    def test_unknown_program(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        report.program_id = "unknown"
        assert verifier.verify(report).reason is VerdictReason.UNKNOWN_PROGRAM

    def test_unknown_nonce(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        report.nonce = b"\x00" * 16
        assert verifier.verify(report).reason is VerdictReason.UNKNOWN_NONCE

    def test_replayed_report_rejected(self, protocol_setup):
        """Freshness: the same signed report cannot be presented twice."""
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        assert verifier.verify(report, device_id="device-7").accepted
        second = verifier.verify(report, device_id="device-7")
        assert not second.accepted
        assert second.reason is VerdictReason.NONCE_REUSED

    def test_bad_signature_rejected(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        report.signature = bytes(32)
        assert verifier.verify(report).reason is VerdictReason.BAD_SIGNATURE

    def test_unknown_device_key_rejected(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        assert verifier.verify(report, device_id="other-device").reason is (
            VerdictReason.BAD_SIGNATURE)

    def test_tampered_measurement_rejected(self, protocol_setup):
        """Changing A breaks the signature; re-signing is impossible without sk."""
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        report.measurement = bytes(64)
        assert verifier.verify(report).reason is VerdictReason.BAD_SIGNATURE

    def test_stripped_metadata_rejected(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        report = prover.attest(challenge)
        report.metadata = LoopMetadata()
        assert not verifier.verify(report).accepted

    def test_report_for_wrong_input_rejected(self, protocol_setup):
        """The prover answers an old challenge's execution for a new nonce."""
        _, fig4, _, prover, verifier = protocol_setup
        challenge_a = verifier.challenge(fig4.name, [3])
        report_a = prover.attest(challenge_a)
        challenge_b = verifier.challenge(fig4.name, [5])
        report_b = prover.attest(challenge_b)
        # Swap the measurement content of report_b with report_a's execution:
        # the signature no longer matches, and even with a forged signature
        # the replay check would fail.  Here we check the measurement path.
        report_b.measurement = report_a.measurement
        report_b.metadata = report_a.metadata
        verdict = verifier.verify(report_b)
        assert not verdict.accepted

    def test_challenge_for_unregistered_program_raises(self, protocol_setup):
        *_, verifier = protocol_setup
        with pytest.raises(KeyError):
            verifier.challenge("unknown-program", [])

    def test_prover_rejects_unknown_program(self, protocol_setup):
        pump, _, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(pump.name, pump.inputs)
        object.__setattr__(challenge, "program_id", "missing")
        with pytest.raises(KeyError):
            prover.attest(challenge)


class TestMetadataStructuralChecks:
    def test_fabricated_loop_entry_rejected(self, protocol_setup):
        """Metadata naming a loop at an address with no backward edge fails
        the structural CFG check even before measurement comparison."""
        _, fig4, programs, prover, verifier = protocol_setup
        challenge = verifier.challenge(fig4.name, fig4.inputs)
        report = prover.attest(challenge)
        # Forge the entry of the first loop record to a non-loop address.
        report.metadata.loops[0].entry = programs[fig4.name].entry
        # Re-signing with the device key models a fully compromised prover
        # software stack (the key itself is still hardware-protected, so this
        # is strictly stronger than the real adversary).
        from repro.attestation.crypto import sign_report
        report.signature = sign_report(report.payload, report.nonce, prover.keystore)
        verdict = verifier.verify(report, device_id="device-7")
        assert verdict.reason is VerdictReason.METADATA_CFG_VIOLATION

    def test_inconsistent_iteration_counts_rejected(self, protocol_setup):
        _, fig4, _, prover, verifier = protocol_setup
        challenge = verifier.challenge(fig4.name, fig4.inputs)
        report = prover.attest(challenge)
        report.metadata.loops[0].iterations += 5
        from repro.attestation.crypto import sign_report
        report.signature = sign_report(report.payload, report.nonce, prover.keystore)
        verdict = verifier.verify(report, device_id="device-7")
        assert verdict.reason is VerdictReason.METADATA_CFG_VIOLATION
