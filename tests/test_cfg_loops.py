"""Unit tests for natural-loop detection."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.loops import find_natural_loops, loop_for_block, max_nesting_depth
from repro.isa.assembler import assemble
from repro.workloads import get_workload

NESTED = """
_start:
    li t0, 0
outer:
    li t1, 3
    bge t0, t1, done
    li t2, 0
inner:
    li t3, 2
    bge t2, t3, inner_done
    addi t2, t2, 1
    j inner
inner_done:
    addi t0, t0, 1
    j outer
done:
    li a7, 93
    ecall
"""


class TestNaturalLoops:
    def test_simple_loop_detected(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        header = cfg.block_containing(simple_loop_program.symbols["loop"]).start
        assert loops[0].header == header

    def test_loop_body_and_exits(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        loop = find_natural_loops(cfg)[0]
        done = cfg.block_containing(simple_loop_program.symbols["done"]).start
        assert done in loop.exits
        assert loop.header in loop.body
        assert loop.size >= 2

    def test_back_edges_recorded(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        loop = find_natural_loops(cfg)[0]
        assert all(dst == loop.header for _, dst in loop.back_edges)

    def test_nested_loops_depths(self):
        program = assemble(NESTED)
        cfg = build_cfg(program)
        loops = find_natural_loops(cfg)
        assert len(loops) == 2
        by_header = {loop.header: loop for loop in loops}
        outer = by_header[cfg.block_containing(program.symbols["outer"]).start]
        inner = by_header[cfg.block_containing(program.symbols["inner"]).start]
        assert outer.depth == 1
        assert inner.depth == 2
        assert inner.parent == outer.header
        assert max_nesting_depth(loops) == 2

    def test_inner_loop_body_subset_of_outer(self):
        program = assemble(NESTED)
        cfg = build_cfg(program)
        loops = {loop.depth: loop for loop in find_natural_loops(cfg)}
        assert loops[2].body <= loops[1].body

    def test_loop_for_block_returns_innermost(self):
        program = assemble(NESTED)
        cfg = build_cfg(program)
        loops = find_natural_loops(cfg)
        inner_header = cfg.block_containing(program.symbols["inner"]).start
        found = loop_for_block(loops, inner_header)
        assert found is not None and found.depth == 2
        assert loop_for_block(loops, cfg.block_containing(program.symbols["done"]).start) is None

    def test_straight_line_program_has_no_loops(self, call_return_program):
        cfg = build_cfg(call_return_program)
        assert find_natural_loops(cfg) == []
        assert max_nesting_depth([]) == 0

    def test_matmul_has_three_deep_nest(self):
        program = get_workload("matmul").build()
        cfg = build_cfg(program)
        loops = find_natural_loops(cfg)
        assert max_nesting_depth(loops) == 3

    @pytest.mark.parametrize("workload_name,expected_min_loops", [
        ("bubble_sort", 4),       # read, outer, inner, print
        ("crc32", 2),             # word loop + bit loop
        ("syringe_pump", 3),      # main loop, dispense, withdraw (+ delay)
    ])
    def test_workload_loop_counts(self, workload_name, expected_min_loops):
        program = get_workload(workload_name).build()
        loops = find_natural_loops(build_cfg(program))
        assert len(loops) >= expected_min_loops
