"""Equivalence tests: language ports vs. the hand-assembled originals.

Each ported workload must compute the same function as its original: same
output for the default inputs, same output for fresh input vectors, and the
same ACCEPT verdict under every registered attestation scheme.  The
measurements differ by construction (different binaries), so equivalence is
pinned at the observable-behaviour and protocol-verdict level.
"""

import pytest

from repro.attestation import Prover, Verifier
from repro.cpu.core import run_program
from repro.lang.ports import PORTS, compile_port
from repro.schemes import scheme_names
from repro.workloads import get_workload
from repro.workloads.crc import reference_output as crc_reference
from repro.workloads.search import reference_output as search_reference
from repro.workloads.sorting import reference_output as sort_reference

PORT_NAMES = sorted(PORTS)

#: Extra input vectors per original workload (beyond the registered defaults).
EXTRA_INPUTS = {
    "bubble_sort": [
        [1, 5],
        [5, 9, 9, 1, 0, 4],
        [6, -3, 7, -12, 0, 2, 2],
    ],
    "crc32": [
        [1, 0],
        [2, 0xFFFFFFFF, 1],
        [3, 0x0BADF00D, 0xDEADBEEF, 0x12345678],
    ],
    "binary_search": [
        [1, 2],
        [3, 53, 1, 54],
        [4, 11, 12, 13, 47],
    ],
}

REFERENCES = {
    "bubble_sort": sort_reference,
    "crc32": crc_reference,
    "binary_search": search_reference,
}


def _verdict(workload, scheme_name):
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key(
        "prover-0", prover.keystore.export_for_verifier())
    challenge = verifier.challenge(
        workload.name, workload.inputs, scheme=scheme_name)
    return verifier.verify(prover.attest(challenge))


class TestPortOutputs:
    @pytest.mark.parametrize("port_name", PORT_NAMES)
    def test_default_inputs_match_original_expectation(self, port_name):
        port = get_workload(port_name)
        original = get_workload(PORTS[port_name][0])
        assert port.inputs == original.inputs
        result = run_program(port.build(), inputs=port.inputs)
        assert result.output == original.expected_output
        assert result.exit_code == 0

    @pytest.mark.parametrize("port_name", PORT_NAMES)
    def test_fresh_inputs_match_original_and_reference(self, port_name):
        original_name = PORTS[port_name][0]
        port_program = get_workload(port_name).build()
        original_program = get_workload(original_name).build()
        for inputs in EXTRA_INPUTS[original_name]:
            ported = run_program(port_program, inputs=inputs)
            original = run_program(original_program, inputs=inputs)
            assert ported.output == original.output
            assert ported.output == REFERENCES[original_name](inputs)


class TestPortVerdicts:
    @pytest.mark.parametrize("port_name", PORT_NAMES)
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_port_and_original_both_accepted(self, port_name, scheme_name):
        port_verdict = _verdict(get_workload(port_name), scheme_name)
        original_verdict = _verdict(
            get_workload(PORTS[port_name][0]), scheme_name)
        assert port_verdict.accepted
        assert original_verdict.accepted
        assert port_verdict.reason == original_verdict.reason


class TestPortMetadata:
    @pytest.mark.parametrize("port_name", PORT_NAMES)
    def test_compiler_metadata_matches_cfg_analysis(self, port_name):
        compiled = compile_port(port_name, verify=False)
        stats = compiled.verify_against_analysis()
        assert stats["instructions"] > 0
        assert stats["loops"] >= 2  # every port is loop-structured

    def test_bubble_sort_port_has_nested_loops(self):
        compiled = compile_port("lang_bubble_sort")
        depths = [loop.depth for loop in compiled.loops]
        assert max(depths) == 2  # the inner swap loop

    def test_crc_port_has_nested_bit_loop(self):
        compiled = compile_port("lang_crc32")
        depths = sorted(loop.depth for loop in compiled.loops)
        assert depths == [1, 2]  # word loop containing the bit loop
