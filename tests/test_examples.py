"""Smoke tests: every example script runs successfully end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True, text=True, timeout=300,
    )


class TestExamples:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs_cleanly(self, name):
        completed = run_example(name)
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert completed.stdout.strip(), "example produced no output"

    def test_quickstart_accepts_workload_argument(self):
        completed = run_example("quickstart.py", "crc32")
        assert completed.returncode == 0
        assert "crc32" in completed.stdout

    def test_attack_detection_reports_full_coverage(self):
        completed = run_example("attack_detection.py")
        assert "4/4" in completed.stdout

    def test_overhead_comparison_reports_zero_lofat_overhead(self):
        completed = run_example("overhead_comparison.py")
        assert "LO-FAT overhead is 0%" in completed.stdout
