"""Property-based tests of the CPU's instruction semantics.

Each property generates random operands, assembles a tiny program that
performs the operation on the core model, and compares the printed result
against a Python reference implementation of the RV32 semantics.  This guards
the substrate the whole reproduction stands on: if the simulated ISA semantics
drift, every measurement downstream becomes meaningless.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import run_program
from repro.isa.assembler import assemble

_WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)
_SHAMT = st.integers(min_value=0, max_value=31)


def _signed(value):
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _run_binary_op(mnemonic, lhs, rhs):
    source = """
    _start:
        li a0, %d
        li a1, %d
        %s a2, a0, a1
        mv a0, a2
        li a7, 1
        ecall
        li a7, 93
        ecall
    """ % (_signed(lhs), _signed(rhs), mnemonic)
    return int(run_program(assemble(source)).output)


def _ref_div(a, b):
    """RV32M div: truncating signed division with the spec's special cases.

    Deliberately computed via exact rationals + trunc -- a different
    structure from the implementation's magnitude-//-and-sign-fixup -- so
    the property tests are an independent oracle, not a mirror.
    """
    import math
    from fractions import Fraction

    a, b = _signed(a), _signed(b)
    if b == 0:
        return -1
    if a == -(1 << 31) and b == -1:
        return a
    return math.trunc(Fraction(a, b))


def _ref_rem(a, b):
    a, b = _signed(a), _signed(b)
    if b == 0:
        return a
    if a == -(1 << 31) and b == -1:
        return 0
    return a - _ref_div(a, b) * b


REFERENCES = {
    "add": lambda a, b: _signed(a + b),
    "sub": lambda a, b: _signed(a - b),
    "and": lambda a, b: _signed(a & b),
    "or": lambda a, b: _signed(a | b),
    "xor": lambda a, b: _signed(a ^ b),
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sltu": lambda a, b: 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0,
    "mul": lambda a, b: _signed(_signed(a) * _signed(b)),
    "mulh": lambda a, b: _signed((_signed(a) * _signed(b)) >> 32),
    "mulhu": lambda a, b: _signed(((a & 0xFFFFFFFF) * (b & 0xFFFFFFFF)) >> 32),
    "mulhsu": lambda a, b: _signed((_signed(a) * (b & 0xFFFFFFFF)) >> 32),
    "div": _ref_div,
    "rem": _ref_rem,
    "divu": lambda a, b: _signed(0xFFFFFFFF if (b & 0xFFFFFFFF) == 0
                                 else (a & 0xFFFFFFFF) // (b & 0xFFFFFFFF)),
    "remu": lambda a, b: _signed((a & 0xFFFFFFFF) if (b & 0xFFFFFFFF) == 0
                                 else (a & 0xFFFFFFFF) % (b & 0xFFFFFFFF)),
}


class TestAluProperties:
    @pytest.mark.parametrize("mnemonic", sorted(REFERENCES))
    @given(lhs=_WORD, rhs=_WORD)
    @settings(max_examples=30, deadline=None)
    def test_binary_op_matches_reference(self, mnemonic, lhs, rhs):
        assert _run_binary_op(mnemonic, lhs, rhs) == REFERENCES[mnemonic](lhs, rhs)

    # (lhs, rhs) -> literal expected (div, rem, divu, remu), as the signed
    # values the print_int syscall emits.  Pinned by hand from the RISC-V M
    # specification table, so these cases do not depend on any Python
    # reference implementation.
    @pytest.mark.parametrize("lhs,rhs,expected", [
        # INT_MIN / -1: signed overflow wraps to INT_MIN, rem 0.
        (0x80000000, 0xFFFFFFFF, (-2147483648, 0, 0, -2147483648)),
        # Division by zero: div all-ones, rem passes the dividend through.
        (0x80000000, 0, (-1, -2147483648, -1, -2147483648)),
        (0, 0, (-1, 0, -1, 0)),
        (0xFFFFFFFF, 0, (-1, -1, -1, -1)),
        # INT_MAX / -1 (no overflow; unsigned view is huge divisor).
        (0x7FFFFFFF, 0xFFFFFFFF, (-2147483647, 0, 0, 2147483647)),
        # INT_MIN / 1.
        (0x80000000, 1, (-2147483648, 0, -2147483648, 0)),
        # -6 / 3: exact negative quotient; unsigned view 4294967290 / 3.
        (0xFFFFFFFA, 3, (-2, 0, 1431655763, 1)),
        # -7 / 2: truncation toward zero, rem takes the dividend's sign.
        (0xFFFFFFF9, 2, (-3, -1, 2147483644, 1)),
        # 7 / -2: truncation toward zero from the positive side.
        (7, 0xFFFFFFFE, (-3, 1, 0, 7)),
        # Large positive magnitudes.
        (0x7FFFFFFF, 2, (1073741823, 1, 1073741823, 1)),
    ])
    def test_div_rem_m_extension_edges(self, lhs, rhs, expected):
        """The RISC-V M special cases, pinned to hand-computed constants."""
        for mnemonic, value in zip(("div", "rem", "divu", "remu"), expected):
            assert _run_binary_op(mnemonic, lhs, rhs) == value, mnemonic

    @given(lhs=_WORD, rhs=_WORD)
    @settings(max_examples=30, deadline=None)
    def test_div_rem_identity(self, lhs, rhs):
        """RISC-V guarantees rs1 == div * rs2 + rem (when rs2 != 0)."""
        quotient = _run_binary_op("div", lhs, rhs)
        remainder = _run_binary_op("rem", lhs, rhs)
        a, b = _signed(lhs), _signed(rhs)
        if b == 0:
            assert quotient == -1 and remainder == a
        elif a == -(1 << 31) and b == -1:
            assert quotient == a and remainder == 0
        else:
            assert _signed(quotient * b + remainder) == a
            assert abs(remainder) < abs(b)

    @given(value=_WORD, shamt=_SHAMT)
    @settings(max_examples=30, deadline=None)
    def test_shift_semantics(self, value, shamt):
        source = """
        _start:
            li a0, %d
            slli a1, a0, %d
            srli a2, a0, %d
            srai a3, a0, %d
            mv a0, a1
            li a7, 1
            ecall
            li a0, 32
            li a7, 11
            ecall
            mv a0, a2
            li a7, 1
            ecall
            li a0, 32
            li a7, 11
            ecall
            mv a0, a3
            li a7, 1
            ecall
            li a7, 93
            ecall
        """ % (_signed(value), shamt, shamt, shamt)
        sll, srl, sra = run_program(assemble(source)).output.split(" ")
        assert int(sll) == _signed(value << shamt)
        assert int(srl) == _signed((value & 0xFFFFFFFF) >> shamt)
        assert int(sra) == _signed(_signed(value) >> shamt)

    @given(lhs=_WORD, rhs=_WORD)
    @settings(max_examples=30, deadline=None)
    def test_branch_consistency_with_slt(self, lhs, rhs):
        """blt takes the branch exactly when slt computes 1."""
        source = """
        _start:
            li a0, %d
            li a1, %d
            blt a0, a1, taken
            li a2, 0
            j out
        taken:
            li a2, 1
        out:
            mv a0, a2
            li a7, 1
            ecall
            li a7, 93
            ecall
        """ % (_signed(lhs), _signed(rhs))
        branched = int(run_program(assemble(source)).output)
        assert branched == REFERENCES["slt"](lhs, rhs)

    @given(value=_WORD)
    @settings(max_examples=30, deadline=None)
    def test_store_load_roundtrip(self, value):
        source = """
            .data
        slot: .space 4
            .text
        _start:
            la t0, slot
            li t1, %d
            sw t1, 0(t0)
            lw a0, 0(t0)
            li a7, 1
            ecall
            li a7, 93
            ecall
        """ % _signed(value)
        assert int(run_program(assemble(source)).output) == _signed(value)
