"""Drift guard for the golden corpus of compiled language programs.

Recompiles every checked-in corpus entry from its ``.lang`` source and
fails on any divergence from the committed assembly, digest or CFG
metadata -- the compiled-workload analogue of the adversary corpus guard.
An intentional compiler change that alters generated code must regenerate
the corpus (``python -m repro.lang.corpus tests/data/lang_corpus``) so the
diff is reviewed like any other golden-file change.

This is also where the PR's acceptance criterion lives: for every corpus
program, the compiler-emitted block leaders and loop nesting must equal
what :mod:`repro.cfg` computes from the binary.
"""

import os

import pytest

from repro.cpu.core import run_program
from repro.lang import compile_source
from repro.lang.corpus import build_corpus, load_corpus, write_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "lang_corpus")

_ENTRIES = {entry.name: entry for entry in load_corpus(CORPUS_DIR)}
ENTRY_NAMES = sorted(_ENTRIES)


class TestCorpusDriftGuard:
    def test_membership_matches_builder(self):
        built = {entry.name for entry in build_corpus()}
        assert built == set(ENTRY_NAMES)

    @pytest.mark.parametrize("name", ENTRY_NAMES)
    def test_recompilation_matches_golden_assembly(self, name):
        entry = _ENTRIES[name]
        compiled = compile_source(entry.source, name=name)
        assert compiled.assembly == entry.assembly, (
            "generated code drifted for %r; if intentional, regenerate with "
            "'python -m repro.lang.corpus tests/data/lang_corpus'" % name)
        assert compiled.program.digest == entry.digest

    @pytest.mark.parametrize("name", ENTRY_NAMES)
    def test_metadata_matches_cfg_analysis(self, name):
        entry = _ENTRIES[name]
        compiled = compile_source(entry.source, name=name)
        stats = compiled.verify_against_analysis()  # raises on mismatch
        assert stats["blocks"] == len(entry.block_leaders)
        assert compiled.block_leaders == entry.block_leaders
        assert [
            {"label": loop.header_label, "header": loop.header,
             "depth": loop.depth, "function": loop.function}
            for loop in compiled.loops
        ] == entry.loops

    @pytest.mark.parametrize("name", ENTRY_NAMES)
    def test_behaviour_matches_recorded_output(self, name):
        entry = _ENTRIES[name]
        compiled = compile_source(entry.source, name=name)
        result = run_program(compiled.program, inputs=entry.inputs)
        assert result.output == entry.expected_output
        assert result.exit_code == 0

    def test_corpus_spans_the_compiler_surface(self):
        # Ports, one member per family axis, and both showcases.
        assert {"lang_bubble_sort", "lang_crc32", "lang_binary_search",
                "showcase_gcd", "showcase_fib"} <= set(ENTRY_NAMES)
        families = {name.split("_")[1] for name in ENTRY_NAMES
                    if name.startswith("fam_")}
        assert families == {"nest", "branchy", "calls", "arrays"}


class TestCorpusRoundTrip:
    def test_write_then_load_is_identity(self, tmp_path):
        directory = str(tmp_path / "corpus")
        write_corpus(directory)
        reloaded = load_corpus(directory)
        assert [e.name for e in reloaded] == ENTRY_NAMES
        for entry in reloaded:
            golden = _ENTRIES[entry.name]
            assert entry.assembly == golden.assembly
            assert entry.digest == golden.digest
            assert entry.loops == golden.loops
            assert entry.inputs == golden.inputs
