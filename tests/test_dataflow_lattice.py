"""Unit and property tests for the interval lattice.

The soundness contract every transfer helper promises: for any concrete
operands drawn from the argument intervals, the concrete RV32 result is
contained in the result interval.  The property tests sample that contract
directly against the Python-level reference semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.lattice import (
    BOOL,
    TOP,
    WORD_MASK,
    Interval,
    refine_branch,
    to_signed,
    to_unsigned,
)

# Small bounds keep the shrunk counterexamples readable; a separate strategy
# mixes in boundary words so the sign/wrap corners are exercised too.
_words = st.integers(min_value=0, max_value=WORD_MASK)
_edgy_words = st.sampled_from(
    [0, 1, 2, 0x7FFFFFFE, 0x7FFFFFFF, 0x80000000, 0x80000001,
     0xFFFFFFFE, 0xFFFFFFFF, 41, 1000]
) | _words


@st.composite
def intervals(draw):
    a = draw(_edgy_words)
    b = draw(_edgy_words)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_with_member(draw):
    interval = draw(intervals())
    value = draw(st.integers(min_value=interval.lo, max_value=interval.hi))
    return interval, value


class TestBasics:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)
        with pytest.raises(ValueError):
            Interval(-1, 4)
        with pytest.raises(ValueError):
            Interval(0, WORD_MASK + 1)

    def test_const_and_top(self):
        assert Interval.const(-1) == Interval(WORD_MASK, WORD_MASK)
        assert Interval.const(7).is_const
        assert Interval.const(7).value == 7
        assert TOP.is_top
        assert not BOOL.is_top
        with pytest.raises(ValueError):
            BOOL.value

    def test_signed_bounds(self):
        assert Interval(0, 5).signed_bounds() == (0, 5)
        assert Interval.const(-3).signed_bounds() == (-3, -3)
        # Straddles the signed boundary: no single signed range.
        assert Interval(0x7FFFFFFF, 0x80000000).signed_bounds() is None

    @given(intervals(), intervals())
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert joined.lo <= min(a.lo, b.lo)
        assert joined.hi >= max(a.hi, b.hi)

    @given(intervals(), intervals())
    def test_meet_is_intersection(self, a, b):
        met = a.meet(b)
        expected_lo, expected_hi = max(a.lo, b.lo), min(a.hi, b.hi)
        if expected_lo > expected_hi:
            assert met is None
        else:
            assert met == Interval(expected_lo, expected_hi)

    def test_widen_is_top(self):
        assert Interval(3, 9).widen() is TOP


def _concrete(op, x, y):
    """The executor's reference result for one binary operation."""
    if op == "add":
        return to_unsigned(x + y)
    if op == "sub":
        return to_unsigned(x - y)
    if op == "mul":
        return to_unsigned(to_signed(x) * to_signed(y))
    if op == "and_":
        return x & y
    if op == "or_":
        return x | y
    if op == "xor":
        return x ^ y
    if op == "shl":
        return to_unsigned(x << (y & 0x1F))
    if op == "shr_logical":
        return x >> (y & 0x1F)
    if op == "shr_arithmetic":
        return to_unsigned(to_signed(x) >> (y & 0x1F))
    if op == "divu":
        return WORD_MASK if y == 0 else x // y
    if op == "remu":
        return x if y == 0 else x % y
    raise AssertionError(op)


@pytest.mark.parametrize("op", [
    "add", "sub", "mul", "and_", "or_", "xor",
    "shl", "shr_logical", "shr_arithmetic", "divu", "remu",
])
@given(interval_with_member(), interval_with_member())
@settings(max_examples=60)
def test_transfer_soundness(op, lhs, rhs):
    a, x = lhs
    b, y = rhs
    result = getattr(a, op)(b)
    assert result.contains(_concrete(op, x, y)), (
        "%s: %r op %r -> %r must contain %#x"
        % (op, a, b, result, _concrete(op, x, y))
    )


def _branch_outcome(mnemonic, x, y):
    if mnemonic == "beq":
        return x == y
    if mnemonic == "bne":
        return x != y
    if mnemonic == "bltu":
        return x < y
    if mnemonic == "bgeu":
        return x >= y
    if mnemonic == "blt":
        return to_signed(x) < to_signed(y)
    if mnemonic == "bge":
        return to_signed(x) >= to_signed(y)
    raise AssertionError(mnemonic)


@pytest.mark.parametrize("mnemonic", ["beq", "bne", "bltu", "bgeu", "blt", "bge"])
@pytest.mark.parametrize("taken", [True, False])
@given(interval_with_member(), interval_with_member())
@settings(max_examples=60)
def test_refine_branch_soundness(mnemonic, taken, lhs, rhs):
    """Concrete pairs consistent with the outcome survive refinement."""
    a, x = lhs
    b, y = rhs
    refined = refine_branch(mnemonic, taken, a, b)
    if _branch_outcome(mnemonic, x, y) == taken:
        assert refined is not None, (
            "(%#x, %#x) satisfies %s taken=%s but the edge was pruned"
            % (x, y, mnemonic, taken)
        )
        new_lhs, new_rhs = refined
        assert new_lhs.contains(x)
        assert new_rhs.contains(y)


@pytest.mark.parametrize("mnemonic", ["beq", "bne", "bltu", "bgeu", "blt", "bge"])
def test_refine_branch_prunes_only_infeasible(mnemonic):
    """Exhaustive check on a small box: None only when no pair satisfies."""
    for a_lo in range(4):
        for a_hi in range(a_lo, 4):
            for b_lo in range(4):
                for b_hi in range(b_lo, 4):
                    a, b = Interval(a_lo, a_hi), Interval(b_lo, b_hi)
                    for taken in (True, False):
                        feasible = any(
                            _branch_outcome(mnemonic, x, y) == taken
                            for x in range(a.lo, a.hi + 1)
                            for y in range(b.lo, b.hi + 1)
                        )
                        refined = refine_branch(mnemonic, taken, a, b)
                        if not feasible:
                            assert refined is None
                        else:
                            assert refined is not None


class TestComparisons:
    def test_compare_ltu(self):
        assert Interval(0, 3).compare_ltu(Interval(4, 9)) is True
        assert Interval(5, 9).compare_ltu(Interval(0, 5)) is False
        assert Interval(0, 5).compare_ltu(Interval(3, 9)) is None

    def test_compare_lt_signed(self):
        minus_one = Interval.const(-1)
        assert minus_one.compare_lt(Interval.const(0)) is True
        assert Interval.const(0).compare_lt(minus_one) is False
        assert TOP.compare_lt(Interval.const(0)) is None

    def test_compare_eq(self):
        assert Interval.const(3).compare_eq(Interval.const(3)) is True
        assert Interval(0, 2).compare_eq(Interval(5, 9)) is False
        assert Interval(0, 5).compare_eq(Interval(3, 9)) is None
