"""Tests for the unified attestation-scheme API and its three backends."""

import pytest

from repro.attestation import Prover, Verifier
from repro.attestation.protocol import AttestationChallenge
from repro.schemes.cflat import CFlatAttestation, CFlatCostModel
from repro.schemes.static import StaticAttestation
from repro.cpu.core import Cpu
from repro.schemes import (
    SCHEME_REGISTRY,
    AttestationScheme,
    DuplicateSchemeError,
    SchemeConfigError,
    SchemeNotFoundError,
    SchemeRegistry,
    VerdictReason,
    all_schemes,
    get_scheme,
    scheme_names,
)
from repro.workloads import get_workload


class TestRegistry:
    def test_first_class_backends_registered(self):
        assert scheme_names() == ["cflat", "lofat", "static"]
        assert all(isinstance(s, AttestationScheme) for s in all_schemes())

    def test_unknown_scheme_raises_keyerror(self):
        with pytest.raises(SchemeNotFoundError, match="unknown attestation scheme"):
            get_scheme("quantum")
        # SchemeNotFoundError is a KeyError so callers can catch either.
        with pytest.raises(KeyError):
            get_scheme("quantum")

    def test_duplicate_registration_rejected(self):
        registry = SchemeRegistry()

        class First(AttestationScheme):
            name = "dup"
            def configure(self, params=None): return None
            def open_session(self, program, config=None): raise NotImplementedError
            def cost_model(self, trace, config=None): raise NotImplementedError

        class Second(First):
            pass

        registry.register(First)
        with pytest.raises(DuplicateSchemeError, match="already registered"):
            registry.register(Second)
        # The process-wide registry rejects a re-registration of a builtin.
        with pytest.raises(DuplicateSchemeError):
            SCHEME_REGISTRY.register(type(get_scheme("lofat")))

    def test_nameless_scheme_rejected(self):
        registry = SchemeRegistry()

        class Nameless(AttestationScheme):
            def configure(self, params=None): return None
            def open_session(self, program, config=None): raise NotImplementedError
            def cost_model(self, trace, config=None): raise NotImplementedError

        with pytest.raises(Exception, match="declares no name"):
            registry.register(Nameless)

    def test_contains_and_len(self):
        assert "lofat" in SCHEME_REGISTRY
        assert "nope" not in SCHEME_REGISTRY
        assert len(SCHEME_REGISTRY) == 3


class TestConfiguration:
    def test_lofat_configure_validates(self):
        config = get_scheme("lofat").configure({"max_nested_loops": 5})
        assert config.max_nested_loops == 5
        with pytest.raises(SchemeConfigError):
            get_scheme("lofat").configure({"no_such_knob": 1})
        with pytest.raises(SchemeConfigError):
            get_scheme("lofat").configure({"counter_width_bits": 0})

    def test_cflat_configure_validates(self):
        model = get_scheme("cflat").configure({"world_switch_cycles": 0})
        assert model.world_switch_cycles == 0
        with pytest.raises(SchemeConfigError):
            get_scheme("cflat").configure({"world_switch_cycles": -1})
        with pytest.raises(SchemeConfigError):
            get_scheme("cflat").configure({"loop_event_discount": 2.0})
        with pytest.raises(SchemeConfigError):
            get_scheme("cflat").configure({"no_such_knob": 1})

    def test_static_rejects_any_parameter(self):
        get_scheme("static").configure({})
        with pytest.raises(SchemeConfigError, match="no parameters"):
            get_scheme("static").configure({"anything": 1})

    def test_config_digests_distinct_and_deterministic(self):
        # The three default configs serialise differently, so their digests
        # differ; cross-scheme separation in the measurement database comes
        # from the key's explicit scheme element, not from the digest.
        digests = {s.name: s.config_digest() for s in all_schemes()}
        assert len(set(digests.values())) == len(digests)
        assert get_scheme("lofat").config_digest() == \
               get_scheme("lofat").config_digest()

    def test_lofat_config_digest_matches_pre_scheme_format(self):
        """Persisted measurement databases from before the scheme redesign
        must keep hitting: the lofat digest material is unchanged."""
        import hashlib as _hashlib
        import json as _json
        from dataclasses import asdict as _asdict

        from repro.lofat.config import LoFatConfig
        legacy = _hashlib.sha3_256(
            _json.dumps(_asdict(LoFatConfig()), sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert get_scheme("lofat").config_digest(LoFatConfig()) == legacy


def _measure(scheme_name, workload_name="figure4_loop", inputs=None):
    workload = get_workload(workload_name)
    program = workload.build()
    scheme = get_scheme(scheme_name)
    session = scheme.open_session(program, scheme.default_config())
    cpu = Cpu(program, inputs=list(workload.inputs if inputs is None else inputs))
    cpu.attach_monitor(session.observe)
    result = cpu.run()
    return program, result, session.finalize()


class TestSessions:
    def test_lofat_session_matches_engine(self):
        from repro.lofat.engine import attest_execution
        program, _, measured = _measure("lofat", inputs=[4])
        _, direct = attest_execution(program, inputs=[4])
        assert measured.measurement == direct.measurement
        assert measured.metadata.to_bytes() == direct.metadata.to_bytes()

    def test_cflat_session_matches_trace_measurement(self):
        """The streaming session computes exactly measure_trace's hash."""
        program, result, measured = _measure("cflat")
        cflat = CFlatAttestation()
        assert measured.measurement == cflat.measure_trace(result.trace)
        assert measured.stats["control_flow_events"] == \
               result.trace.control_flow_events
        assert measured.stats["overhead_cycles"] == \
               CFlatCostModel().overhead_cycles(result.trace.control_flow_events)
        assert len(measured.metadata) == 0

    def test_static_session_matches_image_hash(self):
        program, _, measured = _measure("static")
        assert measured.measurement == StaticAttestation().measure(program).digest
        assert len(measured.measurement) == 32

    def test_reference_measurement_matches_session(self):
        for name in scheme_names():
            workload = get_workload("figure4_loop")
            program = workload.build()
            scheme = get_scheme(name)
            reference = scheme.reference_measurement(
                program, inputs=list(workload.inputs))
            _, _, measured = _measure(name)
            assert reference.measurement == measured.measurement, name
            assert reference.metadata.to_bytes() == \
                   measured.metadata.to_bytes(), name

    def test_sessions_finalize_idempotently(self):
        for name in ("cflat", "static"):
            _, _, measured = _measure(name)
            assert measured.measurement  # already finalised in _measure


class TestCostModels:
    def test_parallel_schemes_add_zero_cycles(self):
        _, result, _ = _measure("lofat")
        for name in ("lofat", "static"):
            cost = get_scheme(name).cost_model(result.trace)
            assert cost.overhead_cycles == 0
            assert cost.overhead_ratio == 0.0

    def test_cflat_cost_linear_in_events(self):
        _, few, _ = _measure("cflat", inputs=[2])
        _, many, _ = _measure("cflat", inputs=[40])
        scheme = get_scheme("cflat")
        cost_few = scheme.cost_model(few.trace)
        cost_many = scheme.cost_model(many.trace)
        assert cost_many.overhead_cycles > cost_few.overhead_cycles > 0
        per_event = CFlatCostModel().per_event_cycles
        assert cost_few.overhead_cycles == \
               few.trace.control_flow_events * per_event

    def test_cflat_loop_event_discount_takes_effect(self):
        """The discount knob must change the reported cost, both in the
        streaming session and in the trace-level cost model."""
        scheme = get_scheme("cflat")
        workload = get_workload("figure4_loop")
        program = workload.build()
        discounted_config = scheme.configure({"loop_event_discount": 1.0})

        _, result, full = _measure("cflat", inputs=[16])
        session = scheme.open_session(program, discounted_config)
        cpu = Cpu(program, inputs=[16])
        cpu.attach_monitor(session.observe)
        cpu.run()
        discounted = session.finalize()
        assert discounted.measurement == full.measurement  # same hash
        assert discounted.stats["loop_events"] > 0
        assert discounted.stats["overhead_cycles"] < \
               full.stats["overhead_cycles"]

        cost_full = scheme.cost_model(result.trace)
        cost_discounted = scheme.cost_model(result.trace, discounted_config)
        assert cost_discounted.overhead_cycles < cost_full.overhead_cycles


@pytest.fixture
def protocol_parts():
    workload = get_workload("auth_check")
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())
    return workload, program, prover, verifier


class TestSchemeProtocol:
    @pytest.mark.parametrize("scheme", ["lofat", "cflat", "static"])
    def test_end_to_end_accept(self, protocol_parts, scheme):
        workload, _, prover, verifier = protocol_parts
        challenge = verifier.challenge(workload.name, workload.inputs,
                                       scheme=scheme)
        report = prover.attest(challenge)
        assert report.scheme == scheme
        verdict = verifier.verify(report)
        assert verdict.accepted, (scheme, verdict.reason)

    @pytest.mark.parametrize("scheme", ["lofat", "cflat", "static"])
    def test_database_mode_per_scheme(self, protocol_parts, scheme):
        workload, _, prover, verifier = protocol_parts
        verifier.precompute_measurement(workload.name, workload.inputs,
                                        scheme=scheme)
        challenge = verifier.challenge(workload.name, workload.inputs,
                                       scheme=scheme)
        report = prover.attest(challenge)
        assert verifier.verify(report, mode="database").accepted

    def test_database_references_do_not_cross_schemes(self, protocol_parts):
        """A lofat reference must not satisfy a cflat lookup."""
        workload, _, prover, verifier = protocol_parts
        verifier.precompute_measurement(workload.name, workload.inputs,
                                        scheme="lofat")
        challenge = verifier.challenge(workload.name, workload.inputs,
                                       scheme="cflat")
        report = prover.attest(challenge)
        verdict = verifier.verify(report, mode="database")
        assert verdict.reason is VerdictReason.NO_REFERENCE

    def test_scheme_mismatch_fails_closed(self, protocol_parts):
        """A report answering with a different scheme than challenged must be
        rejected with SCHEME_MISMATCH, not crash or fall through."""
        workload, _, prover, verifier = protocol_parts
        challenge = verifier.challenge(workload.name, workload.inputs,
                                       scheme="lofat")
        report = prover.attest(challenge)
        report.scheme = "static"
        verdict = verifier.verify(report)
        assert not verdict.accepted
        assert verdict.reason is VerdictReason.SCHEME_MISMATCH

    def test_unknown_report_scheme_fails_closed(self, protocol_parts):
        workload, _, prover, verifier = protocol_parts
        challenge = verifier.challenge(workload.name, workload.inputs)
        report = prover.attest(challenge)
        report.scheme = "quantum"
        verdict = verifier.verify(report)
        assert not verdict.accepted
        assert verdict.reason is VerdictReason.SCHEME_MISMATCH

    def test_report_for_other_program_fails_closed(self):
        """A report answering a challenge on A with a (validly measured) run
        of B must be rejected: program_id is not covered by the signature,
        so the verifier binds it to the challenge explicitly."""
        auth = get_workload("auth_check")
        fig4 = get_workload("figure4_loop")
        programs = {w.name: w.build() for w in (auth, fig4)}
        prover = Prover(programs)
        verifier = Verifier()
        for name, program in programs.items():
            verifier.register_program(name, program)
        verifier.register_device_key("prover-0",
                                     prover.keystore.export_for_verifier())
        challenge = verifier.challenge(auth.name, auth.inputs)
        report = prover.attest(AttestationChallenge(
            program_id=fig4.name, inputs=tuple(fig4.inputs),
            nonce=challenge.nonce))
        verdict = verifier.verify(report)
        assert not verdict.accepted
        assert verdict.reason is VerdictReason.PROGRAM_MISMATCH

    def test_challenge_for_unknown_scheme_raises(self, protocol_parts):
        workload, _, _, verifier = protocol_parts
        with pytest.raises(KeyError):
            verifier.challenge(workload.name, workload.inputs, scheme="quantum")

    def test_cflat_detects_attack_static_does_not(self):
        """The paper's Figure 1 claim through the unified API: control-flow
        schemes reject the attacked run, static attestation cannot see it."""
        from repro.attacks import get_attack
        scenario = get_attack("auth_flag_flip")
        workload = get_workload(scenario.workload_name)
        program = workload.build()
        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key("prover-0",
                                     prover.keystore.export_for_verifier())
        prover.install_attack(scenario.prover_hook(program))
        verdicts = {}
        for scheme in ("lofat", "cflat", "static"):
            challenge = verifier.challenge(
                workload.name, scenario.challenge_inputs, scheme=scheme)
            verdicts[scheme] = verifier.verify(prover.attest(challenge))
        assert not verdicts["lofat"].accepted
        assert not verdicts["cflat"].accepted
        assert verdicts["static"].accepted
