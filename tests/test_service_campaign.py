"""Tests for campaign specification parsing, validation and expansion."""

import pickle

import pytest

from repro.lofat.config import LoFatConfig
from repro.service import (
    CampaignSpec,
    CampaignSpecError,
    ConfigVariant,
    WorkloadSelection,
    all_experiments,
    experiment_campaign,
    full_campaign,
)
from repro.workloads import get_workload


class TestSpecParsing:
    def test_bare_workload_names(self):
        spec = CampaignSpec.from_dict({
            "name": "demo", "workloads": ["crc32", "figure4_loop"],
        })
        assert [s.name for s in spec.workloads] == ["crc32", "figure4_loop"]
        assert spec.verify_mode == "database"
        assert spec.repeats == 1

    def test_workload_with_explicit_inputs(self):
        spec = CampaignSpec.from_dict({
            "name": "demo",
            "workloads": [{"name": "figure4_loop", "inputs": [7]}],
        })
        jobs = spec.expand()
        assert len(jobs) == 1
        assert jobs[0].inputs == (7,)

    def test_workload_with_input_sets(self):
        spec = CampaignSpec.from_dict({
            "name": "demo",
            "workloads": [{"name": "figure4_loop",
                           "input_sets": [[4], [8], None]}],
        })
        jobs = spec.expand()
        assert [job.inputs for job in jobs] == [
            (4,), (8,), tuple(get_workload("figure4_loop").inputs),
        ]

    def test_inputs_and_input_sets_are_mutually_exclusive(self):
        with pytest.raises(CampaignSpecError, match="not both"):
            CampaignSpec.from_dict({
                "name": "demo",
                "workloads": [{"name": "figure4_loop",
                               "inputs": [1], "input_sets": [[2]]}],
            })

    def test_config_variants_parsed(self):
        spec = CampaignSpec.from_dict({
            "name": "demo",
            "workloads": ["crc32"],
            "configs": [{"name": "wide", "lofat": {"max_nested_loops": 5}}],
        })
        job = spec.expand()[0]
        assert job.config_name == "wide"
        assert job.lofat_config().max_nested_loops == 5

    def test_json_roundtrip(self):
        spec = CampaignSpec(
            name="roundtrip",
            workloads=[WorkloadSelection("figure4_loop", input_sets=[[4], [8]])],
            configs=[ConfigVariant("deep", {"max_nested_loops": 4})],
            attacks=["syringe_overdose"],
            repeats=2,
            verify_mode="replay",
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert [j.job_id for j in restored.expand()] == \
               [j.job_id for j in spec.expand()]
        assert restored.verify_mode == "replay"

    def test_unknown_keys_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "workloads": ["crc32"],
                                    "worklods": []})

    def test_engine_defaults_to_none(self):
        spec = CampaignSpec.from_dict({"name": "demo", "workloads": ["crc32"]})
        assert spec.engine is None
        assert spec.to_dict()["engine"] is None

    def test_engine_roundtrips(self):
        spec = CampaignSpec.from_dict({
            "name": "demo", "workloads": ["crc32"], "engine": "compiled",
        })
        assert spec.engine == "compiled"
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored.engine == "compiled"
        restored.validate()

    @pytest.mark.parametrize("engine", ["legacy", "fast", "compiled"])
    def test_known_engines_validate(self, engine):
        spec = CampaignSpec.from_dict({
            "name": "demo", "workloads": ["crc32"], "engine": engine,
        })
        spec.validate()

    def test_unknown_engine_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown engine"):
            CampaignSpec.from_dict({
                "name": "demo", "workloads": ["crc32"], "engine": "turbo",
            }).validate()

    def test_invalid_json_rejected(self):
        with pytest.raises(CampaignSpecError, match="invalid campaign JSON"):
            CampaignSpec.from_json("{nope")


class TestSchemeSweep:
    def test_schemes_default_to_lofat(self):
        spec = CampaignSpec.from_dict({"name": "demo", "workloads": ["crc32"]})
        assert spec.schemes == ["lofat"]
        assert all(job.scheme == "lofat" for job in spec.expand())

    def test_scheme_sweep_multiplies_jobs(self):
        spec = CampaignSpec(name="demo",
                            workloads=[WorkloadSelection("crc32")],
                            schemes=["lofat", "cflat", "static"])
        jobs = spec.expand()
        assert len(jobs) == 3
        assert {job.scheme for job in jobs} == {"lofat", "cflat", "static"}
        assert len({job.job_id for job in jobs}) == 3

    def test_unknown_scheme_rejected(self):
        spec = CampaignSpec(name="demo", workloads=[WorkloadSelection("crc32")],
                            schemes=["quantum"])
        with pytest.raises(CampaignSpecError, match="unknown scheme"):
            spec.validate()

    def test_duplicate_scheme_rejected(self):
        spec = CampaignSpec(name="demo", workloads=[WorkloadSelection("crc32")],
                            schemes=["lofat", "lofat"])
        with pytest.raises(CampaignSpecError, match="duplicate scheme"):
            spec.validate()

    def test_empty_schemes_rejected(self):
        spec = CampaignSpec(name="demo", workloads=[WorkloadSelection("crc32")],
                            schemes=[])
        with pytest.raises(CampaignSpecError, match="no attestation schemes"):
            spec.validate()

    def test_per_scheme_config_params(self):
        spec = CampaignSpec.from_dict({
            "name": "demo",
            "workloads": ["crc32"],
            "schemes": ["lofat", "cflat"],
            "configs": [{"name": "tuned",
                         "lofat": {"max_nested_loops": 5},
                         "params": {"cflat": {"world_switch_cycles": 0}}}],
        })
        jobs = {job.scheme: job for job in spec.expand()}
        assert jobs["lofat"].lofat_config().max_nested_loops == 5
        assert jobs["cflat"].scheme_config().world_switch_cycles == 0
        assert jobs["cflat"].lofat_params == ()

    def test_invalid_per_scheme_params_rejected(self):
        spec = CampaignSpec(
            name="demo",
            workloads=[WorkloadSelection("crc32")],
            schemes=["static"],
            configs=[ConfigVariant("bad", scheme_params={"static": {"x": 1}})],
        )
        with pytest.raises(CampaignSpecError, match="not valid for scheme"):
            spec.validate()

    def test_scheme_spec_json_roundtrip(self):
        spec = CampaignSpec(
            name="matrix",
            workloads=[WorkloadSelection("figure4_loop")],
            schemes=["lofat", "cflat", "static"],
            attacks=["auth_flag_flip"],
        )
        restored = CampaignSpec.from_json(spec.to_json())
        assert restored.schemes == spec.schemes
        assert [j.job_id for j in restored.expand()] == \
               [j.job_id for j in spec.expand()]

    def test_expects_detection_is_scheme_aware(self):
        spec = CampaignSpec(name="demo", attacks=["auth_flag_flip"],
                            include_benign=False,
                            schemes=["lofat", "cflat", "static"])
        expectations = {job.scheme: job.expects_detection
                        for job in spec.expand()}
        assert expectations == {"lofat": True, "cflat": True, "static": False}


class TestSpecValidation:
    def test_unknown_workload(self):
        spec = CampaignSpec(name="x", workloads=[WorkloadSelection("nope")])
        with pytest.raises(CampaignSpecError, match="unknown workload"):
            spec.validate()

    def test_unknown_attack(self):
        spec = CampaignSpec(name="x", attacks=["nope"])
        with pytest.raises(CampaignSpecError, match="unknown attack"):
            spec.validate()

    def test_invalid_lofat_params(self):
        spec = CampaignSpec(
            name="x",
            workloads=[WorkloadSelection("crc32")],
            configs=[ConfigVariant("bad", {"counter_width_bits": 0})],
        )
        with pytest.raises(CampaignSpecError, match="not a valid LoFatConfig"):
            spec.validate()

    def test_unknown_lofat_field(self):
        spec = CampaignSpec(
            name="x",
            workloads=[WorkloadSelection("crc32")],
            configs=[ConfigVariant("bad", {"no_such_knob": 1})],
        )
        with pytest.raises(CampaignSpecError):
            spec.validate()

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignSpecError, match="no workloads and no attacks"):
            CampaignSpec(name="x").validate()

    def test_duplicate_config_names_rejected(self):
        spec = CampaignSpec(
            name="x",
            workloads=[WorkloadSelection("crc32")],
            configs=[ConfigVariant("same"), ConfigVariant("same")],
        )
        with pytest.raises(CampaignSpecError, match="duplicate config"):
            spec.validate()

    def test_bad_verify_mode(self):
        spec = CampaignSpec(name="x", workloads=[WorkloadSelection("crc32")],
                            verify_mode="psychic")
        with pytest.raises(CampaignSpecError, match="verify_mode"):
            spec.validate()


class TestExpansion:
    def test_cross_product_counts(self):
        spec = CampaignSpec(
            name="x",
            workloads=[WorkloadSelection("figure4_loop", input_sets=[[4], [8]]),
                       WorkloadSelection("crc32")],
            configs=[ConfigVariant("a"), ConfigVariant("b", {"max_nested_loops": 4})],
            attacks=["syringe_overdose"],
            repeats=2,
        )
        jobs = spec.expand()
        # (2 + 1 input sets) benign x 2 configs x 2 repeats
        # + 1 attack x 2 configs x 2 repeats
        assert len(jobs) == 3 * 2 * 2 + 1 * 2 * 2
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_attack_jobs_use_scenario_workload_and_inputs(self):
        from repro.attacks import get_attack
        spec = CampaignSpec(name="x", attacks=["syringe_overdose"],
                            include_benign=False)
        (job,) = spec.expand()
        scenario = get_attack("syringe_overdose")
        assert job.workload == scenario.workload_name
        assert job.inputs == tuple(scenario.challenge_inputs)
        assert job.expects_detection

    def test_benign_jobs_do_not_expect_detection(self):
        spec = CampaignSpec(name="x", workloads=[WorkloadSelection("crc32")])
        (job,) = spec.expand()
        assert not job.expects_detection

    def test_jobs_are_picklable_and_hashable(self):
        spec = CampaignSpec(
            name="x",
            workloads=[WorkloadSelection("crc32")],
            configs=[ConfigVariant("deep", {"max_nested_loops": 4})],
        )
        (job,) = spec.expand()
        assert pickle.loads(pickle.dumps(job)) == job
        assert isinstance(job.lofat_config(), LoFatConfig)
        {job}  # hashable


class TestPresets:
    @pytest.mark.parametrize("experiment", all_experiments())
    def test_preset_expands(self, experiment):
        spec = experiment_campaign(experiment)
        jobs = spec.expand()
        assert jobs, "preset %s expanded to no jobs" % experiment
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            experiment_campaign("e99")

    def test_full_campaign_covers_workloads_and_attacks(self):
        from repro.attacks import ATTACK_REGISTRY
        from repro.workloads import WORKLOAD_REGISTRY
        spec = full_campaign()
        jobs = spec.expand()
        benign_workloads = {j.workload for j in jobs if j.attack is None}
        assert benign_workloads == set(WORKLOAD_REGISTRY)
        assert {j.attack for j in jobs if j.attack} == set(ATTACK_REGISTRY)
        # Multiple swept configuration points ride along.
        assert len({j.config_name for j in jobs}) > 1
