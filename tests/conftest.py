"""Shared fixtures for the LO-FAT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cpu.core import Cpu
from repro.isa.assembler import assemble
from repro.lofat.engine import LoFatEngine
from repro.workloads import get_workload

#: A small counted loop: sums 0..4 and prints the result (10).
SIMPLE_LOOP_SOURCE = """
    .text
_start:
    li   a0, 5
    li   a1, 0
    li   t0, 0
loop:
    bge  t0, a0, done
    add  a1, a1, t0
    addi t0, t0, 1
    j    loop
done:
    mv   a0, a1
    li   a7, 1
    ecall
    li   a7, 93
    ecall
"""

#: A loop with an if/else inside (two distinct loop paths), like Figure 4.
TWO_PATH_LOOP_SOURCE = """
    .text
_start:
    li   a0, 6
    li   a1, 0
    li   t0, 0
loop:
    bge  t0, a0, done
    andi t1, t0, 1
    beqz t1, even
odd:
    addi a1, a1, 9
    j    next
even:
    addi a1, a1, 5
next:
    addi t0, t0, 1
    j    loop
done:
    mv   a0, a1
    li   a7, 1
    ecall
    li   a7, 93
    ecall
"""

#: A call/return pair plus straight-line code (no loops).
CALL_RETURN_SOURCE = """
    .text
_start:
    li   a0, 7
    call double
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall

double:
    slli a0, a0, 1
    ret
"""


@pytest.fixture
def simple_loop_program():
    """Assembled counted-loop program."""
    return assemble(SIMPLE_LOOP_SOURCE)


@pytest.fixture
def two_path_loop_program():
    """Assembled two-path loop program."""
    return assemble(TWO_PATH_LOOP_SOURCE)


@pytest.fixture
def call_return_program():
    """Assembled call/return program."""
    return assemble(CALL_RETURN_SOURCE)


def run_with_lofat(program, inputs=None, config=None):
    """Helper: run a program with a LO-FAT engine attached."""
    cpu = Cpu(program, inputs=list(inputs or []))
    engine = LoFatEngine(config)
    cpu.attach_monitor(engine.observe)
    result = cpu.run()
    return result, engine.finalize()


@pytest.fixture
def lofat_runner():
    """Fixture exposing the :func:`run_with_lofat` helper."""
    return run_with_lofat


@pytest.fixture
def figure4_workload():
    """The Figure 4 workload instance."""
    return get_workload("figure4_loop")


@pytest.fixture
def syringe_workload():
    """The syringe-pump workload instance."""
    return get_workload("syringe_pump")
