"""Unit tests for trace records and classification."""

import pytest

from repro.cpu.core import run_program
from repro.cpu.trace import BranchKind, ExecutionTrace, TraceRecord, classify_branch
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction


class TestClassifyBranch:
    def test_conditional(self):
        assert classify_branch(Instruction("bne", rs1=1, rs2=2, imm=-8)) is BranchKind.CONDITIONAL

    def test_direct_jump_and_call(self):
        assert classify_branch(Instruction("jal", rd=0, imm=8)) is BranchKind.DIRECT_JUMP
        assert classify_branch(Instruction("jal", rd=1, imm=8)) is BranchKind.DIRECT_CALL

    def test_indirect_jump_call_return(self):
        assert classify_branch(Instruction("jalr", rd=0, rs1=6)) is BranchKind.INDIRECT_JUMP
        assert classify_branch(Instruction("jalr", rd=1, rs1=6)) is BranchKind.INDIRECT_CALL
        assert classify_branch(Instruction("jalr", rd=0, rs1=1)) is BranchKind.RETURN

    def test_non_control_flow(self):
        assert classify_branch(Instruction("add", rd=1, rs1=2, rs2=3)) is BranchKind.NOT_CONTROL_FLOW

    def test_kind_properties(self):
        assert BranchKind.DIRECT_CALL.is_linking
        assert BranchKind.INDIRECT_CALL.is_linking
        assert not BranchKind.DIRECT_JUMP.is_linking
        assert BranchKind.RETURN.is_indirect
        assert not BranchKind.CONDITIONAL.is_indirect
        assert not BranchKind.NOT_CONTROL_FLOW.is_control_flow


class TestTraceRecord:
    def _record(self, **overrides):
        defaults = dict(
            index=0, cycle=1, pc=0x100, word=0,
            instruction=Instruction("beq", rs1=0, rs2=0, imm=-16, address=0x100),
            next_pc=0xF0, kind=BranchKind.CONDITIONAL, taken=True,
        )
        defaults.update(overrides)
        return TraceRecord(**defaults)

    def test_src_dest_pair(self):
        record = self._record()
        assert record.src_dest == (0x100, 0xF0)

    def test_backward_detection(self):
        assert self._record().is_backward
        assert not self._record(next_pc=0x104, taken=True).is_backward
        assert not self._record(taken=False).is_backward

    def test_is_control_flow(self):
        assert self._record().is_control_flow
        plain = self._record(kind=BranchKind.NOT_CONTROL_FLOW, taken=False)
        assert not plain.is_control_flow


class TestExecutionTrace:
    def test_summary_counts(self, simple_loop_program):
        result = run_program(simple_loop_program)
        summary = result.trace.summary()
        assert summary["instructions"] == result.instructions
        assert summary["cycles"] == result.cycles
        assert summary["control_flow_events"] == result.trace.control_flow_events
        assert summary["by_kind"]["conditional"] == 6

    def test_executed_edges_are_control_flow_only(self, simple_loop_program):
        result = run_program(simple_loop_program)
        edges = result.trace.executed_edges
        assert len(edges) == result.trace.control_flow_events
        assert all(isinstance(edge, tuple) and len(edge) == 2 for edge in edges)

    def test_taken_events_subset(self, simple_loop_program):
        trace = run_program(simple_loop_program).trace
        assert trace.taken_control_flow_events <= trace.control_flow_events

    def test_indexing_and_iteration(self, simple_loop_program):
        trace = run_program(simple_loop_program).trace
        assert trace[0].index == 0
        assert len(list(iter(trace))) == len(trace)

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.cycles == 0
        assert trace.control_flow_events == 0
        assert trace.summary()["instructions"] == 0
