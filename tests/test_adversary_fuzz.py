"""Trust-boundary fuzzing: tracefile blobs and wire frames fail closed.

The property (checked per mutation): every byte string either parses and
re-serialises byte-identically, or raises the surface's documented error
family -- never an uncaught exception, never a silent wrong parse.  The
checked-in regression corpus replays previously-interesting mutants with no
randomness; the seeded fuzzers add fresh mutation streams on top
(``REPRO_FUZZ_EXAMPLES`` scales them for deep opt-in runs).
"""

import io
import os

import pytest

from repro.adversary.fuzz import (
    DEFAULT_EXAMPLES,
    build_regression_corpus,
    check_corpus_entry,
    fuzz_framing,
    fuzz_tracefile,
    load_corpus,
)
from repro.adversary.seeds import ENV_FUZZ_EXAMPLES, resolve_fuzz_examples
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.trace import ControlFlowTrace
from repro.cpu.tracefile import (
    TraceFormatError,
    dumps_trace,
    loads_trace,
)
from repro.isa.assembler import assemble

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "adversary_corpus")

SEED = 4242


def _v2_blob():
    program = assemble("""
        .text
    _start:
        li   s0, 2
    loop:
        addi s0, s0, -1
        bnez s0, loop
        li   a0, 0
        li   a7, 93
        ecall
    """)
    result = Cpu(program, config=CpuConfig(max_instructions=1000)).run()
    return dumps_trace(ControlFlowTrace.from_trace(result.trace))


class TestFuzzExamplesEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_FUZZ_EXAMPLES, raising=False)
        assert resolve_fuzz_examples(1000) == 1000

    def test_env_scales(self, monkeypatch):
        monkeypatch.setenv(ENV_FUZZ_EXAMPLES, "50")
        assert resolve_fuzz_examples(1000) == 50

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_FUZZ_EXAMPLES, "many")
        with pytest.raises(ValueError):
            resolve_fuzz_examples(1000)

    def test_nonpositive_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_FUZZ_EXAMPLES, "0")
        with pytest.raises(ValueError):
            resolve_fuzz_examples(1000)


class TestFuzzers:
    """The acceptance floor runs in tier-1: >= 1000 mutations per surface."""

    def test_tracefile_surface_fails_closed(self):
        report = fuzz_tracefile(seed=SEED)
        assert report.iterations >= 1000 or os.environ.get(ENV_FUZZ_EXAMPLES)
        assert report.ok, "\n".join(
            "%s #%d: %s (blob %s)" % (
                f.surface, f.iteration, f.description, f.blob_hex
            )
            for f in report.failures
        )
        assert report.outcomes.get("reject", 0) > 0
        assert report.outcomes.get("roundtrip", 0) > 0

    def test_framing_surface_fails_closed(self):
        report = fuzz_framing(seed=SEED)
        assert report.iterations >= 1000 or os.environ.get(ENV_FUZZ_EXAMPLES)
        assert report.ok, "\n".join(
            "%s #%d: %s (blob %s)" % (
                f.surface, f.iteration, f.description, f.blob_hex
            )
            for f in report.failures
        )
        assert report.outcomes.get("reject", 0) > 0
        assert report.outcomes.get("roundtrip", 0) > 0

    def test_fuzzing_is_deterministic_in_seed(self):
        first = fuzz_tracefile(seed=SEED, iterations=200)
        second = fuzz_tracefile(seed=SEED, iterations=200)
        assert first.outcomes == second.outcomes

    def test_report_summary_line_mentions_seed(self):
        report = fuzz_framing(seed=SEED, iterations=50)
        assert "seed=%d" % SEED in report.summary_line()

    def test_explicit_iterations_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FUZZ_EXAMPLES, "5")
        report = fuzz_framing(seed=SEED, iterations=25)
        assert report.iterations == 25
        monkeypatch.delenv(ENV_FUZZ_EXAMPLES)
        assert fuzz_framing(seed=SEED, iterations=None).iterations == \
            DEFAULT_EXAMPLES


class TestRegressionCorpus:
    """Satellite: previously-interesting mutants, replayed with no randomness."""

    def test_checked_in_corpus_matches_builder(self):
        built = {entry.name: entry for entry in build_regression_corpus()}
        loaded = {entry.name: entry for entry in load_corpus(CORPUS_DIR)}
        assert set(built) == set(loaded), (
            "corpus drift: regenerate with "
            "repro.adversary.fuzz.write_corpus('tests/data/adversary_corpus')"
        )
        for name, entry in built.items():
            assert loaded[name].blob == entry.blob, "blob drift in %s" % name
            assert loaded[name].expected == entry.expected
            assert loaded[name].surface == entry.surface

    def test_corpus_replays_clean(self):
        problems = [
            problem
            for problem in (
                check_corpus_entry(entry) for entry in load_corpus(CORPUS_DIR)
            )
            if problem
        ]
        assert problems == []

    def test_corpus_covers_both_surfaces_and_outcomes(self):
        entries = load_corpus(CORPUS_DIR)
        combos = {(entry.surface, entry.expected) for entry in entries}
        assert combos == {
            ("tracefile", "reject"), ("tracefile", "roundtrip"),
            ("framing", "reject"), ("framing", "roundtrip"),
        }


class TestTracefileHardening:
    """Unit pins for the parser hardening the fuzzer exercises statistically."""

    def test_taken_byte_must_be_boolean(self):
        blob = bytearray(_v2_blob())
        blob[-1] = 2  # last record's taken byte
        with pytest.raises(TraceFormatError, match="taken"):
            loads_trace(bytes(blob))

    def test_undefined_flag_bits_rejected(self):
        blob = bytearray(_v2_blob())
        blob[10] |= 0x80  # v2 flags byte, directly after the header
        with pytest.raises(TraceFormatError, match="flag"):
            loads_trace(bytes(blob))

    def test_trailing_bytes_rejected_by_loads(self):
        blob = _v2_blob()
        with pytest.raises(TraceFormatError, match="trailing"):
            loads_trace(blob + b"\x00")

    def test_stream_reader_still_allows_embedding(self):
        # load_trace (stream form) must keep stopping at the end of the
        # trace so a blob can be embedded in a larger stream.
        from repro.cpu.tracefile import load_trace

        blob = _v2_blob()
        stream = io.BytesIO(blob + b"extra")
        trace = load_trace(stream)
        assert stream.read() == b"extra"
        assert dumps_trace(trace) == blob

    def test_noncf_record_in_v2_rejected(self):
        blob = bytearray(_v2_blob())
        record0 = 4 + 2 + 4 + 17  # header + v2 counters
        blob[record0 + 20] = 0  # kind byte -> NOT_CONTROL_FLOW
        with pytest.raises(TraceFormatError, match="non-control-flow"):
            loads_trace(bytes(blob))

    def test_undecodable_word_wrapped_as_format_error(self):
        blob = bytearray(_v2_blob())
        record0 = 27
        blob[record0 + 12:record0 + 16] = b"\x00\x00\x00\x00"
        with pytest.raises(TraceFormatError, match="undecodable"):
            loads_trace(bytes(blob))

    def test_huge_instruction_count_round_trips(self):
        # Fuzzer-found: u64 counts with the top bit set parsed but could not
        # re-serialise (len() cannot return them).
        blob = bytearray(_v2_blob())
        blob[11:19] = (2 ** 63 + 17).to_bytes(8, "little")
        restored = loads_trace(bytes(blob))
        assert restored.instructions == 2 ** 63 + 17
        assert dumps_trace(restored) == bytes(blob)
