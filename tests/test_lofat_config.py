"""Unit tests for the LO-FAT configuration and its sizing formulas."""

import pytest

from repro.lofat.config import LoFatConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = LoFatConfig()
        assert config.indirect_target_bits == 4
        assert config.max_branches_per_path == 16
        assert config.max_nested_loops == 3
        assert config.branch_tracking_latency == 2
        assert config.loop_exit_latency == 5
        assert config.clock_mhz == 80.0
        assert config.hash_engine_max_clock_mhz == 150.0

    def test_max_indirect_targets(self):
        """n bits allow 2^n - 1 targets; the all-zero code means overflow."""
        assert LoFatConfig(indirect_target_bits=4).max_indirect_targets_per_loop == 15
        assert LoFatConfig(indirect_target_bits=2).max_indirect_targets_per_loop == 3

    def test_loop_memory_formula(self):
        """Paper §5.2: tracking l branches per path costs 8 * 2^l bits."""
        config = LoFatConfig()
        assert config.loop_memory_bits == 8 * (1 << 16)
        assert config.total_loop_memory_bits == 3 * 8 * (1 << 16)
        # 1.5 Mbit for the default configuration, as stated in the paper.
        assert config.total_loop_memory_bits == 1536 * 1024

    def test_conditional_branch_budget(self):
        """Each indirect branch consumes n bits of the path ID."""
        config = LoFatConfig()
        assert config.max_conditional_branches_per_path == 16 - 4 * 4

    def test_absorbs_per_block(self):
        """576-bit rate / 64-bit input = 9 absorbs before the pad stall."""
        assert LoFatConfig().absorbs_per_block == 9

    def test_describe_contains_key_fields(self):
        info = LoFatConfig().describe()
        assert info["loop_memory_bits"] == 8 * (1 << 16)
        assert info["clock_mhz"] == 80.0


class TestValidation:
    def test_invalid_indirect_bits(self):
        with pytest.raises(ValueError):
            LoFatConfig(indirect_target_bits=0)

    def test_invalid_path_bits(self):
        with pytest.raises(ValueError):
            LoFatConfig(max_branches_per_path=0)

    def test_invalid_counter_width(self):
        with pytest.raises(ValueError):
            LoFatConfig(counter_width_bits=0)

    def test_indirect_budget_must_fit_path_id(self):
        with pytest.raises(ValueError):
            LoFatConfig(max_branches_per_path=8, max_indirect_branches_per_path=4,
                        indirect_target_bits=4)

    def test_hash_rate_must_be_multiple_of_input(self):
        with pytest.raises(ValueError):
            LoFatConfig(hash_rate_bits=100)

    def test_negative_nesting_rejected(self):
        with pytest.raises(ValueError):
            LoFatConfig(max_nested_loops=-1)

    def test_smaller_configurations_are_allowed(self):
        config = LoFatConfig(max_branches_per_path=8, indirect_target_bits=2,
                             max_indirect_branches_per_path=2, max_nested_loops=1)
        assert config.loop_memory_bits == 8 * 256
