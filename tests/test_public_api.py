"""Tests for the package-level public API."""

import pytest

import repro
from repro import attest_workload, all_workloads, get_workload
from repro.lofat import LoFatConfig


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_attest_workload_defaults(self):
        result, measurement = attest_workload("figure4_loop")
        assert result.exit_code == 0
        assert len(measurement.measurement) == 64
        assert len(measurement.metadata) == 1

    def test_attest_workload_with_custom_inputs(self):
        from repro.workloads.figure4 import reference_output

        result, _ = attest_workload("figure4_loop", inputs=[3])
        assert result.output == reference_output([3])
        result2, _ = attest_workload("figure4_loop", inputs=[5])
        assert result2.output == reference_output([5])
        assert result.output != result2.output

    def test_attest_workload_with_custom_config(self):
        _, plain = attest_workload("crc32")
        _, untracked = attest_workload("crc32", config=LoFatConfig(max_nested_loops=0))
        assert untracked.stats["pairs_hashed"] > plain.stats["pairs_hashed"]
        assert len(untracked.metadata) == 0

    def test_attest_workload_unknown_name(self):
        with pytest.raises(KeyError):
            attest_workload("does-not-exist")

    def test_all_workloads_count(self):
        assert len(all_workloads()) >= 14
