"""Tests for the workload suite: functional correctness and structure."""

import pytest

from repro.cpu.core import run_program
from repro.workloads import all_workloads, get_workload, WORKLOAD_REGISTRY
from repro.workloads.crc import reference_crc
from repro.workloads.generator import SyntheticWorkloadGenerator, density_sweep
from repro.workloads.matrix import reference_output as matmul_reference
from repro.workloads.recursion import reference_fib
from repro.workloads.search import TABLE
from repro.workloads.sorting import reference_output as sort_reference
from repro.workloads.syringe_pump import reference_output as pump_reference

ALL_NAMES = sorted(WORKLOAD_REGISTRY)


class TestRegistry:
    def test_expected_workloads_present(self):
        expected = {
            "syringe_pump", "bubble_sort", "crc32", "matmul", "binary_search",
            "fir_filter", "fibonacci", "dispatcher", "auth_check", "string_ops",
            "vulnerable_process", "figure4_loop",
        }
        assert expected <= set(ALL_NAMES)

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("not-a-workload")

    def test_all_workloads_instantiates_everything(self):
        workloads = all_workloads()
        assert len(workloads) == len(ALL_NAMES)
        assert [w.name for w in workloads] == ALL_NAMES

    def test_with_inputs_copy(self):
        workload = get_workload("figure4_loop")
        other = workload.with_inputs([9])
        assert other.inputs == [9]
        assert workload.inputs != [9] or workload.inputs == [9]
        assert other.source == workload.source


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_workload_produces_expected_output(self, name):
        workload = get_workload(name)
        result = run_program(workload.build(), inputs=list(workload.inputs))
        assert result.exit_code == 0
        if workload.expected_output is not None:
            assert result.output == workload.expected_output

    def test_bubble_sort_various_inputs(self):
        workload = get_workload("bubble_sort")
        for values in ([3, 1, 2], [5, 5, 5], [9, 8, 7, 6, 5, 4]):
            inputs = [len(values)] + values
            result = run_program(workload.build(), inputs=inputs)
            assert result.output == sort_reference(inputs)

    def test_syringe_pump_command_sequences(self):
        workload = get_workload("syringe_pump")
        for inputs in ([1, 3, 0], [2, 4, 0], [1, 2, 2, 1, 1, 6, 0], [5, 0]):
            result = run_program(workload.build(), inputs=inputs)
            assert result.output == pump_reference(inputs)

    def test_crc32_reference_model(self):
        workload = get_workload("crc32")
        inputs = [2, 0x01020304, 0xAABBCCDD]
        result = run_program(workload.build(), inputs=inputs)
        expected = reference_crc(inputs[1:])
        signed = expected - 0x100000000 if expected >= 0x80000000 else expected
        assert result.output == str(signed)

    def test_fibonacci_values(self):
        workload = get_workload("fibonacci")
        for n in (0, 1, 2, 7, 12):
            result = run_program(workload.build(), inputs=[n])
            assert result.output == str(reference_fib(n))

    def test_binary_search_miss_and_hit(self):
        workload = get_workload("binary_search")
        inputs = [3, TABLE[0], TABLE[-1], 1000]
        result = run_program(workload.build(), inputs=inputs)
        assert result.output == "0 %d -1 " % (len(TABLE) - 1)

    def test_matmul_matches_reference(self):
        workload = get_workload("matmul")
        result = run_program(workload.build())
        assert result.output == matmul_reference()

    def test_dispatcher_ignores_invalid_commands(self):
        workload = get_workload("dispatcher")
        result = run_program(workload.build(), inputs=[9, 7, 1, 0])
        assert result.output == "10"

    def test_auth_check_accepts_correct_password(self):
        workload = get_workload("auth_check")
        result = run_program(workload.build(), inputs=[4242])
        assert result.output == "777"

    def test_workloads_have_descriptions_and_tags(self):
        for workload in all_workloads():
            assert workload.description
            assert workload.tags


class TestSyntheticGenerator:
    def test_generated_program_matches_reference(self):
        generator = SyntheticWorkloadGenerator(branches_per_iteration=6,
                                               filler_per_branch=1, iterations=15)
        workload = generator.workload()
        result = run_program(workload.build())
        assert result.output == workload.expected_output

    def test_nested_variant(self):
        generator = SyntheticWorkloadGenerator(iterations=5, nested=True)
        workload = generator.workload()
        result = run_program(workload.build())
        assert result.output == workload.expected_output

    def test_seed_changes_behaviour(self):
        a = SyntheticWorkloadGenerator(seed=1, iterations=10).workload()
        b = SyntheticWorkloadGenerator(seed=2, iterations=10).workload()
        assert a.expected_output != b.expected_output

    def test_branch_density_scales_with_filler(self):
        dense_wl = SyntheticWorkloadGenerator(filler_per_branch=0, iterations=10).workload()
        sparse_wl = SyntheticWorkloadGenerator(filler_per_branch=8, iterations=10).workload()
        dense = run_program(dense_wl.build())
        sparse = run_program(sparse_wl.build())
        dense_density = dense.trace.control_flow_events / dense.instructions
        sparse_density = sparse.trace.control_flow_events / sparse.instructions
        assert dense_density > sparse_density

    def test_density_sweep_helper(self):
        workloads = density_sweep([0, 4], iterations=5)
        assert len(workloads) == 2
        assert workloads[0].name != workloads[1].name
        for workload in workloads:
            result = run_program(workload.build())
            assert result.output == workload.expected_output

    def test_generator_name_encodes_parameters(self):
        generator = SyntheticWorkloadGenerator(branches_per_iteration=3,
                                               filler_per_branch=2, iterations=7,
                                               nested=True)
        assert generator.name == "synthetic_b3_f2_i7_nested"
