"""Static attack classification must agree with the execution oracle.

For candidates the static vetting claims to decide — PROVEN_DIVERGENT
redirects and PROVEN_INVISIBLE data-only corruptions — the claim is checked
against actual attacked runs under every scheme: a proven-divergent
redirect must change the (A, L) report key of every runtime scheme, and a
proven-invisible corruption must leave the key and the program output of
every scheme bit-identical.  This is the acceptance gate for replacing
execution-based vetting with static classification.
"""

import pytest

from repro.attacks.injector import ControlFlowRedirect, MemoryCorruption
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.exceptions import CpuError
from repro.dataflow import analyze_program
from repro.dataflow.attackvet import (
    PROVEN_DIVERGENT,
    PROVEN_INVISIBLE,
    UNKNOWN,
    classify_data_only,
    classify_redirect,
    predicted_detection,
)
from repro.schemes import get_scheme, scheme_names
from repro.workloads import get_workload

WORKLOADS = ("syringe_pump", "vulnerable_process")
RUNTIME_SCHEMES = ("lofat", "cflat")
FUEL = 400_000


def _measured_run(scheme_name, program, inputs, corruptions=()):
    """One bounded run under a scheme; None when the candidate crashes."""
    scheme = get_scheme(scheme_name)
    cpu = Cpu(
        program,
        inputs=list(inputs),
        config=CpuConfig(collect_trace=False, max_instructions=FUEL),
    )
    session = scheme.open_session(program)
    cpu.attach_monitor(session.observe)
    for corruption in corruptions:
        corruption.install(cpu)
    try:
        result = cpu.run()
    except CpuError:
        return None
    measurement = session.finalize()
    return result, (measurement.measurement, measurement.metadata.to_bytes())


def _setup(workload_name):
    workload = get_workload(workload_name)
    program = workload.build()
    analysis = analyze_program(program)
    profile = Cpu(
        program,
        inputs=list(workload.inputs),
        config=CpuConfig(max_instructions=FUEL),
    ).run()
    executed_pcs = sorted({r.pc for r in profile.trace.records})
    return workload, program, analysis, executed_pcs


def _divergent_redirects(analysis, executed_pcs, limit):
    """First ``limit`` statically proven-divergent (trigger, target) pairs."""
    block_starts = sorted(b.start for b in analysis.cfg.blocks)
    picked = []
    for trigger in executed_pcs:
        for target in block_starts:
            if target == trigger:
                continue
            verdict = classify_redirect(analysis, trigger, target)
            if verdict == PROVEN_DIVERGENT:
                picked.append((trigger, target))
                break
        if len(picked) >= limit:
            break
    return picked


def _invisible_address(program, analysis):
    """A word in the data region the analyzer proves no load observes."""
    size = CpuConfig().data_region_size
    for offset in range(size - 4, -1, -64):
        address = program.data_base + offset
        if classify_data_only(analysis, address, 4) == PROVEN_INVISIBLE:
            return address
    return None


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_proven_divergent_redirects_change_every_runtime_key(workload_name):
    workload, program, analysis, executed_pcs = _setup(workload_name)
    candidates = _divergent_redirects(analysis, executed_pcs, limit=4)
    assert candidates, "no statically decidable redirect found"

    agreed = 0
    for trigger, target in candidates:
        for scheme_name in RUNTIME_SCHEMES:
            benign = _measured_run(scheme_name, program, workload.inputs)
            assert benign is not None
            redirect = ControlFlowRedirect(trigger_pc=trigger, target=target)
            attacked = _measured_run(
                scheme_name, program, workload.inputs, [redirect])
            if attacked is None or not redirect.fired:
                continue  # crashed or never reached: oracle is silent
            assert attacked[1] != benign[1], (
                "%s: redirect 0x%x->0x%x proven divergent but %s key "
                "unchanged" % (workload_name, trigger, target, scheme_name)
            )
            assert predicted_detection(scheme_name, PROVEN_DIVERGENT) is True
            agreed += 1
    assert agreed, "no proven-divergent candidate could be executed"


@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_proven_invisible_corruption_leaves_every_key_unchanged(workload_name):
    workload, program, analysis, executed_pcs = _setup(workload_name)
    address = _invisible_address(program, analysis)
    assert address is not None, "no provably unobserved data word found"
    trigger = executed_pcs[len(executed_pcs) // 2]

    for scheme_name in scheme_names():
        benign = _measured_run(scheme_name, program, workload.inputs)
        assert benign is not None
        corruption = MemoryCorruption(
            trigger_pc=trigger, address=address, value=0xDEADBEEF)
        attacked = _measured_run(
            scheme_name, program, workload.inputs, [corruption])
        assert attacked is not None
        assert corruption.fired
        assert attacked[1] == benign[1], (
            "%s: corruption at 0x%x proven invisible but %s key changed"
            % (workload_name, address, scheme_name)
        )
        assert attacked[0].output == benign[0].output
        assert predicted_detection(scheme_name, PROVEN_INVISIBLE) is False


def test_static_scheme_never_detects_runtime_attacks():
    """The static scheme's measurement ignores the run entirely."""
    workload, program, analysis, executed_pcs = _setup("syringe_pump")
    candidates = _divergent_redirects(analysis, executed_pcs, limit=1)
    assert candidates
    trigger, target = candidates[0]
    benign = _measured_run("static", program, workload.inputs)
    redirect = ControlFlowRedirect(trigger_pc=trigger, target=target)
    attacked = _measured_run("static", program, workload.inputs, [redirect])
    if attacked is not None and redirect.fired:
        assert attacked[1] == benign[1]
    assert predicted_detection("static", PROVEN_DIVERGENT) is False
    assert predicted_detection("static", UNKNOWN) is False


def test_predicted_detection_semantics():
    assert predicted_detection("lofat", PROVEN_DIVERGENT) is True
    assert predicted_detection("cflat", PROVEN_DIVERGENT) is True
    assert predicted_detection("lofat", PROVEN_INVISIBLE) is False
    assert predicted_detection("static", PROVEN_INVISIBLE) is False
    assert predicted_detection("lofat", UNKNOWN) is None
    assert predicted_detection("cflat", UNKNOWN) is None
