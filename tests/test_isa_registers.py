"""Unit tests for the register file and ABI naming."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    RegisterFile,
    is_link_register,
    register_name,
    register_number,
    to_signed,
    to_unsigned,
)


class TestRegisterNaming:
    def test_abi_names_count(self):
        assert len(ABI_NAMES) == NUM_REGISTERS == 32

    def test_architectural_names_resolve(self):
        for number in range(32):
            assert register_number("x%d" % number) == number

    def test_abi_names_resolve(self):
        assert register_number("zero") == 0
        assert register_number("ra") == 1
        assert register_number("sp") == 2
        assert register_number("a0") == 10
        assert register_number("t6") == 31

    def test_fp_alias(self):
        assert register_number("fp") == register_number("s0") == 8

    def test_case_insensitive(self):
        assert register_number("A0") == 10
        assert register_number(" SP ") == 2

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            register_number("q7")

    def test_register_name_roundtrip(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    def test_register_name_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)
        with pytest.raises(ValueError):
            register_name(-1)

    def test_link_registers(self):
        assert is_link_register(register_number("ra"))
        assert is_link_register(register_number("t0"))
        assert not is_link_register(register_number("a0"))
        assert not is_link_register(0)


class TestSignConversion:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF

    def test_to_signed_negative(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x80000000) == -(1 << 31)

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(1 << 32) == 0

    def test_roundtrip(self):
        for value in (-1, 0, 1, 0x7FFFFFFF, -(1 << 31)):
            assert to_signed(to_unsigned(value)) == value


class TestRegisterFile:
    def test_initial_state_is_zero(self):
        regs = RegisterFile()
        assert all(value == 0 for value in regs.snapshot())

    def test_write_and_read(self):
        regs = RegisterFile()
        regs.write(5, 1234)
        assert regs.read(5) == 1234

    def test_x0_is_hardwired_to_zero(self):
        regs = RegisterFile()
        regs.write(0, 999)
        assert regs.read(0) == 0

    def test_values_truncated_to_32_bits(self):
        regs = RegisterFile()
        regs.write(3, 1 << 35)
        assert regs.read(3) == 0

    def test_read_signed(self):
        regs = RegisterFile()
        regs.write(4, 0xFFFFFFFE)
        assert regs.read_signed(4) == -2

    def test_name_indexing(self):
        regs = RegisterFile()
        regs["a0"] = 77
        assert regs["a0"] == 77
        assert regs[10] == 77

    def test_out_of_range_access_raises(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.read(32)
        with pytest.raises(ValueError):
            regs.write(-1, 0)

    def test_initial_values_constructor(self):
        regs = RegisterFile([0, 11, 22])
        assert regs.read(0) == 0
        assert regs.read(1) == 11
        assert regs.read(2) == 22

    def test_too_many_initial_values(self):
        with pytest.raises(ValueError):
            RegisterFile(range(33))

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        snap[5] = 99
        assert regs.read(5) == 0
