"""Unit tests for CFG construction."""

import pytest

from repro.cfg.builder import EdgeKind, build_cfg
from repro.cpu.core import run_program
from repro.isa.assembler import assemble
from repro.workloads import get_workload


class TestCfgConstruction:
    def test_conditional_branch_has_two_successors(self):
        program = assemble("""
        _start:
            beq a0, a1, yes
            addi a0, a0, 1
            j end
        yes:
            addi a0, a0, 2
        end:
            nop
        """)
        cfg = build_cfg(program)
        entry = cfg.entry_block
        kinds = {edge.kind for edge in cfg.successors(entry.start)}
        assert kinds == {EdgeKind.BRANCH_TAKEN, EdgeKind.FALLTHROUGH}

    def test_fallthrough_edge(self):
        program = assemble("""
        _start:
            addi a0, a0, 1
        next:
            addi a0, a0, 2
        """)
        cfg = build_cfg(program)
        # "next" is a leader because it has a label/symbol.
        edges = cfg.successors(cfg.entry_block.start)
        assert any(edge.kind is EdgeKind.FALLTHROUGH for edge in edges)

    def test_call_edge_and_function_entries(self, call_return_program):
        cfg = build_cfg(call_return_program)
        call_edges = [edge for edge in cfg.edges if edge.kind is EdgeKind.CALL]
        assert len(call_edges) == 1
        assert call_return_program.symbols["double"] in cfg.function_entries()

    def test_return_edges_point_to_call_continuations(self, call_return_program):
        cfg = build_cfg(call_return_program)
        return_edges = [edge for edge in cfg.edges if edge.kind is EdgeKind.RETURN]
        assert return_edges, "expected at least one return edge"
        # The continuation is the instruction after the call site.
        call_edge = next(edge for edge in cfg.edges if edge.kind is EdgeKind.CALL)
        caller_block = cfg.block_starting_at(call_edge.src)
        continuation = cfg.block_containing(caller_block.end)
        assert any(edge.dst == continuation.start for edge in return_edges)

    def test_indirect_call_edges_cover_function_entries(self):
        workload = get_workload("dispatcher")
        program = workload.build()
        cfg = build_cfg(program)
        indirect = [edge for edge in cfg.edges if edge.kind is EdgeKind.INDIRECT]
        assert indirect, "dispatcher must produce indirect edges"
        targets = {edge.dst for edge in indirect}
        assert program.symbols["handler_status"] in targets

    def test_block_containing_lookup(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        for instr in simple_loop_program.instructions:
            block = cfg.block_containing(instr.address)
            assert block is not None
            assert block.contains(instr.address)
        assert cfg.block_containing(0xDEAD0000) is None

    def test_predecessors_are_consistent_with_successors(self, two_path_loop_program):
        cfg = build_cfg(two_path_loop_program)
        for edge in cfg.edges:
            assert edge in cfg.successors(edge.src)
            assert edge in cfg.predecessors(edge.dst)

    def test_edge_deduplication(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        assert len(cfg.edges) == len(set(cfg.edges))

    def test_summary_and_dot_render(self, simple_loop_program):
        cfg = build_cfg(simple_loop_program)
        summary = cfg.summary()
        assert summary["blocks"] == len(cfg.blocks)
        assert summary["edges"] == len(cfg.edges)
        dot = cfg.to_dot()
        assert dot.startswith("digraph") and "->" in dot


class TestCfgCoversExecution:
    """Every executed transfer must be explainable by the static CFG."""

    @pytest.mark.parametrize("workload_name", [
        "figure4_loop", "bubble_sort", "binary_search", "syringe_pump",
        "fibonacci", "dispatcher", "string_ops",
    ])
    def test_executed_block_transitions_are_cfg_edges(self, workload_name):
        workload = get_workload(workload_name)
        program = workload.build()
        cfg = build_cfg(program)
        result = run_program(program, inputs=list(workload.inputs))
        edge_set = cfg.edge_set()
        for record in result.trace.control_flow_records:
            if not record.taken:
                continue
            src_block = cfg.block_containing(record.pc)
            dst_block = cfg.block_containing(record.next_pc)
            assert src_block is not None and dst_block is not None
            assert (src_block.start, dst_block.start) in edge_set, (
                "executed edge %#x -> %#x missing from CFG" % (record.pc, record.next_pc)
            )
