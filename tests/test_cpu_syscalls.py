"""Unit tests for the syscall environment."""

import pytest

from repro.cpu.core import run_program
from repro.cpu.memory import Memory, MemoryRegion, Permissions
from repro.cpu.syscalls import SyscallHandler
from repro.isa.assembler import assemble
from repro.isa.registers import RegisterFile


class TestHandlerDirect:
    def _env(self):
        regs = RegisterFile()
        memory = Memory()
        memory.add_region(MemoryRegion("data", 0x0, 0x1000, Permissions.rw()))
        return regs, memory

    def test_exit(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        regs["a7"] = 93
        regs["a0"] = 3
        result = handler.handle(regs, memory)
        assert result.exited and result.exit_code == 3
        assert handler.exit_code == 3

    def test_print_int_signed(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        regs["a7"] = 1
        regs["a0"] = 0xFFFFFFFF
        handler.handle(regs, memory)
        assert handler.output_text == "-1"

    def test_print_char(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        regs["a7"] = 11
        regs["a0"] = ord("x")
        handler.handle(regs, memory)
        assert handler.output_text == "x"

    def test_print_string(self):
        regs, memory = self._env()
        memory.store_bytes(0x100, b"pump\x00", check=False)
        handler = SyscallHandler()
        regs["a7"] = 4
        regs["a0"] = 0x100
        handler.handle(regs, memory)
        assert handler.output_text == "pump"

    def test_read_int_queue(self):
        regs, memory = self._env()
        handler = SyscallHandler(inputs=[5, 6])
        regs["a7"] = 5
        handler.handle(regs, memory)
        assert regs["a0"] == 5
        handler.handle(regs, memory)
        assert regs["a0"] == 6
        handler.handle(regs, memory)
        assert regs["a0"] == 0  # exhausted queue yields zero

    def test_push_input(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        handler.push_input(9)
        regs["a7"] = 5
        handler.handle(regs, memory)
        assert regs["a0"] == 9

    def test_negative_input_wraps_to_unsigned_register(self):
        regs, memory = self._env()
        handler = SyscallHandler(inputs=[-3])
        regs["a7"] = 5
        handler.handle(regs, memory)
        assert regs["a0"] == 0xFFFFFFFD
        assert regs.read_signed(10) == -3

    def test_unknown_syscall_is_noop(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        regs["a7"] = 4242
        result = handler.handle(regs, memory)
        assert not result.exited

    def test_printed_values_helper(self):
        regs, memory = self._env()
        handler = SyscallHandler()
        for value in (3, 7):
            regs["a7"] = 1
            regs["a0"] = value
            handler.handle(regs, memory)
        assert handler.printed_values == [3, 7]


class TestSyscallsFromPrograms:
    def test_program_reads_inputs_in_order(self):
        program = assemble("""
        _start:
            li a7, 5
            ecall
            mv t0, a0
            li a7, 5
            ecall
            add a0, a0, t0
            li a7, 1
            ecall
            li a7, 93
            ecall
        """)
        result = run_program(program, inputs=[30, 12])
        assert result.output == "42"

    def test_program_prints_string(self):
        program = assemble("""
            .data
        msg: .asciiz "hello"
            .text
        _start:
            la a0, msg
            li a7, 4
            ecall
            li a7, 93
            ecall
        """)
        assert run_program(program).output == "hello"
