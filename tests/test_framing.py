"""The wire framing must round-trip cleanly and fail closed on everything else.

Covers the synchronous codec (:func:`encode_frame` / :func:`decode_frame`),
the asyncio reader (:func:`read_frame`) against truncated streams and
oversized length prefixes, and version negotiation.  The server-level
behaviour on these failures (ERROR frame, connection teardown, service
keeps running) is pinned in ``tests/test_service_server.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attestation.framing import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSIONS,
    FrameTooLarge,
    FrameType,
    FramingError,
    TruncatedFrame,
    UnknownFrameType,
    decode_frame,
    encode_frame,
    error_payload,
    hello_payload,
    negotiate_version,
    read_frame,
)


def read_from_bytes(blob: bytes, max_frame_bytes: int = MAX_FRAME_BYTES):
    """Run the asyncio frame reader against an in-memory stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_frame(reader, max_frame_bytes)
    return asyncio.run(go())


class TestCodec:
    def test_roundtrip_every_frame_type(self):
        for frame_type in FrameType:
            payload = b"payload-of-" + frame_type.name.encode()
            frame_type_out, payload_out, rest = decode_frame(
                encode_frame(frame_type, payload))
            assert frame_type_out is frame_type
            assert payload_out == payload
            assert rest == b""

    def test_empty_payload(self):
        frame_type, payload, rest = decode_frame(encode_frame(FrameType.BYE))
        assert frame_type is FrameType.BYE
        assert payload == b"" and rest == b""

    def test_consecutive_frames_share_a_stream(self):
        blob = encode_frame(FrameType.HELLO, b"a") + encode_frame(
            FrameType.BYE)
        frame_type, payload, rest = decode_frame(blob)
        assert (frame_type, payload) == (FrameType.HELLO, b"a")
        frame_type, payload, rest = decode_frame(rest)
        assert (frame_type, payload) == (FrameType.BYE, b"")
        assert rest == b""

    def test_truncated_header_fails_closed(self):
        blob = encode_frame(FrameType.REPORT, b"xyz")
        for cut in range(HEADER_BYTES):
            with pytest.raises(TruncatedFrame):
                decode_frame(blob[:cut])

    def test_truncated_payload_fails_closed(self):
        blob = encode_frame(FrameType.REPORT, b"0123456789")
        for cut in range(HEADER_BYTES, len(blob)):
            with pytest.raises(TruncatedFrame):
                decode_frame(blob[:cut])

    def test_oversized_length_prefix_fails_before_payload(self):
        # The length field announces 2^32-1 bytes; no such payload follows,
        # but the cap must reject the frame on the header alone.
        blob = bytes([FrameType.REPORT]) + (0xFFFFFFFF).to_bytes(4, "little")
        with pytest.raises(FrameTooLarge):
            decode_frame(blob)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(FrameType.REPORT, b"x" * 65, max_frame_bytes=64)

    def test_unknown_type_byte_fails_closed(self):
        blob = b"\xee" + (0).to_bytes(4, "little")
        with pytest.raises(UnknownFrameType):
            decode_frame(blob)

    @given(st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_the_decoder(self, blob):
        """Fuzz: any byte soup either decodes or raises a FramingError."""
        try:
            frame_type, payload, rest = decode_frame(blob, max_frame_bytes=1024)
        except FramingError:
            return
        assert isinstance(frame_type, FrameType)
        assert blob == encode_frame(frame_type, payload) + rest

    @given(st.sampled_from(sorted(FrameType)), st.binary(max_size=128))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, frame_type, payload):
        out_type, out_payload, rest = decode_frame(
            encode_frame(frame_type, payload))
        assert (out_type, out_payload, rest) == (frame_type, payload, b"")


class TestAsyncReader:
    def test_reads_one_frame(self):
        frame = read_from_bytes(encode_frame(FrameType.HELLO, b"hi"))
        assert frame == (FrameType.HELLO, b"hi")

    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_eof_inside_header_raises(self):
        with pytest.raises(TruncatedFrame):
            read_from_bytes(encode_frame(FrameType.HELLO, b"hi")[:3])

    def test_eof_inside_payload_raises(self):
        with pytest.raises(TruncatedFrame):
            read_from_bytes(encode_frame(FrameType.HELLO, b"hello")[:-2])

    def test_oversized_prefix_rejected_without_reading_payload(self):
        header = bytes([FrameType.REPORT]) + (1 << 30).to_bytes(4, "little")
        with pytest.raises(FrameTooLarge):
            read_from_bytes(header, max_frame_bytes=1024)

    def test_unknown_type_raises_after_payload_is_drained(self):
        with pytest.raises(UnknownFrameType):
            read_from_bytes(b"\xee" + (2).to_bytes(4, "little") + b"ab")


class TestNegotiation:
    def test_common_version_is_picked(self):
        assert negotiate_version([1]) == 1
        assert negotiate_version([1, 99]) == 1

    def test_no_common_version(self):
        assert negotiate_version([99]) is None
        assert negotiate_version([]) is None

    def test_current_versions_are_negotiable(self):
        assert negotiate_version(PROTOCOL_VERSIONS) == max(PROTOCOL_VERSIONS)

    def test_hello_payload_carries_versions_and_device(self):
        document = json.loads(hello_payload((1,), "prover-3"))
        assert document == {"versions": [1], "device_id": "prover-3"}

    def test_error_payload_shape(self):
        document = json.loads(error_payload("code", "detail", True))
        assert document == {"code": "code", "detail": "detail", "fatal": True}
