"""Tests for trace serialisation and offline attestation replay."""

import io

import pytest

from repro.cpu.core import Cpu
from repro.cpu.tracefile import (
    TraceFormatError,
    dumps_trace,
    loads_trace,
    open_trace,
    replay_trace,
    save_trace,
)
from repro.lofat.engine import LoFatEngine
from repro.workloads import get_workload


def run_workload(name):
    workload = get_workload(name)
    cpu = Cpu(workload.build(), inputs=list(workload.inputs))
    engine = LoFatEngine()
    cpu.attach_monitor(engine.observe)
    result = cpu.run()
    return result, engine.finalize()


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["figure4_loop", "crc32", "dispatcher"])
    def test_serialisation_roundtrip_preserves_records(self, name):
        result, _ = run_workload(name)
        restored = loads_trace(dumps_trace(result.trace))
        assert len(restored) == len(result.trace)
        for original, copy in zip(result.trace, restored):
            assert copy.pc == original.pc
            assert copy.next_pc == original.next_pc
            assert copy.word == original.word
            assert copy.cycle == original.cycle
            assert copy.kind == original.kind
            assert copy.taken == original.taken
            assert copy.instruction.mnemonic == original.instruction.mnemonic

    def test_file_roundtrip(self, tmp_path):
        result, _ = run_workload("figure4_loop")
        path = str(tmp_path / "figure4.lftr")
        written = save_trace(result.trace, path)
        assert written > 0
        restored = open_trace(path)
        assert restored.control_flow_events == result.trace.control_flow_events

    def test_summary_preserved(self):
        result, _ = run_workload("bubble_sort")
        restored = loads_trace(dumps_trace(result.trace))
        assert restored.summary() == result.trace.summary()


class TestOfflineAttestation:
    @pytest.mark.parametrize("name", ["figure4_loop", "syringe_pump", "crc32"])
    def test_replay_produces_identical_measurement(self, name):
        """Offline attestation over a stored trace == live attestation."""
        result, live = run_workload(name)
        restored = loads_trace(dumps_trace(result.trace))
        offline_engine = LoFatEngine()
        count = replay_trace(restored, offline_engine.observe)
        offline = offline_engine.finalize()
        assert count == len(result.trace)
        assert offline.measurement == live.measurement
        assert offline.metadata.to_bytes() == live.metadata.to_bytes()

    def test_tampered_trace_changes_measurement(self):
        result, live = run_workload("figure4_loop")
        restored = loads_trace(dumps_trace(result.trace))
        # Redirect the destination of the first non-loop control-flow record:
        # an offline-tampered trace must not reproduce the live measurement.
        for record in restored:
            if record.is_control_flow:
                record.next_pc ^= 0x8
                break
        engine = LoFatEngine()
        replay_trace(restored, engine.observe)
        assert engine.finalize().measurement != live.measurement


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            loads_trace(b"XXXX" + bytes(6))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError):
            loads_trace(b"LF")

    def test_truncated_records(self):
        result, _ = run_workload("figure4_loop")
        data = dumps_trace(result.trace)
        with pytest.raises(TraceFormatError):
            loads_trace(data[:-3])

    def test_unsupported_version(self):
        result, _ = run_workload("figure4_loop")
        data = bytearray(dumps_trace(result.trace))
        data[4] = 0xFF  # bump the version field
        with pytest.raises(TraceFormatError):
            loads_trace(bytes(data))
