"""Tests for trace serialisation and offline attestation replay."""

import io

import pytest

from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.trace import ControlFlowTrace, ExecutionTrace
from repro.cpu.tracefile import (
    TraceFormatError,
    dumps_trace,
    loads_trace,
    open_trace,
    replay_trace,
    save_trace,
    trace_digest,
)
from repro.lofat.engine import LoFatEngine
from repro.workloads import get_workload


def run_workload(name):
    workload = get_workload(name)
    cpu = Cpu(workload.build(), inputs=list(workload.inputs))
    engine = LoFatEngine()
    cpu.attach_monitor(engine.observe)
    result = cpu.run()
    return result, engine.finalize()


def capture_workload(name):
    """Fast-path (control-flow-only) capture of a workload execution."""
    workload = get_workload(name)
    cpu = Cpu(workload.build(), inputs=list(workload.inputs),
              config=CpuConfig(collect_trace=False))
    trace = ControlFlowTrace()
    cpu.attach_monitor(trace.observe)
    result = cpu.run()
    return result, trace


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["figure4_loop", "crc32", "dispatcher"])
    def test_serialisation_roundtrip_preserves_records(self, name):
        result, _ = run_workload(name)
        restored = loads_trace(dumps_trace(result.trace))
        assert len(restored) == len(result.trace)
        for original, copy in zip(result.trace, restored):
            assert copy.pc == original.pc
            assert copy.next_pc == original.next_pc
            assert copy.word == original.word
            assert copy.cycle == original.cycle
            assert copy.kind == original.kind
            assert copy.taken == original.taken
            assert copy.instruction.mnemonic == original.instruction.mnemonic

    def test_file_roundtrip(self, tmp_path):
        result, _ = run_workload("figure4_loop")
        path = str(tmp_path / "figure4.lftr")
        written = save_trace(result.trace, path)
        assert written > 0
        restored = open_trace(path)
        assert restored.control_flow_events == result.trace.control_flow_events

    def test_summary_preserved(self):
        result, _ = run_workload("bubble_sort")
        restored = loads_trace(dumps_trace(result.trace))
        assert restored.summary() == result.trace.summary()


class TestOfflineAttestation:
    @pytest.mark.parametrize("name", ["figure4_loop", "syringe_pump", "crc32"])
    def test_replay_produces_identical_measurement(self, name):
        """Offline attestation over a stored trace == live attestation."""
        result, live = run_workload(name)
        restored = loads_trace(dumps_trace(result.trace))
        offline_engine = LoFatEngine()
        count = replay_trace(restored, offline_engine.observe)
        offline = offline_engine.finalize()
        assert count == len(result.trace)
        assert offline.measurement == live.measurement
        assert offline.metadata.to_bytes() == live.metadata.to_bytes()

    def test_tampered_trace_changes_measurement(self):
        result, live = run_workload("figure4_loop")
        restored = loads_trace(dumps_trace(result.trace))
        # Redirect the destination of the first non-loop control-flow record:
        # an offline-tampered trace must not reproduce the live measurement.
        for record in restored:
            if record.is_control_flow:
                record.next_pc ^= 0x8
                break
        engine = LoFatEngine()
        replay_trace(restored, engine.observe)
        assert engine.finalize().measurement != live.measurement


class TestFormatV2:
    """Tracefile v2: control-flow-only captures with run counters."""

    @pytest.mark.parametrize("name", ["figure4_loop", "crc32", "dispatcher"])
    def test_fastpath_capture_roundtrips_byte_identically(self, name):
        result, trace = capture_workload(name)
        data = dumps_trace(trace)
        restored = loads_trace(data)
        assert isinstance(restored, ControlFlowTrace)
        # Byte-identical round trip: re-serialising reproduces the file.
        assert dumps_trace(restored) == data
        assert len(restored) == result.instructions
        assert restored.cycles == result.cycles
        assert restored.replayable
        assert restored.summary() == trace.summary()
        assert [r.src_dest for r in restored.control_flow_records] == \
               [r.src_dest for r in trace.control_flow_records]

    def test_version_negotiation(self):
        result, _ = run_workload("figure4_loop")
        _, capture = capture_workload("figure4_loop")
        v1 = dumps_trace(result.trace)
        v2 = dumps_trace(capture)
        assert v1[4:6] == b"\x01\x00"
        assert v2[4:6] == b"\x02\x00"
        assert isinstance(loads_trace(v1), ExecutionTrace)
        assert isinstance(loads_trace(v2), ControlFlowTrace)

    def test_v1_cannot_represent_cf_only_capture(self):
        _, capture = capture_workload("figure4_loop")
        with pytest.raises(TraceFormatError):
            dumps_trace(capture, version=1)

    def test_full_trace_can_be_compacted_to_v2(self):
        result, _ = run_workload("figure4_loop")
        data = dumps_trace(result.trace, version=2)
        restored = loads_trace(data)
        assert isinstance(restored, ControlFlowTrace)
        assert len(restored) == len(result.trace)
        assert restored.cycles == result.trace.cycles
        assert restored.control_flow_events == \
               result.trace.control_flow_events
        assert restored.summary() == result.trace.summary()

    def test_compacted_full_trace_equals_fastpath_capture(self):
        """v1-archived full traces convert to the same v2 bytes a live
        fast-path capture produces (the migration path for old archives)."""
        result, _ = run_workload("figure4_loop")
        _, capture = capture_workload("figure4_loop")
        assert dumps_trace(result.trace, version=2) == dumps_trace(capture)

    def test_replayable_flag_roundtrips(self):
        _, capture = capture_workload("figure4_loop")
        capture.sync_straight_line(0, 0)  # pre-hook redirect marker
        restored = loads_trace(dumps_trace(capture))
        assert not restored.replayable

    def test_truncated_v2_counters(self):
        _, capture = capture_workload("figure4_loop")
        data = dumps_trace(capture)
        with pytest.raises(TraceFormatError):
            loads_trace(data[:12])  # header survives, counters cut off

    def test_trace_digest_is_content_address(self):
        _, capture = capture_workload("figure4_loop")
        data = dumps_trace(capture)
        assert trace_digest(data) == trace_digest(bytes(data))
        assert trace_digest(data) != trace_digest(data + b"\x00")

    def test_per_record_replay_of_cf_trace_is_refused(self):
        _, capture = capture_workload("figure4_loop")
        from repro.cpu.trace import TraceNotRecordedError
        with pytest.raises(TraceNotRecordedError):
            replay_trace(capture, lambda record: None)


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            loads_trace(b"XXXX" + bytes(6))

    def test_truncated_header(self):
        with pytest.raises(TraceFormatError):
            loads_trace(b"LF")

    def test_truncated_records(self):
        result, _ = run_workload("figure4_loop")
        data = dumps_trace(result.trace)
        with pytest.raises(TraceFormatError):
            loads_trace(data[:-3])

    def test_unsupported_version(self):
        result, _ = run_workload("figure4_loop")
        data = bytearray(dumps_trace(result.trace))
        data[4] = 0xFF  # bump the version field
        with pytest.raises(TraceFormatError):
            loads_trace(bytes(data))
