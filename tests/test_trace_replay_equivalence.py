"""Replayed attestation is bit-equivalent to live execution.

The acceptance bar of the capture-once / verify-many pipeline: for every
scheme, the verdicts, measurements and report bytes obtained by replaying a
stored control-flow trace must match a live execution exactly -- benign and
attacked, scheme level, worker level and campaign level.
"""

import pytest

from repro.attacks import ATTACK_REGISTRY, get_attack
from repro.cpu.core import Cpu, CpuConfig
from repro.cpu.trace import ControlFlowTrace
from repro.cpu.tracefile import dumps_trace, loads_trace, trace_digest
from repro.schemes import get_scheme, scheme_names
from repro.service import CampaignRunner, CampaignSpec, WorkloadSelection
from repro.service.tracestore import CapturedExecution
from repro.service.worker import (
    clear_replay_cache,
    execute_attest_job,
    execute_capture_job,
    execute_prover_job,
)
from repro.workloads import get_workload

WORKLOADS = ["figure4_loop", "crc32", "bubble_sort", "dispatcher", "fibonacci"]


def capture_execution(workload_name, inputs=None, attack=None):
    """Capture one execution the way the stage-1 worker does."""
    workload = get_workload(workload_name)
    program = workload.build()
    run_inputs = list(workload.inputs) if inputs is None else list(inputs)
    cpu = Cpu(program, inputs=run_inputs,
              config=CpuConfig(collect_trace=False))
    trace = ControlFlowTrace()
    cpu.attach_monitor(trace.observe)
    if attack is not None:
        get_attack(attack).prover_hook(program)(cpu)
    result = cpu.run()
    return program, run_inputs, result, trace


class TestSchemeLevelEquivalence:
    @pytest.mark.parametrize("scheme_name", ["lofat", "cflat", "static"])
    @pytest.mark.parametrize("workload_name", WORKLOADS)
    def test_replay_matches_live_measurement(self, scheme_name, workload_name):
        scheme = get_scheme(scheme_name)
        program, inputs, result, trace = capture_execution(workload_name)

        _, live = scheme.measure_execution(
            program, inputs, cpu_config=CpuConfig(collect_trace=False))
        replayed = scheme.replay_measurement(program, trace)

        assert replayed.measurement == live.measurement
        assert replayed.metadata.to_bytes() == live.metadata.to_bytes()
        assert replayed.stats.get("pairs_hashed") == \
               live.stats.get("pairs_hashed")
        assert replayed.stats.get("control_flow_events") == \
               live.stats.get("control_flow_events")

    @pytest.mark.parametrize("scheme_name", ["lofat", "cflat"])
    @pytest.mark.parametrize("attack_name", sorted(ATTACK_REGISTRY))
    def test_replay_matches_live_for_attacked_executions(
            self, scheme_name, attack_name):
        scenario = get_attack(attack_name)
        scheme = get_scheme(scheme_name)
        program, inputs, result, trace = capture_execution(
            scenario.workload_name, inputs=scenario.challenge_inputs,
            attack=attack_name)

        # Live measurement of the same attacked execution.
        session = scheme.open_session(program, None)
        cpu = Cpu(program, inputs=list(inputs),
                  config=CpuConfig(collect_trace=False))
        cpu.attach_monitor(session.observe)
        scenario.prover_hook(program)(cpu)
        cpu.run()
        live = session.finalize()

        replayed = scheme.replay_measurement(program, trace)
        assert replayed.measurement == live.measurement
        assert replayed.metadata.to_bytes() == live.metadata.to_bytes()

    def test_replay_survives_serialisation_roundtrip(self):
        scheme = get_scheme("lofat")
        program, inputs, _, trace = capture_execution("figure4_loop")
        direct = scheme.replay_measurement(program, trace)
        restored = loads_trace(dumps_trace(trace))
        roundtripped = scheme.replay_measurement(program, restored)
        assert roundtripped.measurement == direct.measurement
        assert roundtripped.metadata.to_bytes() == direct.metadata.to_bytes()

    def test_replay_batch_size_does_not_change_measurement(self):
        scheme = get_scheme("lofat")
        program, inputs, _, trace = capture_execution("syringe_pump")
        reference = scheme.replay_measurement(program, trace)
        for batch_size in (1, 7, 1024):
            other = scheme.replay_measurement(
                program, trace, batch_size=batch_size)
            assert other.measurement == reference.measurement
            assert other.metadata.to_bytes() == reference.metadata.to_bytes()

    def test_non_replayable_trace_is_refused(self):
        from repro.schemes.base import SchemeError
        program, _, _, trace = capture_execution("figure4_loop")
        trace.sync_straight_line(0, 0)  # what a pre-hook redirect triggers
        assert not trace.replayable
        with pytest.raises(SchemeError):
            get_scheme("lofat").replay_measurement(program, trace)


def _job(scheme, workload="figure4_loop", attack=None, inputs=(5,)):
    from repro.service.campaign import CampaignJob
    return CampaignJob(
        job_id="%s/%s" % (workload, scheme),
        workload=workload,
        inputs=tuple(inputs),
        attack=attack,
        scheme=scheme,
    )


class TestWorkerLevelEquivalence:
    """execute_attest_job (stage 2) == execute_prover_job (live) bytes."""

    @pytest.mark.parametrize("scheme_name", ["lofat", "cflat", "static"])
    def test_report_bytes_identical(self, scheme_name):
        clear_replay_cache()
        job = _job(scheme_name)
        nonce = b"\x07" * 32
        live = execute_prover_job((job, nonce))

        capture_response = execute_capture_job(
            ("sig", job.workload, job.inputs, None))
        capture = CapturedExecution(
            signature="sig",
            trace_digest=capture_response.trace_digest,
            trace_bytes=capture_response.trace_bytes,
            exit_code=capture_response.exit_code,
            output=capture_response.output,
            instructions=capture_response.instructions,
            cycles=capture_response.cycles,
            replayable=capture_response.replayable,
        )
        replayed = execute_attest_job((job, nonce, capture))

        assert replayed.replayed
        assert replayed.report.to_bytes() == live.report.to_bytes()
        assert replayed.instructions == live.instructions
        assert replayed.cycles == live.cycles
        assert replayed.pairs_hashed == live.pairs_hashed
        assert replayed.control_flow_events == live.control_flow_events

        # The second replay of the same (scheme, trace, config) is served by
        # the per-process replay cache and must still be byte-identical
        # (covers the metadata to_bytes/from_bytes round trip).
        cached = execute_attest_job((job, nonce, capture))
        assert cached.replay_cache_hits == 1
        assert cached.report.to_bytes() == live.report.to_bytes()

    @pytest.mark.parametrize("attack_name", sorted(ATTACK_REGISTRY))
    def test_attacked_report_bytes_identical(self, attack_name):
        clear_replay_cache()
        scenario = get_attack(attack_name)
        job = _job("lofat", workload=scenario.workload_name,
                   attack=attack_name,
                   inputs=tuple(int(v) for v in scenario.challenge_inputs))
        nonce = b"\x21" * 32
        live = execute_prover_job((job, nonce))

        capture_response = execute_capture_job(
            ("sig", job.workload, job.inputs, attack_name))
        capture = CapturedExecution(
            signature="sig",
            trace_digest=capture_response.trace_digest,
            trace_bytes=capture_response.trace_bytes,
            exit_code=capture_response.exit_code,
            output=capture_response.output,
            instructions=capture_response.instructions,
            cycles=capture_response.cycles,
            replayable=capture_response.replayable,
        )
        replayed = execute_attest_job((job, nonce, capture))
        assert replayed.report.to_bytes() == live.report.to_bytes()

    def test_missing_capture_falls_back_to_live(self):
        job = _job("lofat")
        nonce = b"\x01" * 32
        response = execute_attest_job((job, nonce, None))
        assert not response.replayed
        live = execute_prover_job((job, nonce))
        assert response.report.to_bytes() == live.report.to_bytes()


@pytest.fixture
def matrix_spec():
    return CampaignSpec(
        name="equivalence-matrix",
        workloads=[WorkloadSelection("figure4_loop", input_sets=[[4], [9]]),
                   WorkloadSelection("auth_check")],
        schemes=list(scheme_names()),
        attacks=["auth_flag_flip", "syringe_overdose"],
        repeats=2,
    )


class TestCampaignLevelEquivalence:
    """Two-stage campaigns recombine to the same results as live ones."""

    @pytest.mark.parametrize("verify_mode", ["database", "replay", "structural"])
    def test_identities_match_live_pipeline(self, matrix_spec, verify_mode):
        matrix_spec.verify_mode = verify_mode
        live = CampaignRunner().run(matrix_spec, pipeline="live")
        clear_replay_cache()
        captured = CampaignRunner().run(matrix_spec, pipeline="capture")
        if verify_mode != "structural":  # structural checks cannot see attacks
            assert live.ok and captured.ok
        assert captured.identities() == live.identities()
        assert all(result.replayed for result in captured.results)
        assert not any(result.replayed for result in live.results)

    def test_capture_dedupes_executions(self, matrix_spec):
        runner = CampaignRunner()
        result = runner.run(matrix_spec)
        stats = result.capture_stats
        jobs = len(matrix_spec.expand())
        assert stats["jobs"] == jobs
        # schemes x repeats collapse: 3 benign points + 2 attacked points.
        assert stats["unique_executions"] == 5
        assert stats["deduped_jobs"] == jobs - 5
        # Benign counterpart of the syringe attack (the auth attack's
        # challenge inputs are already covered by the benign auth job).
        assert stats["reference_executions"] == 1
        assert stats["replayed_jobs"] == jobs
        assert stats["live_jobs"] == 0

    def test_warm_store_skips_all_simulation(self, matrix_spec):
        runner = CampaignRunner()
        first = runner.run(matrix_spec)
        assert first.capture_stats["captured"] > 0
        second = runner.run(matrix_spec)
        assert second.ok
        assert second.capture_stats["captured"] == 0
        assert second.capture_stats["store_hits"] > 0
        assert second.identities() == first.identities()

    def test_worker_replay_cache_counters_are_aggregated(self, matrix_spec):
        clear_replay_cache()
        result = CampaignRunner().run(matrix_spec)
        stats = result.database_stats
        total = stats["worker_replay_hits"] + stats["worker_replay_misses"]
        assert total == len(result.results)
        # repeats=2: the second round of every (scheme, trace, config)
        # combination is a replay-cache hit.
        assert stats["worker_replay_hits"] >= len(result.results) // 2

    def test_parallel_two_stage_identical_to_sequential(self, matrix_spec):
        sequential = CampaignRunner().run(matrix_spec, workers=1)
        parallel = CampaignRunner().run(matrix_spec, workers=4)
        assert parallel.identities() == sequential.identities()

    def test_unknown_pipeline_rejected(self, matrix_spec):
        with pytest.raises(ValueError):
            CampaignRunner().run(matrix_spec, pipeline="warp")


class TestTraceDigestStability:
    def test_capture_digest_deterministic(self):
        first = execute_capture_job(("s", "figure4_loop", (5,), None))
        second = execute_capture_job(("s", "figure4_loop", (5,), None))
        assert first.trace_bytes == second.trace_bytes
        assert first.trace_digest == second.trace_digest
        assert first.trace_digest == trace_digest(first.trace_bytes)

    def test_different_inputs_different_digest(self):
        a = execute_capture_job(("s", "figure4_loop", (5,), None))
        b = execute_capture_job(("s", "figure4_loop", (6,), None))
        assert a.trace_digest != b.trace_digest
