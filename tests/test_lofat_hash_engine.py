"""Unit tests for the SHA-3 hash engine model."""

import hashlib

import pytest

from repro.lofat.config import LoFatConfig
from repro.lofat.hash_engine import HashEngine, measurement_over_pairs


class TestFunctionalMeasurement:
    def test_digest_matches_reference_sha3(self):
        engine = HashEngine()
        pairs = [(0x100, 0x200), (0x200, 0x180), (0x180, 0x104)]
        for src, dest in pairs:
            engine.absorb_pair(src, dest)
        expected = hashlib.sha3_512()
        for src, dest in pairs:
            expected.update(src.to_bytes(4, "little") + dest.to_bytes(4, "little"))
        assert engine.finalize() == expected.digest()

    def test_digest_is_64_bytes(self):
        engine = HashEngine()
        engine.absorb_pair(1, 2)
        assert len(engine.finalize()) == 64

    def test_order_sensitivity(self):
        a = HashEngine()
        a.absorb_pair(1, 2)
        a.absorb_pair(3, 4)
        b = HashEngine()
        b.absorb_pair(3, 4)
        b.absorb_pair(1, 2)
        assert a.finalize() != b.finalize()

    def test_finalize_is_idempotent(self):
        engine = HashEngine()
        engine.absorb_pair(1, 2)
        assert engine.finalize() == engine.finalize()
        assert engine.digest_hex == engine.finalize().hex()

    def test_absorb_after_finalize_rejected(self):
        engine = HashEngine()
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.absorb_pair(1, 2)

    def test_absorb_bytes_changes_digest(self):
        plain = HashEngine()
        plain.absorb_pair(1, 2)
        with_meta = HashEngine()
        with_meta.absorb_pair(1, 2)
        with_meta.absorb_bytes(b"metadata")
        assert plain.finalize() != with_meta.finalize()

    def test_addresses_truncated_to_32_bits(self):
        a = HashEngine()
        a.absorb_pair(0x1_0000_0004, 0x8)
        b = HashEngine()
        b.absorb_pair(0x4, 0x8)
        assert a.finalize() == b.finalize()

    def test_absorbed_pairs_recorded(self):
        engine = HashEngine()
        engine.absorb_pair(5, 6)
        engine.absorb_pair(7, 8)
        assert engine.absorbed_pairs == [(5, 6), (7, 8)]

    def test_measurement_over_pairs_helper_matches_engine(self):
        pairs = [(10, 20), (20, 16), (16, 40)]
        engine = HashEngine()
        for src, dest in pairs:
            engine.absorb_pair(src, dest)
        assert measurement_over_pairs(pairs) == engine.finalize()

    def test_empty_measurement_is_sha3_of_empty(self):
        assert HashEngine().finalize() == hashlib.sha3_512().digest()


class TestCycleModel:
    def test_pairs_absorbed_counted(self):
        engine = HashEngine()
        for index in range(20):
            engine.absorb_pair(index, index + 4, arrival_cycle=index * 10)
        assert engine.stats.pairs_absorbed == 20

    def test_pad_stall_every_nine_words(self):
        """After 9 absorbed words the padding buffer stalls for 3 cycles."""
        engine = HashEngine()
        for index in range(9):
            engine.absorb_pair(index, index, arrival_cycle=index)
        engine.flush_cycle_model()
        assert engine.stats.pad_stalls == 1
        assert engine.stats.stall_cycles == 3

    def test_no_stall_below_block_size(self):
        engine = HashEngine()
        for index in range(8):
            engine.absorb_pair(index, index, arrival_cycle=index)
        engine.flush_cycle_model()
        assert engine.stats.pad_stalls == 0

    def test_sparse_arrivals_never_grow_buffer(self):
        engine = HashEngine()
        for index in range(50):
            engine.absorb_pair(index, index, arrival_cycle=index * 20)
        assert engine.stats.max_buffer_occupancy <= 2
        assert engine.stats.dropped_pairs == 0

    def test_burst_arrivals_use_buffer(self):
        """Pairs arriving every cycle back up behind the pad stall."""
        engine = HashEngine(LoFatConfig(hash_input_buffer_depth=16))
        for index in range(30):
            engine.absorb_pair(index, index, arrival_cycle=index)
        engine.flush_cycle_model()
        assert engine.stats.max_buffer_occupancy >= 2
        assert engine.stats.dropped_pairs == 0

    def test_insufficient_buffer_reports_drops(self):
        """A pathological buffer depth of 1 cannot absorb dense bursts."""
        engine = HashEngine(LoFatConfig(hash_input_buffer_depth=1))
        for index in range(40):
            engine.absorb_pair(index, index, arrival_cycle=index)
        engine.flush_cycle_model()
        assert engine.stats.dropped_pairs > 0

    def test_default_buffer_sustains_realistic_branch_density(self):
        """One pair every 2 cycles is below the 9-per-12-cycle absorb rate,
        so the default buffer never drops anything even over long runs."""
        engine = HashEngine()
        for index in range(500):
            engine.absorb_pair(index, index, arrival_cycle=index * 2)
        engine.flush_cycle_model()
        assert engine.stats.dropped_pairs == 0

    def test_sustained_one_pair_per_cycle_exceeds_bandwidth(self):
        """The sponge absorbs at most 9 words per 12 cycles, so a sustained
        1 pair/cycle stream must eventually back up whatever the buffer."""
        engine = HashEngine()
        for index in range(200):
            engine.absorb_pair(index, index, arrival_cycle=index)
        engine.flush_cycle_model()
        assert engine.stats.max_buffer_occupancy == engine.config.hash_input_buffer_depth

    def test_flush_drains_queue(self):
        engine = HashEngine()
        for index in range(5):
            engine.absorb_pair(index, index, arrival_cycle=0)
        engine.flush_cycle_model()
        assert engine.buffer_occupancy == 0

    def test_stats_as_dict(self):
        engine = HashEngine()
        engine.absorb_pair(1, 2, arrival_cycle=0)
        stats = engine.stats.as_dict()
        assert stats["pairs_absorbed"] == 1
        assert "max_buffer_occupancy" in stats


class TestFinalizeDrain:
    """Regression: finalize must drain the cycle model before reporting.

    Previously :meth:`HashEngine.finalize` left queued pairs in the input
    cache buffer, so a measurement could report non-zero ``buffer_occupancy``
    and understated stall cycles after finalize.
    """

    def test_finalize_drains_pending_buffer(self):
        engine = HashEngine()
        for index in range(30):
            engine.absorb_pair(index, index, arrival_cycle=index)
        assert engine.buffer_occupancy > 0  # pairs genuinely in flight
        engine.finalize()
        assert engine.buffer_occupancy == 0
        assert engine.stats.last_absorb_cycle > 0

    def test_finalize_stall_accounting_matches_explicit_flush(self):
        absorbed = HashEngine()
        flushed = HashEngine()
        for index in range(30):
            absorbed.absorb_pair(index, index, arrival_cycle=index)
            flushed.absorb_pair(index, index, arrival_cycle=index)
        flushed.flush_cycle_model()
        flushed.finalize()
        absorbed.finalize()  # no explicit flush: must account identically
        assert absorbed.stats.as_dict() == flushed.stats.as_dict()
        assert absorbed.engine_cycle == flushed.engine_cycle

    def test_statistics_reports_live_buffer_state(self):
        engine = HashEngine()
        for index in range(30):
            engine.absorb_pair(index, index, arrival_cycle=index)
        assert engine.statistics()["buffer_occupancy"] > 0
        engine.finalize()
        stats = engine.statistics()
        assert stats["buffer_occupancy"] == 0
        assert stats["engine_cycle"] == engine.engine_cycle


class TestAbsorbRun:
    """The batched absorb path is byte- and stats-identical to per-pair."""

    def test_absorb_run_matches_per_pair_digest(self):
        pairs = [(index * 4, index * 4 + 8) for index in range(25)]
        per_pair = HashEngine()
        for cycle, (src, dest) in enumerate(pairs):
            per_pair.absorb_pair(src, dest, arrival_cycle=cycle)
        batched = HashEngine()
        batched.absorb_run(pairs, arrivals=range(len(pairs)))
        assert batched.finalize() == per_pair.finalize()
        assert batched.stats.as_dict() == per_pair.stats.as_dict()
        assert batched.absorbed_pairs == per_pair.absorbed_pairs

    def test_absorb_run_without_arrivals_skips_cycle_model(self):
        engine = HashEngine()
        engine.absorb_run([(1, 2), (3, 4)])
        assert engine.stats.pairs_absorbed == 2
        assert engine.engine_cycle == 0

    def test_absorb_run_masks_to_32_bits(self):
        wide = HashEngine()
        wide.absorb_run([(0x1_0000_0001, 0x2_0000_0002)])
        narrow = HashEngine()
        narrow.absorb_pair(1, 2)
        assert wide.finalize() == narrow.finalize()

    def test_absorb_run_after_finalize_rejected(self):
        engine = HashEngine()
        engine.finalize()
        with pytest.raises(RuntimeError):
            engine.absorb_run([(1, 2)])
