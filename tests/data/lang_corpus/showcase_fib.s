.text
_start:
    call main
    li   a7, 93
    ecall
fib:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -4
    sw   a0, -20(s0)
    lw   t0, -20(s0)
    li   t1, 2
    slt  t0, t0, t1
    beqz t0, fib__endif0
    lw   t0, -20(s0)
    mv   a0, t0
    j    fib__ret
fib__endif0:
    lw   t0, -20(s0)
    li   t1, 1
    sub  t0, t0, t1
    mv   a0, t0
    call fib
    mv   t0, a0
    lw   t1, -20(s0)
    li   t2, 2
    sub  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call fib
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    mv   a0, t0
    j    fib__ret
fib__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    li   a7, 5
    ecall
    mv   t0, a0
    mv   a0, t0
    call fib
    mv   t0, a0
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 10
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
