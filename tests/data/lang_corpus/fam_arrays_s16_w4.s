.text
_start:
    call main
    li   a7, 93
    ecall
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -88
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -24(s0)
    addi t0, s0, -88
    addi t1, s0, -24
main__zero0:
    bge  t0, t1, main__endzero1
    sw   zero, 0(t0)
    addi t0, t0, 4
    j    main__zero0
main__endzero1:
    li   t0, 0
    sw   t0, -92(s0)
main__loop2:
    lw   t0, -92(s0)
    li   t1, 16
    slt  t0, t0, t1
    beqz t0, main__endloop3
    lw   t0, -20(s0)
    li   t1, 1103515245
    mul  t0, t0, t1
    li   t1, 12345
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -20(s0)
    lw   t0, -20(s0)
    li   t1, 1000
    rem  t0, t0, t1
    addi t1, s0, -88
    lw   t2, -92(s0)
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    lw   t0, -92(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -92(s0)
    j    main__loop2
main__endloop3:
    li   t0, 0
    sw   t0, -96(s0)
    li   t0, 0
    sw   t0, -100(s0)
main__loop4:
    lw   t0, -100(s0)
    li   t1, 12
    slt  t0, t0, t1
    beqz t0, main__endloop5
    li   t0, 0
    sw   t0, -104(s0)
main__loop6:
    lw   t0, -104(s0)
    li   t1, 4
    slt  t0, t0, t1
    beqz t0, main__endloop7
    lw   t0, -96(s0)
    addi t1, s0, -88
    lw   t2, -100(s0)
    lw   t3, -104(s0)
    add  t2, t2, t3
    slli t2, t2, 2
    add  t1, t1, t2
    lw   t1, 0(t1)
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -96(s0)
    lw   t0, -104(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -104(s0)
    j    main__loop6
main__endloop7:
    addi t0, s0, -88
    lw   t1, -100(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    addi t1, s0, -88
    lw   t2, -100(s0)
    li   t3, 1
    add  t2, t2, t3
    slli t2, t2, 2
    add  t1, t1, t2
    lw   t1, 0(t1)
    slt  t0, t1, t0
    beqz t0, main__endif8
    lw   t0, -96(s0)
    lw   t1, -100(s0)
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -96(s0)
main__endif8:
    lw   t0, -100(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -100(s0)
    j    main__loop4
main__endloop5:
    lw   t0, -96(s0)
    addi t1, s0, -88
    lw   t2, -24(s0)
    li   t3, 16
    rem  t2, t2, t3
    slli t2, t2, 2
    add  t1, t1, t2
    lw   t1, 0(t1)
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -96(s0)
    lw   t0, -96(s0)
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 10
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
