.text
_start:
    call main
    li   a7, 93
    ecall
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -92
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    addi t0, s0, -84
    addi t1, s0, -20
main__zero0:
    bge  t0, t1, main__endzero1
    sw   zero, 0(t0)
    addi t0, t0, 4
    j    main__zero0
main__endzero1:
    li   t0, 2
    addi t1, s0, -84
    li   t2, 0
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 3
    addi t1, s0, -84
    li   t2, 1
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 5
    addi t1, s0, -84
    li   t2, 2
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 7
    addi t1, s0, -84
    li   t2, 3
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 11
    addi t1, s0, -84
    li   t2, 4
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 13
    addi t1, s0, -84
    li   t2, 5
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 17
    addi t1, s0, -84
    li   t2, 6
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 19
    addi t1, s0, -84
    li   t2, 7
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 23
    addi t1, s0, -84
    li   t2, 8
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 29
    addi t1, s0, -84
    li   t2, 9
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 31
    addi t1, s0, -84
    li   t2, 10
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 37
    addi t1, s0, -84
    li   t2, 11
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 41
    addi t1, s0, -84
    li   t2, 12
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 43
    addi t1, s0, -84
    li   t2, 13
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 47
    addi t1, s0, -84
    li   t2, 14
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 53
    addi t1, s0, -84
    li   t2, 15
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    li   t0, 0
    sw   t0, -88(s0)
main__loop2:
    lw   t0, -88(s0)
    lw   t1, -20(s0)
    slt  t0, t0, t1
    beqz t0, main__endloop3
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -92(s0)
    li   t0, 0
    sw   t0, -96(s0)
    li   t0, 15
    sw   t0, -100(s0)
    li   t0, 1
    neg  t0, t0
    sw   t0, -104(s0)
main__loop4:
    lw   t0, -96(s0)
    lw   t1, -100(s0)
    slt  t0, t1, t0
    xori t0, t0, 1
    beqz t0, main__endloop5
    lw   t0, -96(s0)
    lw   t1, -100(s0)
    add  t0, t0, t1
    li   t1, 1
    srl  t0, t0, t1
    sw   t0, -108(s0)
    addi t0, s0, -84
    lw   t1, -108(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    lw   t1, -92(s0)
    sub  t0, t0, t1
    seqz t0, t0
    beqz t0, main__endif6
    lw   t0, -108(s0)
    sw   t0, -104(s0)
    j    main__endloop5
main__endif6:
    addi t0, s0, -84
    lw   t1, -108(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    lw   t1, -92(s0)
    slt  t0, t0, t1
    beqz t0, main__else8
    lw   t0, -108(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -96(s0)
    j    main__endif7
main__else8:
    lw   t0, -108(s0)
    li   t1, 1
    sub  t0, t0, t1
    sw   t0, -100(s0)
main__endif7:
    j    main__loop4
main__endloop5:
    lw   t0, -104(s0)
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 32
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    lw   t0, -88(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -88(s0)
    j    main__loop2
main__endloop3:
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
