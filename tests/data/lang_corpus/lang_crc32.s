.text
_start:
    call main
    li   a7, 93
    ecall
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -20
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    li   t0, 1
    neg  t0, t0
    sw   t0, -24(s0)
    li   t0, 0
    sw   t0, -28(s0)
main__loop0:
    lw   t0, -28(s0)
    lw   t1, -20(s0)
    slt  t0, t0, t1
    beqz t0, main__endloop1
    lw   t0, -24(s0)
    li   a7, 5
    ecall
    mv   t1, a0
    xor  t0, t0, t1
    sw   t0, -24(s0)
    li   t0, 32
    sw   t0, -32(s0)
main__loop2:
    lw   t0, -32(s0)
    li   t1, 0
    slt  t0, t1, t0
    beqz t0, main__endloop3
    lw   t0, -24(s0)
    li   t1, 1
    and  t0, t0, t1
    sw   t0, -36(s0)
    lw   t0, -24(s0)
    li   t1, 1
    srl  t0, t0, t1
    sw   t0, -24(s0)
    lw   t0, -36(s0)
    beqz t0, main__endif4
    lw   t0, -24(s0)
    li   t1, -306674912
    xor  t0, t0, t1
    sw   t0, -24(s0)
main__endif4:
    lw   t0, -32(s0)
    li   t1, 1
    sub  t0, t0, t1
    sw   t0, -32(s0)
    j    main__loop2
main__endloop3:
    lw   t0, -28(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -28(s0)
    j    main__loop0
main__endloop1:
    lw   t0, -24(s0)
    not  t0, t0
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
