.text
_start:
    call main
    li   a7, 93
    ecall
gcd:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -12
    sw   a0, -20(s0)
    sw   a1, -24(s0)
gcd__loop0:
    lw   t0, -24(s0)
    li   t1, 0
    sub  t0, t0, t1
    snez t0, t0
    beqz t0, gcd__endloop1
    lw   t0, -24(s0)
    sw   t0, -28(s0)
    lw   t0, -20(s0)
    lw   t1, -24(s0)
    rem  t0, t0, t1
    sw   t0, -24(s0)
    lw   t0, -28(s0)
    sw   t0, -20(s0)
    j    gcd__loop0
gcd__endloop1:
    lw   t0, -20(s0)
    mv   a0, t0
    j    gcd__ret
gcd__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -12
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    li   t0, 0
    sw   t0, -24(s0)
    li   t0, 1
    sw   t0, -28(s0)
main__loop0:
    lw   t0, -28(s0)
    lw   t1, -20(s0)
    slt  t0, t1, t0
    xori t0, t0, 1
    beqz t0, main__endloop1
    lw   t0, -24(s0)
    li   t1, 12
    lw   t2, -28(s0)
    mul  t1, t1, t2
    li   t2, 18
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    mv   a1, t2
    call gcd
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    sw   t0, -24(s0)
    lw   t0, -28(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -28(s0)
    j    main__loop0
main__endloop1:
    lw   t0, -24(s0)
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 10
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
