.text
_start:
    call main
    li   a7, 93
    ecall
f1:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -12
    sw   a0, -20(s0)
    lw   t0, -20(s0)
    li   t1, 1
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -24(s0)
    li   t0, 0
    sw   t0, -28(s0)
f1__loop0:
    lw   t0, -28(s0)
    li   t1, 3
    slt  t0, t0, t1
    beqz t0, f1__endloop1
    lw   t0, -24(s0)
    li   t1, 33
    mul  t0, t0, t1
    lw   t1, -28(s0)
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -24(s0)
    lw   t0, -28(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -28(s0)
    j    f1__loop0
f1__endloop1:
    lw   t0, -24(s0)
    lw   t1, -24(s0)
    li   t2, 1
    xor  t1, t1, t2
    li   t2, 2147483647
    and  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call f2
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    lw   t1, -24(s0)
    li   t2, 11
    add  t1, t1, t2
    li   t2, 2147483647
    and  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call f2
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    mv   a0, t0
    j    f1__ret
f1__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
f2:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -12
    sw   a0, -20(s0)
    lw   t0, -20(s0)
    li   t1, 2
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -24(s0)
    li   t0, 0
    sw   t0, -28(s0)
f2__loop0:
    lw   t0, -28(s0)
    li   t1, 3
    slt  t0, t0, t1
    beqz t0, f2__endloop1
    lw   t0, -24(s0)
    li   t1, 33
    mul  t0, t0, t1
    lw   t1, -28(s0)
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -24(s0)
    lw   t0, -28(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -28(s0)
    j    f2__loop0
f2__endloop1:
    lw   t0, -24(s0)
    lw   t1, -24(s0)
    li   t2, 2
    xor  t1, t1, t2
    li   t2, 2147483647
    and  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call f3
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    lw   t1, -24(s0)
    li   t2, 22
    add  t1, t1, t2
    li   t2, 2147483647
    and  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call f3
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    mv   a0, t0
    j    f2__ret
f2__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
f3:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -4
    sw   a0, -20(s0)
    lw   t0, -20(s0)
    li   t1, -1640531535
    mul  t0, t0, t1
    li   t1, 97
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    mv   a0, t0
    j    f3__ret
f3__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -16
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -24(s0)
    li   t0, 0
    sw   t0, -28(s0)
    li   t0, 0
    sw   t0, -32(s0)
main__loop0:
    lw   t0, -32(s0)
    lw   t1, -20(s0)
    slt  t0, t0, t1
    beqz t0, main__endloop1
    lw   t0, -28(s0)
    lw   t1, -24(s0)
    lw   t2, -32(s0)
    add  t1, t1, t2
    li   t2, 2147483647
    and  t1, t1, t2
    addi sp, sp, -4
    sw   t0, 0(sp)
    mv   a0, t1
    call f1
    lw   t0, 0(sp)
    addi sp, sp, 4
    mv   t1, a0
    add  t0, t0, t1
    li   t1, 2147483647
    and  t0, t0, t1
    sw   t0, -28(s0)
    lw   t0, -32(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -32(s0)
    j    main__loop0
main__endloop1:
    lw   t0, -28(s0)
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 10
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
