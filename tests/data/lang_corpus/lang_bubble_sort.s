.text
_start:
    call main
    li   a7, 93
    ecall
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s0, 8(sp)
    addi s0, sp, 16
    addi sp, sp, -272
    li   a7, 5
    ecall
    mv   t0, a0
    sw   t0, -20(s0)
    addi t0, s0, -276
    addi t1, s0, -20
main__zero0:
    bge  t0, t1, main__endzero1
    sw   zero, 0(t0)
    addi t0, t0, 4
    j    main__zero0
main__endzero1:
    li   t0, 0
    sw   t0, -280(s0)
main__loop2:
    lw   t0, -280(s0)
    lw   t1, -20(s0)
    slt  t0, t0, t1
    beqz t0, main__endloop3
    li   a7, 5
    ecall
    mv   t0, a0
    addi t1, s0, -276
    lw   t2, -280(s0)
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    lw   t0, -280(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -280(s0)
    j    main__loop2
main__endloop3:
    li   t0, 0
    sw   t0, -280(s0)
main__loop4:
    lw   t0, -280(s0)
    lw   t1, -20(s0)
    li   t2, 1
    sub  t1, t1, t2
    slt  t0, t0, t1
    beqz t0, main__endloop5
    li   t0, 0
    sw   t0, -284(s0)
main__loop6:
    lw   t0, -284(s0)
    lw   t1, -20(s0)
    lw   t2, -280(s0)
    sub  t1, t1, t2
    li   t2, 1
    sub  t1, t1, t2
    slt  t0, t0, t1
    beqz t0, main__endloop7
    addi t0, s0, -276
    lw   t1, -284(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    addi t1, s0, -276
    lw   t2, -284(s0)
    li   t3, 1
    add  t2, t2, t3
    slli t2, t2, 2
    add  t1, t1, t2
    lw   t1, 0(t1)
    slt  t0, t1, t0
    beqz t0, main__endif8
    addi t0, s0, -276
    lw   t1, -284(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    sw   t0, -288(s0)
    addi t0, s0, -276
    lw   t1, -284(s0)
    li   t2, 1
    add  t1, t1, t2
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    addi t1, s0, -276
    lw   t2, -284(s0)
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    lw   t0, -288(s0)
    addi t1, s0, -276
    lw   t2, -284(s0)
    li   t3, 1
    add  t2, t2, t3
    slli t2, t2, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
main__endif8:
    lw   t0, -284(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -284(s0)
    j    main__loop6
main__endloop7:
    lw   t0, -280(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -280(s0)
    j    main__loop4
main__endloop5:
    li   t0, 0
    sw   t0, -280(s0)
main__loop9:
    lw   t0, -280(s0)
    lw   t1, -20(s0)
    slt  t0, t0, t1
    beqz t0, main__endloop10
    addi t0, s0, -276
    lw   t1, -280(s0)
    slli t1, t1, 2
    add  t0, t0, t1
    lw   t0, 0(t0)
    mv   a0, t0
    li   a7, 1
    ecall
    li   t0, 0
    li   t0, 32
    mv   a0, t0
    li   a7, 11
    ecall
    li   t0, 0
    lw   t0, -280(s0)
    li   t1, 1
    add  t0, t0, t1
    sw   t0, -280(s0)
    j    main__loop9
main__endloop10:
    li   t0, 0
    mv   a0, t0
    j    main__ret
main__ret:
    mv   sp, s0
    lw   ra, -4(sp)
    lw   s0, -8(sp)
    ret
