"""Unit tests for the disassembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_program, format_instruction
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction


class TestFormatting:
    def test_r_type(self):
        assert format_instruction(Instruction("add", rd=10, rs1=11, rs2=12)) == "add a0, a1, a2"

    def test_i_type_alu(self):
        assert format_instruction(Instruction("addi", rd=1, rs1=2, imm=-5)) == "addi ra, sp, -5"

    def test_load_uses_memory_syntax(self):
        assert format_instruction(Instruction("lw", rd=10, rs1=2, imm=8)) == "lw a0, 8(sp)"

    def test_store_uses_memory_syntax(self):
        assert format_instruction(Instruction("sw", rs1=2, rs2=10, imm=-4)) == "sw a0, -4(sp)"

    def test_branch(self):
        assert format_instruction(Instruction("beq", rs1=5, rs2=6, imm=16)) == "beq t0, t1, 16"

    def test_jal_and_jalr(self):
        assert format_instruction(Instruction("jal", rd=1, imm=-8)) == "jal ra, -8"
        assert format_instruction(Instruction("jalr", rd=0, rs1=1, imm=0)) == "jalr zero, 0(ra)"

    def test_lui(self):
        assert format_instruction(Instruction("lui", rd=10, imm=0x12345)) == "lui a0, 0x12345"

    def test_system_instructions(self):
        assert format_instruction(Instruction("ecall")) == "ecall"
        assert format_instruction(Instruction("ebreak", imm=1)) == "ebreak"
        assert format_instruction(Instruction("fence")) == "fence"


class TestDisassemble:
    def test_disassemble_word(self):
        word = encode(Instruction("xor", rd=3, rs1=4, rs2=5))
        assert disassemble(word) == "xor gp, tp, t0"

    def test_reassembly_roundtrip(self):
        """Disassembled text re-assembles to the same words."""
        source = """
        _start:
            addi a0, zero, 10
            add  a1, a0, a0
            sw   a1, 0(sp)
            lw   a2, 0(sp)
            and  a3, a2, a1
        """
        program = assemble(source)
        listing = [disassemble(program.word_at(instr.address))
                   for instr in program.instructions]
        reassembled = assemble("\n".join(listing))
        assert reassembled.code == program.code

    def test_disassemble_program_listing(self):
        program = assemble("nop\nnop")
        lines = disassemble_program(program.code, base=program.code_base)
        assert len(lines) == 2
        assert lines[0].startswith("00000000:")
        assert "addi" in lines[0]

    def test_disassemble_program_handles_bad_words(self):
        lines = disassemble_program(b"\xff\xff\xff\xff")
        assert ".word" in lines[0]
