"""Regression tests for the CPU hot-path optimisations.

The decoded-instruction cache, the executor dispatch table and the streaming
trace mode are pure performance work: they must not change a single observable
bit.  These tests pin that down by comparing, for every seed workload, the
cached/streamed execution against the uncached reference -- trace records,
cycle accounting, outputs, and the attestation measurement ``(A, L)``.
"""

import pytest

from repro.cpu.core import DECODE_CACHE, Cpu, CpuConfig
from repro.cpu.trace import StreamingTrace, TraceNotRecordedError
from repro.lofat.engine import attest_execution
from repro.workloads import all_workloads

WORKLOAD_NAMES = [workload.name for workload in all_workloads()]


def _run(program, inputs, **config_overrides):
    cpu = Cpu(program, inputs=list(inputs), config=CpuConfig(**config_overrides))
    return cpu.run()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_decode_cache_produces_identical_traces(name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = workload.build()
    cached = _run(program, workload.inputs, decoded_instruction_cache=True)
    uncached = _run(program, workload.inputs, decoded_instruction_cache=False)

    assert cached.output == uncached.output
    assert cached.exit_code == uncached.exit_code
    assert cached.instructions == uncached.instructions
    assert cached.cycles == uncached.cycles
    assert cached.registers == uncached.registers
    assert len(cached.trace) == len(uncached.trace)
    for lhs, rhs in zip(cached.trace, uncached.trace):
        assert (lhs.pc, lhs.word, lhs.next_pc, lhs.cycle, lhs.kind, lhs.taken) \
            == (rhs.pc, rhs.word, rhs.next_pc, rhs.cycle, rhs.kind, rhs.taken)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_measurements_identical_with_and_without_cache(name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = workload.build()
    _, cached = attest_execution(
        program, inputs=list(workload.inputs),
        cpu_config=CpuConfig(decoded_instruction_cache=True))
    _, uncached = attest_execution(
        program, inputs=list(workload.inputs),
        cpu_config=CpuConfig(decoded_instruction_cache=False))
    assert cached.measurement == uncached.measurement
    assert cached.metadata.to_bytes() == uncached.metadata.to_bytes()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_streaming_trace_measurement_identical(name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = workload.build()
    collected_result, collected = attest_execution(
        program, inputs=list(workload.inputs), collect_trace=True)
    streamed_result, streamed = attest_execution(
        program, inputs=list(workload.inputs), collect_trace=False)

    assert streamed.measurement == collected.measurement
    assert streamed.metadata.to_bytes() == collected.metadata.to_bytes()
    # Summary statistics survive streaming; the record list does not.
    assert isinstance(streamed_result.trace, StreamingTrace)
    assert streamed_result.trace.summary() == collected_result.trace.summary()
    assert streamed_result.cycles == collected_result.cycles


def test_streaming_trace_refuses_record_access():
    workload = all_workloads()[0]
    result, _ = attest_execution(
        workload.build(), inputs=list(workload.inputs), collect_trace=False)
    with pytest.raises(TraceNotRecordedError):
        list(result.trace)
    with pytest.raises(TraceNotRecordedError):
        result.trace.records
    with pytest.raises(TraceNotRecordedError):
        result.trace.executed_edges


def test_decode_cache_is_shared_across_runs():
    workload = all_workloads()[0]
    program = workload.build()
    DECODE_CACHE.clear()
    _run(program, workload.inputs)
    decoded_once = DECODE_CACHE.cached_instructions
    assert decoded_once > 0
    _run(program, workload.inputs)
    # The second run decoded nothing new.
    assert DECODE_CACHE.cached_instructions == decoded_once
    assert DECODE_CACHE.cached_programs == 1


def test_decode_cache_bounded():
    cache_type = type(DECODE_CACHE)
    small = cache_type(max_programs=2)
    programs = [w.build() for w in all_workloads()[:3]]
    for program in programs:
        table = small.table_for(program)
        table[0] = (0, None)
    assert small.cached_programs <= 2
