"""Unit tests for the C-FLAT and static-attestation baseline models.

The model classes live in :mod:`repro.schemes`; the historical
``repro.baselines`` package (a deprecation shim after the models moved) has
been removed, and :class:`TestBaselinesShimRemoved` pins its absence.
"""

import pytest

from repro.schemes.cflat import CFlatAttestation, CFlatCostModel
from repro.schemes.static import StaticAttestation
from repro.cpu.core import Cpu
from repro.isa.assembler import assemble
from repro.workloads import get_workload


class TestBaselinesShimRemoved:
    def test_shim_package_is_gone(self):
        with pytest.raises(ImportError):
            import repro.baselines  # noqa: F401


class TestCFlatCostModel:
    def test_per_event_cycles(self):
        model = CFlatCostModel(trampoline_cycles=10, world_switch_cycles=20,
                               hash_update_cycles=30)
        assert model.per_event_cycles == 60
        assert model.overhead_cycles(5) == 300

    def test_loop_discount(self):
        model = CFlatCostModel(trampoline_cycles=10, world_switch_cycles=0,
                               hash_update_cycles=90, loop_event_discount=1.0)
        # All 10 events are loop events whose hash update is skipped.
        assert model.overhead_cycles(10, loop_events=10) == 10 * 10

    def test_loop_events_clamped(self):
        model = CFlatCostModel(loop_event_discount=0.5)
        assert model.overhead_cycles(4, loop_events=100) <= model.overhead_cycles(4)


class TestCFlatAttestation:
    def test_overhead_linear_in_events(self):
        """The paper's comparison point: C-FLAT cost grows with event count."""
        cflat = CFlatAttestation()
        few = get_workload("figure4_loop").with_inputs([2])
        many = get_workload("figure4_loop").with_inputs([40])
        _, result_few = cflat.attest_program(few.build(), inputs=few.inputs)
        _, result_many = cflat.attest_program(many.build(), inputs=many.inputs)
        assert result_many.control_flow_events > result_few.control_flow_events
        assert result_many.overhead_cycles > result_few.overhead_cycles
        per_event_few = result_few.overhead_cycles / result_few.control_flow_events
        per_event_many = result_many.overhead_cycles / result_many.control_flow_events
        assert per_event_few == pytest.approx(per_event_many)

    def test_overhead_is_positive_and_nonzero(self):
        workload = get_workload("crc32")
        cflat = CFlatAttestation()
        _, outcome = cflat.attest_program(workload.build(), inputs=workload.inputs)
        assert outcome.overhead_cycles > 0
        assert outcome.overhead_ratio > 0.0

    def test_measurement_matches_trace_pairs(self):
        workload = get_workload("auth_check")
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs))
        result = cpu.run()
        cflat = CFlatAttestation()
        outcome = cflat.attest(program, result)
        assert outcome.measurement == cflat.measure_trace(result.trace)
        assert len(outcome.measurement) == 64

    def test_measurement_detects_divergent_paths(self):
        workload = get_workload("auth_check")
        program = workload.build()
        cflat = CFlatAttestation()
        good = Cpu(program, inputs=[4242]).run()
        bad = Cpu(program, inputs=[1]).run()
        assert cflat.measure_trace(good.trace) != cflat.measure_trace(bad.trace)

    def test_instrumented_instruction_count(self):
        program = assemble("""
        _start:
            beq a0, a1, out
            addi a0, a0, 1
        out:
            jal zero, out
        """)
        assert CFlatAttestation().instrumented_instruction_count(program) == 2

    def test_zero_baseline_cycles_overhead_ratio(self):
        from repro.schemes.cflat import CFlatResult
        result = CFlatResult(baseline_cycles=0, attested_cycles=0,
                             control_flow_events=0, measurement=b"",
                             instrumented_instructions=0)
        assert result.overhead_ratio == 0.0


class TestStaticAttestation:
    def test_measurement_is_stable(self):
        program = get_workload("syringe_pump").build()
        static = StaticAttestation()
        assert static.measure(program).digest == static.measure(program).digest

    def test_measurement_changes_with_binary(self):
        static = StaticAttestation()
        a = static.measure(assemble("nop"))
        b = static.measure(assemble("addi a0, a0, 1"))
        assert a.digest != b.digest

    def test_verify_accepts_genuine_image(self):
        program = get_workload("auth_check").build()
        static = StaticAttestation()
        assert static.verify(program, static.measure(program))

    def test_verify_rejects_other_image(self):
        static = StaticAttestation()
        a = get_workload("auth_check").build()
        b = get_workload("dispatcher").build()
        assert not static.verify(b, static.measure(a))

    def test_static_attestation_misses_runtime_attacks(self):
        """The motivating gap: run-time attacks leave the image unchanged."""
        workload = get_workload("auth_check")
        program = workload.build()
        static = StaticAttestation()
        benign = Cpu(program, inputs=[4242]).run()
        attacked = Cpu(program, inputs=[1]).run()
        assert static.detects_runtime_attack(benign, attacked, program) is False

    def test_measurement_includes_data_section(self):
        static = StaticAttestation()
        a = static.measure(assemble(".data\n.word 1\n.text\nnop"))
        b = static.measure(assemble(".data\n.word 2\n.text\nnop"))
        assert a.digest != b.digest
        assert a.data_bytes == 4
