"""End-to-end tests for the ``repro analyze`` CLI command."""

import json

import pytest

from repro.cli import main

#: A small, fast target mix: one corpus entry and one workload.
TARGETS = ["showcase_gcd", "figure4_loop"]


def _run(capsys, *argv):
    code = main(["analyze", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTextOutput:
    def test_named_targets(self, capsys):
        code, out, _ = _run(capsys, *TARGETS)
        assert code == 0
        assert "== showcase_gcd" in out
        assert "== figure4_loop" in out
        assert "2 program(s) analyzed" in out

    def test_loop_bounds_rendered(self, capsys):
        code, out, _ = _run(capsys, "figure4_loop")
        assert code == 0
        assert "loop @" in out

    def test_unknown_target_exits_2(self, capsys):
        code, _, err = _run(capsys, "no_such_program")
        assert code == 2
        assert "unknown analyze target" in err


class TestJsonOutput:
    def test_report_shape(self, capsys):
        code, out, _ = _run(capsys, "--json", *TARGETS)
        assert code == 0
        report = json.loads(out)
        assert report["version"] == 1
        names = [row["name"] for row in report["programs"]]
        assert names == TARGETS
        for row in report["programs"]:
            assert row["blocks"] > 0
            assert len(row["policy_digest"]) == 64
            assert row["soundness_violations"] == []
            assert isinstance(row["findings"], list)

    def test_selfcheck_clean(self, capsys):
        code, out, _ = _run(capsys, "--json", "--selfcheck", *TARGETS)
        assert code == 0
        report = json.loads(out)
        for row in report["programs"]:
            assert row["soundness_violations"] == []


class TestBaseline:
    def test_roundtrip_is_clean(self, capsys, tmp_path):
        code, out, _ = _run(capsys, "--json", *TARGETS)
        assert code == 0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(out)
        code, out, _ = _run(capsys, "--json", "--baseline", str(baseline),
                            *TARGETS)
        assert code == 0
        report = json.loads(out)
        for row in report["programs"]:
            assert row["new_findings"] == []

    def test_new_finding_fails(self, capsys, tmp_path):
        # An empty baseline makes every existing finding "new"; pick a
        # target that is known to carry at least one finding (the
        # vulnerable_process workload ships an intentionally dead gadget).
        code, out, _ = _run(capsys, "--json", "vulnerable_process")
        assert code == 0
        findings = json.loads(out)["programs"][0]["findings"]
        assert findings, "expected vulnerable_process to carry lint findings"

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "programs": []}))
        code, out, _ = _run(capsys, "--json", "--baseline", str(baseline),
                            "vulnerable_process")
        assert code == 1
        report = json.loads(out)
        assert report["programs"][0]["new_findings"] == findings

    def test_unreadable_baseline_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, _, err = _run(capsys, "--baseline", str(bad), *TARGETS)
        assert code == 2
        assert "cannot read baseline" in err


class TestPolicyArtifacts:
    def test_policy_out_writes_valid_policies(self, capsys, tmp_path):
        from repro.dataflow import StaticPolicy

        out_dir = tmp_path / "policies"
        code, _, _ = _run(capsys, "--policy-out", str(out_dir), *TARGETS)
        assert code == 0
        for name in TARGETS:
            path = out_dir / ("%s.policy.json" % name)
            assert path.exists()
            policy = StaticPolicy.from_json(json.loads(path.read_text()))
            assert policy.valid_pairs

    def test_lang_file_target(self, capsys, tmp_path):
        source = tmp_path / "tiny.lang"
        source.write_text(
            "fn main() {\n"
            "    var i = 0;\n"
            "    while (i < 5) { i = i + 1; }\n"
            "    print(i);\n"
            "    printc(10);\n"
            "    return 0;\n"
            "}\n"
        )
        code, out, _ = _run(capsys, "--json", str(source))
        assert code == 0
        report = json.loads(out)
        assert report["programs"][0]["name"] == "tiny"
        bounds = report["programs"][0]["loop_bounds"]
        assert any(b["max_back_edges"] is not None for b in bounds)
