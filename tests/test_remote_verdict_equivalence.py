"""Over-the-wire verification must be indistinguishable from in-process.

The acceptance pin of the server PR: for all three schemes, a report that
travels through the asyncio server (framing, database-mode verification,
session pooling) carries a byte-identical measurement payload ``A || L`` to
the report the in-process protocol produces, and the verdict -- accepted
flag, reason, and its wire serialisation -- is byte-identical too.  Attacked
executions keep their scheme-dependent expectations: rejected under lofat
and cflat, accepted (the paper's motivating gap) under static.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.attacks import get_attack
from repro.attestation.prover import Prover
from repro.attestation.verifier import Verifier
from repro.service.client import AttestationClient, SimulatedProver
from repro.service.server import AttestationServer
from repro.workloads import get_workload

SCHEMES = ("lofat", "cflat", "static")
WORKLOAD = "syringe_pump"


def in_process_protocol(workload_name, scheme, attack=None, inputs=None):
    """One challenge-response round entirely in process."""
    workload = get_workload(workload_name)
    if inputs is None:
        inputs = list(workload.inputs)
    program = workload.build()
    prover = Prover({workload_name: program})
    verifier = Verifier()
    verifier.register_program(workload_name, program)
    verifier.register_device_key(
        "prover-0", prover.keystore.export_for_verifier())
    if attack is not None:
        prover.install_attack(get_attack(attack).prover_hook(program))
    challenge = verifier.challenge(workload_name, inputs, scheme=scheme)
    report = prover.attest(challenge)
    verifier.precompute_measurement(workload_name, inputs, scheme=scheme)
    verdict = verifier.verify(report, mode="database")
    return report, verdict


def over_the_wire(workload_name, scheme):
    """The same round through the asyncio server; returns (report, frame)."""
    async def go():
        server = AttestationServer()
        await server.start()
        try:
            client = AttestationClient(
                "127.0.0.1", server.port, "prover-0",
                SimulatedProver(device_id="prover-0"))
            await client.connect()
            challenge = await client.request_challenge(
                workload_name, None, scheme)
            report = client.prover.respond(challenge)
            from repro.attestation.framing import FrameType, write_frame
            await write_frame(client._writer, FrameType.REPORT,
                              report.to_bytes())
            _, verdict_payload = await client._expect(FrameType.VERDICT)
            await client.close()
            return report, verdict_payload
        finally:
            await server.stop()
    return asyncio.run(go())


def verdict_wire_document(verdict):
    """The VERDICT frame document an in-process verdict corresponds to."""
    return {
        "accepted": verdict.accepted,
        "reason": verdict.reason.value,
        "detail": verdict.detail,
    }


class TestBenignEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_verdict_and_payload_are_byte_identical(self, scheme):
        local_report, local_verdict = in_process_protocol(WORKLOAD, scheme)
        remote_report, verdict_payload = over_the_wire(WORKLOAD, scheme)

        # The measured path P = (A, L) -- everything the signature covers
        # except the per-session nonce -- must be byte-identical.
        assert remote_report.measurement == local_report.measurement
        assert (remote_report.metadata.to_bytes()
                == local_report.metadata.to_bytes())
        assert remote_report.payload == local_report.payload
        assert remote_report.scheme == local_report.scheme
        assert remote_report.exit_code == local_report.exit_code
        assert remote_report.output == local_report.output

        # The verdict must be byte-identical on the wire: serialising the
        # in-process verdict yields exactly the VERDICT frame payload.
        remote_document = json.loads(verdict_payload.decode("utf-8"))
        assert remote_document == verdict_wire_document(local_verdict)
        assert remote_document["accepted"] is True
        assert remote_document["reason"] == "accepted"

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_report_bytes_roundtrip_through_the_frame(self, scheme):
        """What the prover serialises is what the verifier deserialises."""
        from repro.attestation.protocol import AttestationReport

        remote_report, _ = over_the_wire(WORKLOAD, scheme)
        blob = remote_report.to_bytes()
        assert AttestationReport.from_bytes(blob).to_bytes() == blob


class TestFleetEquivalence:
    """A multi-worker fleet is wire-indistinguishable from one server.

    The fleet PR's acceptance pin: whichever worker the dispatcher routes
    the connection to, the VERDICT frame and the report payload are
    byte-identical to what the single-process server produces.
    """

    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        from repro.service.fleet import FleetServer

        fleet = FleetServer(
            host="127.0.0.1", port=0, workers=2,
            state_dir=str(tmp_path_factory.mktemp("fleet-state")))
        fleet.start()
        yield fleet
        fleet.stop()

    def over_the_fleet(self, fleet, workload_name, scheme):
        """One round through the fleet front door; returns (report, frame)."""
        async def go():
            client = AttestationClient(
                "127.0.0.1", fleet.port, "prover-0",
                SimulatedProver(device_id="prover-0"))
            await client.connect()
            challenge = await client.request_challenge(
                workload_name, None, scheme)
            report = client.prover.respond(challenge)
            from repro.attestation.framing import FrameType, write_frame
            await write_frame(client._writer, FrameType.REPORT,
                              report.to_bytes())
            _, verdict_payload = await client._expect(FrameType.VERDICT)
            await client.close()
            return report, verdict_payload
        return asyncio.run(go())

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fleet_verdicts_are_byte_identical_to_single_process(
            self, fleet, scheme):
        single_report, single_payload = over_the_wire(WORKLOAD, scheme)
        # Several rounds so the kernel's connection dispatch gets chances
        # to land on both workers; every verdict must match regardless.
        for _ in range(3):
            fleet_report, fleet_payload = self.over_the_fleet(
                fleet, WORKLOAD, scheme)
            assert fleet_payload == single_payload
            assert fleet_report.measurement == single_report.measurement
            assert (fleet_report.metadata.to_bytes()
                    == single_report.metadata.to_bytes())
            assert fleet_report.payload == single_report.payload
            document = json.loads(fleet_payload.decode("utf-8"))
            assert document["accepted"] is True
            assert document["reason"] == "accepted"


class TestAttackedEquivalence:
    """Attacked executions keep their scheme-dependent verdicts remotely."""

    ATTACK = "syringe_overdose"

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_attacked_verdicts_match_in_process(self, scheme):
        scenario = get_attack(self.ATTACK)
        program = get_workload(scenario.workload_name).build()

        async def go():
            server = AttestationServer()
            await server.start()
            try:
                prover = SimulatedProver(device_id="prover-0")
                client = AttestationClient(
                    "127.0.0.1", server.port, "prover-0", prover)
                await client.connect()
                challenge = await client.request_challenge(
                    scenario.workload_name, list(scenario.challenge_inputs),
                    scheme)
                # Compromise the device exactly as the in-process run does.
                device = Prover({scenario.workload_name: program})
                device.install_attack(scenario.prover_hook(program))
                report = device.attest(challenge)
                verdict = await client.submit_report(report)
                await client.close()
                return verdict
            finally:
                await server.stop()

        remote_verdict = asyncio.run(go())
        local = in_process_protocol(
            scenario.workload_name, scheme, attack=self.ATTACK,
            inputs=list(scenario.challenge_inputs))[1]
        assert remote_verdict.accepted == local.accepted
        assert remote_verdict.reason == local.reason.value
        if scheme == "static":
            # The paper's motivating gap: static attestation cannot see
            # run-time attacks.
            assert remote_verdict.accepted
        else:
            assert not remote_verdict.accepted
