"""E8 -- Granularity ablation (paper §5.2 / §6.2).

LO-FAT's tracking granularity is configurable: the number of bits used to
re-encode indirect-branch targets (n), the number of branches per loop path
(l) and the nesting depth all trade on-chip memory against the precision of
the loop metadata.  This bench sweeps those knobs on the indirect-call-heavy
dispatcher workload and on the area model, reproducing the trade-off the
paper describes ("configuring these parameters to lower numbers reduces the
memory requirements significantly at the expense of coarser granularity").
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.sweep import granularity_sweep
from repro.lofat.area_model import AreaModel
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import attest_execution
from repro.workloads import get_workload


def test_e8_granularity_tradeoff(benchmark, report_writer):
    workload = get_workload("dispatcher")
    # Stress the dispatcher with a longer command sequence so truncation and
    # CAM pressure become visible at coarse configurations.
    stressed = workload.with_inputs([1, 2, 3, 1, 2, 3, 2, 1, 3, 3, 2, 1, 0])

    program = stressed.build()
    benchmark(lambda: attest_execution(program, inputs=list(stressed.inputs)))

    rows = granularity_sweep(stressed, indirect_bits=(2, 3, 4, 6),
                             max_branches=(8, 16, 24))
    table = format_table(
        rows,
        columns=["indirect_bits", "path_bits", "loop_mem_kbits", "distinct_paths",
                 "truncated_paths", "metadata_B"],
        title="E8: tracking granularity vs memory (dispatcher workload)",
    )
    report_writer("e8_granularity", table)

    # Memory cost is monotone in the path-ID width ...
    for bits in (2, 3, 4, 6):
        subset = [row for row in rows if row["indirect_bits"] == bits]
        memories = [row["loop_mem_kbits"] for row in sorted(subset, key=lambda r: r["path_bits"])]
        assert memories == sorted(memories)
    # ... and coarse path IDs truncate more paths than generous ones.
    coarse = sum(row["truncated_paths"] for row in rows if row["path_bits"] == 8)
    fine = sum(row["truncated_paths"] for row in rows if row["path_bits"] == 24)
    assert coarse >= fine


def test_e8_counter_width_ablation(benchmark, report_writer):
    """Design-choice ablation: the per-path iteration counter width."""
    workload = get_workload("crc32")
    program = workload.build()

    def run(width):
        config = LoFatConfig(counter_width_bits=width)
        _, measurement = attest_execution(program, inputs=list(workload.inputs),
                                          config=config)
        area = AreaModel(config).estimate()
        saturated = 0
        for loop in measurement.metadata:
            for path in loop.paths:
                if path.iterations >= (1 << width) - 1:
                    saturated += 1
        return config, measurement, area, saturated

    benchmark(lambda: run(8))

    rows = []
    for width in (2, 4, 8, 16):
        config, measurement, area, saturated = run(width)
        rows.append({
            "counter_bits": width,
            "loop_mem_kbits": config.total_loop_memory_bits // 1024,
            "bram36": area.bram36,
            "saturated_paths": saturated,
            "metadata_B": measurement.metadata.size_bytes,
        })
    table = format_table(
        rows,
        title="E8b: iteration-counter width vs memory and saturation (crc32)",
    )
    report_writer("e8b_counter_width", table)

    # Wider counters stop saturating; memory grows linearly with the width.
    assert rows[0]["saturated_paths"] >= rows[-1]["saturated_paths"]
    assert rows[-1]["saturated_paths"] == 0
    memories = [row["loop_mem_kbits"] for row in rows]
    assert memories == sorted(memories)
