"""E16 -- StaticPolicy pre-screen vs golden-replay rejection cost.

A compromised device whose run over-iterates a loop produces a report the
verifier must reject.  Without a policy the rejection is discovered by
golden replay: the verifier re-simulates the whole program to compute the
reference measurement, then compares.  With a :class:`StaticPolicy`
installed, the infeasible loop record is rejected in the structural
metadata check -- before any simulation is spent on the report.  This
experiment measures the per-report rejection cost of both paths and
asserts the pre-screen is at least 5x cheaper.

Each tampered report carries a *distinct* iteration count so the
verifier's memoised structural verdicts cannot serve a cached rejection;
the numbers are honest per-report costs.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.attestation import Prover, Verifier
from repro.attestation.crypto import sign_report
from repro.attestation.protocol import AttestationReport
from repro.attestation.verifier import VerdictReason
from repro.dataflow import analyze_program
from repro.workloads import get_workload

WORKLOAD = "crc32"
ROUNDS = 12


def _protocol():
    workload = get_workload(WORKLOAD)
    program = workload.build()
    prover = Prover({workload.name: program}, device_id="device-e16")
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key(
        "device-e16", prover.keystore.export_for_verifier())
    return workload, program, prover, verifier


def _tampered_report(benign, prover, challenge, extra_iterations, entry):
    """The benign report with one loop record inflated and re-signed.

    Models a compromised prover whose loop monitor output was tampered
    with: the metadata no longer matches any feasible execution, but the
    signature is valid (the attacker runs on the device).
    """
    from dataclasses import replace

    metadata = benign.metadata.__class__.from_bytes(benign.metadata.to_bytes())
    target = next(
        r for r in metadata.loops if r.entry == entry and r.iterations > 0)
    target.iterations += extra_iterations
    # Keep the per-path counts consistent with the inflated total, so the
    # tamper survives the CFG structural checks and (without a policy) is
    # only caught by full replay.
    target.paths[0] = replace(
        target.paths[0],
        iterations=target.paths[0].iterations + extra_iterations,
    )
    payload = benign.measurement + metadata.to_bytes()
    return AttestationReport(
        program_id=benign.program_id,
        measurement=benign.measurement,
        metadata=metadata,
        nonce=challenge.nonce,
        signature=sign_report(payload, challenge.nonce, prover.keystore),
        exit_code=benign.exit_code,
        output=benign.output,
        scheme=benign.scheme,
    )


def _timed_rejections(workload, prover, verifier, benign, entry,
                      expect_reason):
    """Mean seconds per rejected report over ``ROUNDS`` distinct reports."""
    total = 0.0
    for round_index in range(ROUNDS):
        challenge = verifier.challenge(workload.name, list(workload.inputs))
        report = _tampered_report(
            benign, prover, challenge,
            extra_iterations=1000 + round_index, entry=entry)
        started = time.perf_counter()
        verdict = verifier.verify(report, device_id="device-e16")
        total += time.perf_counter() - started
        assert not verdict.accepted
        assert verdict.reason is expect_reason, verdict
    return total / ROUNDS


def test_e16_policy_prescreen_vs_replay_rejection(benchmark, report_writer):
    workload, program, prover, verifier = _protocol()
    benign_challenge = verifier.challenge(workload.name, list(workload.inputs))
    benign = prover.attest(benign_challenge)
    assert verifier.verify(benign, device_id="device-e16").accepted

    # The loop the tamper targets must carry a statically proven bound,
    # otherwise the policy path would have nothing to screen.
    policy = analyze_program(program).policy
    entry = next(
        r.entry for r in benign.metadata.loops
        if r.iterations > 0 and policy.bound_for(r.entry) is not None)

    # Replay path: no policy installed -- every rejection pays a full
    # reference re-simulation before the mismatch is noticed.
    replay_s = _timed_rejections(
        workload, prover, verifier, benign, entry,
        VerdictReason.METADATA_MISMATCH)

    # Policy path: the same tampered reports die in the structural check.
    verifier.install_policy(workload.name)
    policy_s = _timed_rejections(
        workload, prover, verifier, benign, entry,
        VerdictReason.POLICY_VIOLATION)

    # Benign reports still verify with the policy installed.
    challenge = verifier.challenge(workload.name, list(workload.inputs))
    assert verifier.verify(
        prover.attest(challenge), device_id="device-e16").accepted

    # Timed kernel for the pytest-benchmark table: one pre-screened
    # rejection end to end (challenge + tampered report + verdict).
    counter = {"n": 0}

    def kernel():
        counter["n"] += 1
        chall = verifier.challenge(workload.name, list(workload.inputs))
        report = _tampered_report(
            benign, prover, chall,
            extra_iterations=10_000 + counter["n"], entry=entry)
        assert not verifier.verify(report, device_id="device-e16").accepted

    benchmark(kernel)

    speedup = replay_s / policy_s
    rows = [
        {
            "rejection path": "golden replay",
            "verdict": "metadata_mismatch",
            "ms/report": round(replay_s * 1e3, 3),
            "speedup": 1.0,
        },
        {
            "rejection path": "policy pre-screen",
            "verdict": "policy_violation",
            "ms/report": round(policy_s * 1e3, 3),
            "speedup": round(speedup, 1),
        },
    ]
    analysis = analyze_program(program)
    table = format_table(
        rows,
        columns=["rejection path", "verdict", "ms/report", "speedup"],
        title="E16: rejecting an infeasible report (%s, %d loop bounds, "
              "%d rounds each)"
              % (WORKLOAD, len(analysis.policy.loop_bounds), ROUNDS),
    )
    report_writer("e16_policy_screen", table,
                  metrics={"prescreen_speedup": speedup})

    assert speedup >= 5.0, (
        "policy pre-screen rejection should be >=5x cheaper than golden "
        "replay, measured %.1fx" % speedup
    )
