"""E2 -- LO-FAT internal latency and stall-freedom (paper §6.1).

The paper reports that LO-FAT internally needs 2 cycles per branch for
branch/loop-status tracking and 5 cycles at loop exit for path-ID generation
and counter-memory update, while never stalling the processor or dropping a
(Src, Dest) pair.  This bench regenerates those per-workload latency numbers
and verifies the no-stall / no-drop property.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.cpu.core import Cpu, CpuConfig
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine
from repro.workloads import all_workloads, get_workload


#: This experiment is about the engine's *cycle model*: observe per record
#: (legacy loop) so pair arrival times match the hardware's per-cycle snoop
#: exactly.  The batched fast path is digest-identical but coarsens arrival
#: timing, which would inflate the transient buffer-occupancy numbers.
_CYCLE_FIDELITY = CpuConfig(fast_path=False)


def _attest(workload, config=None):
    program = workload.build()
    plain = Cpu(program, inputs=list(workload.inputs)).run()
    cpu = Cpu(program, inputs=list(workload.inputs), config=_CYCLE_FIDELITY)
    engine = LoFatEngine(config)
    cpu.attach_monitor(engine.observe)
    attested = cpu.run()
    measurement = engine.finalize()
    return plain, attested, engine, measurement


def test_e2_internal_latency_and_no_stalls(benchmark, report_writer):
    config = LoFatConfig()
    workload = get_workload("bubble_sort")
    benchmark(lambda: _attest(workload, config))

    rows = []
    for workload in all_workloads():
        plain, attested, engine, measurement = _attest(workload, config)
        stats = engine.branch_filter.stats
        hash_stats = measurement.stats["hash_engine"]
        rows.append({
            "workload": workload.name,
            "cycles": plain.cycles,
            "cf_events": stats.control_flow_instructions,
            "loop_exits": stats.loop_exits,
            "internal_latency": engine.branch_filter.internal_latency_cycles,
            "branch_lat_cycles": config.branch_tracking_latency * stats.control_flow_instructions,
            "exit_lat_cycles": config.loop_exit_latency * stats.loop_exits,
            "stall_cycles": attested.cycles - plain.cycles,
            "dropped_pairs": hash_stats["dropped_pairs"],
            "max_buffer": hash_stats["max_buffer_occupancy"],
        })
    table = format_table(
        rows,
        title=("E2: internal LO-FAT latency (2 cycles/branch, 5 cycles/loop exit), "
               "processor stalls and dropped pairs"),
    )
    report_writer("e2_latency", table)

    for row in rows:
        # The latency decomposition is exactly 2/branch + 5/loop-exit.
        assert row["internal_latency"] == row["branch_lat_cycles"] + row["exit_lat_cycles"]
        # The processor never stalls and no pair is ever dropped.
        assert row["stall_cycles"] == 0
        assert row["dropped_pairs"] == 0
