"""E6 -- Hash-engine throughput and input buffering (paper §5.3 / §6.1).

The SHA-3 engine absorbs one 64-bit (Src, Dest) pair per cycle but stalls for
3 cycles after every 9 absorbed words; a small input cache buffer hides those
stalls.  This bench measures, across workloads and synthetic branch-density
sweeps, the engine utilisation, the buffer high-water mark and the minimum
buffer depth that avoids drops -- confirming the design point that the
default configuration never loses a pair and never stalls the core.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.sweep import buffer_depth_sweep, hash_density_sweep
from repro.lofat.config import LoFatConfig
from repro.lofat.hash_engine import HashEngine
from repro.workloads import all_workloads, get_workload
from repro.workloads.generator import density_sweep


def test_e6_engine_utilisation_per_workload(benchmark, report_writer):
    def absorb_stream():
        engine = HashEngine(LoFatConfig())
        for index in range(1000):
            engine.absorb_pair(index * 4, index * 4 + 8, arrival_cycle=index * 2)
        engine.flush_cycle_model()
        return engine

    benchmark(absorb_stream)

    workloads = all_workloads() + density_sweep([0, 2, 6], iterations=25)
    rows = hash_density_sweep(workloads)
    table = format_table(
        rows,
        columns=["workload", "instructions", "cycles", "cf_events", "density",
                 "pairs_absorbed", "engine_busy_%", "max_buffer", "dropped"],
        title="E6: hash-engine load vs branch density (real + synthetic workloads)",
    )
    report_writer("e6_hash_density", table)

    assert all(row["dropped"] == 0 for row in rows)
    # Denser branch streams load the engine more heavily.
    synthetic = [row for row in rows if row["workload"].startswith("synthetic")]
    busiest = max(synthetic, key=lambda row: row["density"])
    calmest = min(synthetic, key=lambda row: row["density"])
    assert busiest["engine_busy_%"] >= calmest["engine_busy_%"]


def test_e6_required_buffer_depth(benchmark, report_writer):
    workloads = [get_workload("crc32"), get_workload("bubble_sort"),
                 get_workload("matmul")] + density_sweep([0], iterations=20)
    benchmark(lambda: buffer_depth_sweep(workloads[:1], buffer_depths=(8,)))

    rows = buffer_depth_sweep(workloads, buffer_depths=(1, 2, 4, 8, 16))
    table = format_table(
        rows,
        title="E6b: input-buffer occupancy and drops vs configured depth",
    )
    report_writer("e6b_buffer_depth", table)

    # The default depth (8) never drops a pair on any workload.
    assert all(row["dropped_pairs"] == 0 for row in rows if row["buffer_depth"] >= 8)
    # Occupancy is bounded by the configured depth.
    assert all(row["max_occupancy"] <= row["buffer_depth"] for row in rows)
