"""E15 -- Compiled workload families at campaign scale.

The workload compiler's parameterized families (``repro.lang.families``)
exist to mass-produce structurally diverse provers; this benchmark proves
the pipeline actually absorbs them at scale.  The full family matrix --
every member of every family, two seeded input sets, all three schemes,
six re-attestation rounds -- is >= 1000 campaign jobs pushed end to end
through the two-stage capture/replay pipeline, and the report records the
two numbers that make that tractable: the dedup hit-rate (jobs served from
the content-addressed trace store instead of fresh CPU simulation) and the
end-to-end jobs/sec.

The dedup rate is structural, not a timing artifact: unique executions are
one per (member, input set) no matter how many schemes or rounds the sweep
multiplies on top, so the hit-rate floor asserted here cannot flake on a
slow runner.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.service import CampaignRunner, family_campaign
from repro.service.worker import clear_replay_cache

#: The project seed; makes every generated input vector reproducible.
SEED = 20170618
#: Re-attestation rounds.  28 members x 2 input sets x 3 schemes x 6
#: rounds = 1008 jobs, clearing the >= 1000 scale bar with margin.
ROUNDS = 6
#: Input-set variants per member (the preset default).
INPUT_SETS = 2
SCHEMES = 3
#: The scale bar: the sweep must be >= 1000 end-to-end campaign jobs.
MIN_JOBS = 1000


def _cold_run(spec, workers=4):
    """One cold two-stage run: fresh store, fresh replay cache."""
    clear_replay_cache()
    result = CampaignRunner().run(spec, workers=workers, pipeline="capture")
    assert result.ok, [r.job.job_id for r in result.failures]
    return result


def _row(label, result):
    stats = result.capture_stats
    jobs = stats["jobs"]
    return {
        "sweep": label,
        "jobs": jobs,
        "unique_exec": stats["unique_executions"],
        "deduped": stats["deduped_jobs"],
        "dedup_rate": round(stats["deduped_jobs"] / jobs, 3),
        "seconds": round(result.total_seconds, 3),
        "jobs_per_s": round(jobs / result.total_seconds, 1),
    }


def test_e15_family_matrix_scale(benchmark, report_writer):
    # Per-family sweeps first: the table shows where the population's
    # unique executions come from (and each family compiles + attests
    # green in isolation).
    rows = []
    for family in ("arrays", "branchy", "calls", "nest"):
        spec = family_campaign(seed=SEED, families=[family],
                               input_sets=INPUT_SETS, repeats=ROUNDS)
        rows.append(_row(family, _cold_run(spec)))

    # The full matrix: every member of every family.
    spec = family_campaign(seed=SEED, input_sets=INPUT_SETS, repeats=ROUNDS)
    full = _cold_run(spec)
    rows.append(_row("all families", full))

    stats = full.capture_stats
    members = sum(r["unique_exec"] for r in rows[:-1]) // INPUT_SETS

    # Scale bar: >= 1000 jobs through the two-stage pipeline, all green.
    assert stats["jobs"] >= MIN_JOBS, stats
    assert stats["jobs"] == len(full.results)
    assert stats["jobs"] == members * INPUT_SETS * SCHEMES * ROUNDS

    # Structural dedup: one unique execution per (member, input set);
    # every scheme/round multiple is served from the trace store.
    assert stats["unique_executions"] == members * INPUT_SETS
    assert stats["deduped_jobs"] == stats["jobs"] - stats["unique_executions"]
    assert rows[-1]["dedup_rate"] >= 0.9, rows[-1]

    # Timed kernel: the full matrix against a warm store -- the
    # steady-state cost of re-attesting the whole family population.
    warm_runner = CampaignRunner()
    warm_runner.run(spec, workers=4)
    benchmark(lambda: warm_runner.run(spec, workers=4))

    table = format_table(
        rows,
        columns=["sweep", "jobs", "unique_exec", "deduped", "dedup_rate",
                 "seconds", "jobs_per_s"],
        title="E15: family matrix at campaign scale "
              "(%d members x %d input sets x %d schemes x %d rounds)"
              % (members, INPUT_SETS, SCHEMES, ROUNDS),
    )
    report_writer("e15_family_scale", table)


def test_e15_seed_reproducibility():
    """Same seed -> byte-identical job population; different seed -> same
    member names but different input vectors (sources are seed-free)."""
    a = family_campaign(seed=SEED, families=["nest"], input_sets=1)
    b = family_campaign(seed=SEED, families=["nest"], input_sets=1)
    c = family_campaign(seed=SEED + 1, families=["nest"], input_sets=1)
    assert [w.name for w in a.workloads] == [w.name for w in b.workloads]
    assert [w.input_sets for w in a.workloads] == [
        w.input_sets for w in b.workloads]
    assert [w.name for w in a.workloads] == [w.name for w in c.workloads]
    assert [w.input_sets for w in a.workloads] != [
        w.input_sets for w in c.workloads]
