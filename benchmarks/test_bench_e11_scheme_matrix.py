"""E11 -- Scheme matrix: LO-FAT vs C-FLAT vs static through the unified API.

The paper's comparative claims, reproduced through one code path: every
scheme is driven by the same challenge-response protocol, measured by its
:class:`repro.schemes.MeasurementSession`, and verified against the shared
measurement database.  The table regenerates

* the overhead comparison (§6.1): LO-FAT and static attest at zero extra
  cycles, C-FLAT pays a per-control-flow-event cost;
* the report sizes (64-byte control-flow hashes + loop metadata vs the
  32-byte image hash);
* the detection matrix (Figure 1 / §2): control-flow schemes reject every
  attack class, static attestation accepts all of them.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.attacks import ATTACK_REGISTRY
from repro.schemes import get_scheme, scheme_names
from repro.service import CampaignRunner, experiment_campaign
from repro.workloads import get_workload

_WORKLOADS = ["figure4_loop", "crc32", "bubble_sort", "fir_filter",
              "matmul", "syringe_pump"]


def _attest_once(scheme_name, workload_name):
    """One attested execution through the scheme API; returns (result, m)."""
    workload = get_workload(workload_name)
    program = workload.build()
    result, measured = get_scheme(scheme_name).measure_execution(
        program, list(workload.inputs))
    return program, result, measured


def test_e11_overhead_and_report_size_matrix(benchmark, report_writer):
    # Timed kernel: the full scheme matrix on the paper's Figure 4 loop.
    benchmark(lambda: [_attest_once(name, "figure4_loop")
                       for name in scheme_names()])

    rows = []
    for workload_name in _WORKLOADS:
        for scheme_name in scheme_names():
            scheme = get_scheme(scheme_name)
            _, result, measured = _attest_once(scheme_name, workload_name)
            cost = scheme.cost_model(result.trace)
            rows.append({
                "workload": workload_name,
                "scheme": scheme_name,
                "baseline_cycles": cost.baseline_cycles,
                "attested_cycles": cost.attested_cycles,
                "overhead_%": round(100.0 * cost.overhead_ratio, 2),
                "measurement_B": len(measured.measurement),
                "metadata_B": measured.metadata.size_bytes,
            })
    table = format_table(
        rows,
        columns=["workload", "scheme", "baseline_cycles", "attested_cycles",
                 "overhead_%", "measurement_B", "metadata_B"],
        title="E11: attestation cost and report size per scheme",
    )

    # Shape checks mirroring the paper's claims.
    by_scheme = {}
    for row in rows:
        by_scheme.setdefault(row["scheme"], []).append(row)
    assert all(row["overhead_%"] == 0.0 for row in by_scheme["lofat"])
    assert all(row["overhead_%"] == 0.0 for row in by_scheme["static"])
    assert all(row["overhead_%"] > 0.0 for row in by_scheme["cflat"])
    assert all(row["measurement_B"] == 64
               for row in by_scheme["lofat"] + by_scheme["cflat"])
    assert all(row["measurement_B"] == 32 and row["metadata_B"] == 2
               for row in by_scheme["static"])

    report_writer("e11_scheme_matrix", table + "\n\n"
                  + _detection_matrix() + "\n\n" + _campaign_summary())


def _detection_matrix() -> str:
    """Attack-detection matrix via the scheme-parameterized campaign."""
    result = CampaignRunner().run(experiment_campaign("e11"), workers=2)
    assert result.ok, [r.job.job_id for r in result.failures]

    detected = {}
    for job_result in result.results:
        if job_result.job.attack is None:
            continue
        key = (job_result.job.attack, job_result.job.scheme)
        detected[key] = job_result.detected
    rows = []
    for attack in sorted(ATTACK_REGISTRY):
        row = {"attack": attack}
        for scheme in scheme_names():
            row[scheme] = "detected" if detected[(attack, scheme)] else "MISSED"
        rows.append(row)

    # Control-flow schemes catch every class; static misses every one.
    assert all(row["lofat"] == "detected" for row in rows)
    assert all(row["cflat"] == "detected" for row in rows)
    assert all(row["static"] == "MISSED" for row in rows)

    return format_table(
        rows,
        columns=["attack"] + scheme_names(),
        title="E11b: attack detection per scheme (campaign, database-verified)",
    )


def _campaign_summary() -> str:
    from repro.analysis.campaign_report import format_campaign_summary

    sequential = CampaignRunner().run(experiment_campaign("e11"), workers=1)
    parallel = CampaignRunner().run(experiment_campaign("e11"), workers=4)
    assert parallel.identities() == sequential.identities()
    return format_campaign_summary(parallel)
