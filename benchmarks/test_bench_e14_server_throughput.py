"""E14 -- Attestation server throughput vs concurrent prover connections.

The verifier daemon (``repro serve``) runs as a real subprocess -- its own
Python interpreter, its own event loop -- and the load generator
(:func:`repro.service.client.run_load`) drives N concurrent simulated
provers against it over TCP.  Provers replay captured executions from a
shared :class:`TraceStore` (the capture-once pipeline over the wire) and
are *paced*: each round charges ``PACE_MS`` of simulated device latency,
standing in for the embedded core's execution and link time that an
unpaced replaying prover would answer thousands of times faster than.
That makes this a closed-loop load test, the shape real fleets have: the
server's throughput comes from how many in-flight devices it sustains
concurrently, and a single sequential prover cannot saturate it.

The claim under test: reports/sec scales with connection count, because
the server overlaps the devices' think time and round-trip latency across
sessions.  The acceptance bar is >= 2x from 1 to 8 concurrent provers.
The unpaced single-connection wire throughput is measured and reported
too, so the raw protocol cost stays visible next to the scaling curve.
"""

from __future__ import annotations

import asyncio
import os
import re
import subprocess
import sys

import pytest

from repro.analysis.report import format_table
from repro.service.client import AttestationClient, run_load
from repro.service.tracestore import TraceStore, execution_signature
from repro.service.worker import execute_capture_job
from repro.workloads import get_workload

#: Connection counts of the scaling curve.
CONNECTION_COUNTS = (1, 2, 4, 8)
#: Total reports per curve point (split across the point's provers).
TOTAL_REPORTS = 96
#: Timing repetitions per point; best-of-N filters scheduler noise.
REPEATS = 3
#: Simulated device latency per attestation round (execution on the
#: embedded core plus its link), slept -- not burned -- by each prover.
PACE_MS = 2.0
#: The acceptance bar: reports/sec at 8 connections vs 1.
TARGET_SCALING = 2.0
#: The attested workload and scheme of the steady-state rounds.
WORKLOAD = "syringe_pump"
SCHEME = "lofat"


def _build_capture_store(directory: str) -> TraceStore:
    """Capture the benchmark workload once so provers replay, not simulate."""
    store = TraceStore(directory=directory)
    workload = get_workload(WORKLOAD)
    signature = execution_signature(WORKLOAD, tuple(workload.inputs))
    response = execute_capture_job(
        (signature, WORKLOAD, tuple(workload.inputs), None))
    store.put_bytes(
        signature, response.trace_bytes, response.exit_code,
        response.output, response.instructions, response.cycles,
        response.replayable)
    return store


def _start_server(trace_dir: str):
    """Start ``repro serve`` on an ephemeral port; returns (process, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--allow-shutdown", "--trace-dir", trace_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    line = process.stdout.readline()
    match = re.search(r"listening on [\d.]+:(\d+)", line)
    if match is None:
        process.kill()
        raise RuntimeError("server did not announce a port: %r" % line)
    return process, int(match.group(1))


def _measure_point(port, store, provers: int, pace_ms: float = PACE_MS) -> float:
    """Best-of-N steady-state reports/sec for one connection count."""
    rounds = max(1, TOTAL_REPORTS // provers)
    best = 0.0
    for _ in range(REPEATS):
        load = asyncio.run(run_load(
            "127.0.0.1", port, provers=provers, rounds=rounds,
            schemes=(SCHEME,), workloads=(WORKLOAD,), trace_store=store,
            warmup=False, pace_seconds=pace_ms / 1000.0))
        assert load.ok, load.rejections
        assert load.replayed == load.reports  # no prover re-simulated
        best = max(best, load.reports_per_second)
    return best


def test_e14_server_throughput_scales_with_connections(
        benchmark, report_writer, tmp_path):
    store = _build_capture_store(str(tmp_path / "traces"))
    process, port = _start_server(str(tmp_path / "traces"))
    try:
        # One warm pass: the server computes and caches the reference (from
        # the stored trace), the client populates its replay cache.
        warm = asyncio.run(run_load(
            "127.0.0.1", port, provers=1, rounds=3,
            schemes=(SCHEME,), workloads=(WORKLOAD,), trace_store=store))
        assert warm.ok

        # Raw wire throughput (no pacing, one connection): the protocol
        # floor the paced curve sits on.
        wire_rate = _measure_point(port, store, provers=1, pace_ms=0.0)

        rates = {}
        rows = []
        for provers in CONNECTION_COUNTS:
            rate = _measure_point(port, store, provers)
            rates[provers] = rate
            rows.append({
                "connections": provers,
                "rounds_per_prover": max(1, TOTAL_REPORTS // provers),
                "reports_per_sec": round(rate, 1),
                "scaling_vs_1": round(rate / rates[CONNECTION_COUNTS[0]], 2),
            })
        rows.append({
            "connections": "1 (unpaced wire)",
            "rounds_per_prover": TOTAL_REPORTS,
            "reports_per_sec": round(wire_rate, 1),
            "scaling_vs_1": "-",
        })

        # Timed kernel for the benchmark record: one 8-prover paced burst.
        benchmark(lambda: asyncio.run(run_load(
            "127.0.0.1", port, provers=8, rounds=4,
            schemes=(SCHEME,), workloads=(WORKLOAD,), trace_store=store,
            warmup=False, pace_seconds=PACE_MS / 1000.0)))

        # Clean shutdown over the wire (the CI smoke's exit path too).
        async def shutdown():
            client = AttestationClient("127.0.0.1", port, "prover-admin")
            await client.connect()
            await client.shutdown_server()
        asyncio.run(shutdown())
        assert process.wait(timeout=30) == 0

        table = format_table(
            rows,
            columns=["connections", "rounds_per_prover", "reports_per_sec",
                     "scaling_vs_1"],
            title="E14: attestation server throughput vs concurrent provers "
                  "(%s/%s, trace-replay provers paced at %.1f ms/round)"
                  % (SCHEME, WORKLOAD, PACE_MS),
        )
        report_writer("e14_server_throughput", table)

        # The acceptance bar: >= 2x reports/sec from 1 to 8 connections.
        assert rates[8] >= TARGET_SCALING * rates[1], rows
        # The curve must be monotone within noise on the way up.
        assert rates[4] >= rates[2] * 0.95, rows
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
