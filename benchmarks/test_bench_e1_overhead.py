"""E1 -- Attestation overhead: LO-FAT vs C-FLAT (paper §6.1).

Regenerates the paper's central performance comparison for every workload:
LO-FAT adds zero processor cycles (it observes the pipeline in parallel),
while the C-FLAT software baseline adds a per-control-flow-event cost, i.e.
an overhead that grows linearly with the number of executed branches.
"""

from __future__ import annotations

from repro.analysis.performance import compare_all_workloads
from repro.analysis.report import format_table
from repro.schemes.cflat import CFlatCostModel
from repro.lofat.engine import attest_execution
from repro.workloads import all_workloads, get_workload


def test_e1_overhead_comparison(benchmark, report_writer):
    # Timed kernel: one full attested execution of the syringe-pump firmware.
    workload = get_workload("syringe_pump")
    program = workload.build()
    benchmark(lambda: attest_execution(program, inputs=list(workload.inputs)))

    comparisons = compare_all_workloads(all_workloads(), cflat_cost=CFlatCostModel())
    rows = [comparison.as_row() for comparison in comparisons]
    table = format_table(
        rows,
        columns=["workload", "instructions", "cycles", "cf_events",
                 "lofat_overhead_%", "cflat_overhead_%", "hashed_pairs",
                 "compression", "metadata_B"],
        title="E1: attestation overhead per workload (LO-FAT vs C-FLAT)",
    )
    report_writer("e1_overhead", table)

    # Shape checks mirroring the paper's claims.
    assert all(comparison.lofat_overhead == 0.0 for comparison in comparisons)
    assert all(comparison.cflat_overhead > 0.0 for comparison in comparisons)
    # C-FLAT's *absolute* overhead grows with the number of events.
    ordered = sorted(comparisons, key=lambda c: c.control_flow_events)
    overheads = [c.cflat_cycles - c.baseline_cycles for c in ordered]
    assert overheads == sorted(overheads)


def test_e1_cflat_overhead_scales_with_events(benchmark, report_writer):
    """The same program run longer: C-FLAT cost scales, LO-FAT stays at zero."""
    workload = get_workload("figure4_loop")
    program = workload.build()
    cost = CFlatCostModel()

    def run_point(iterations):
        from repro.analysis.performance import compare_workload
        return compare_workload(workload.with_inputs([iterations]), cflat_cost=cost)

    benchmark(lambda: run_point(16))

    rows = []
    for iterations in (4, 8, 16, 32, 64):
        comparison = run_point(iterations)
        rows.append({
            "loop_iterations": iterations,
            "cf_events": comparison.control_flow_events,
            "baseline_cycles": comparison.baseline_cycles,
            "lofat_extra_cycles": comparison.lofat_cycles - comparison.baseline_cycles,
            "cflat_extra_cycles": comparison.cflat_cycles - comparison.baseline_cycles,
            "cflat_overhead_%": 100.0 * comparison.cflat_overhead,
        })
    table = format_table(
        rows,
        title="E1b: overhead growth with control-flow event count (figure4 loop)",
    )
    report_writer("e1b_overhead_scaling", table)

    assert all(row["lofat_extra_cycles"] == 0 for row in rows)
    extras = [row["cflat_extra_cycles"] for row in rows]
    assert extras == sorted(extras) and extras[0] < extras[-1]
