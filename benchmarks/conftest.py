"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper's
evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).  Each experiment
writes its rows both to stdout and to ``benchmarks/results/<experiment>.txt``
so the regenerated numbers survive pytest's output capturing.

Experiments that pass ``metrics=`` additionally persist a machine-readable
``benchmarks/results/BENCH_<experiment>.json`` -- the input of
``scripts/bench_gate.py``, the CI benchmark-regression gate.  Metrics are
scalar, and by the gate's convention *higher is better* (speedups, rates);
name them accordingly.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_report(
    experiment_id: str,
    text: str,
    metrics: Optional[Dict[str, float]] = None,
) -> str:
    """Print an experiment report and persist it under benchmarks/results/.

    ``metrics`` (name -> scalar, higher-is-better) are written alongside as
    ``BENCH_<experiment_id>.json`` for the benchmark-regression gate.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % experiment_id)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if metrics is not None:
        document = {
            "experiment": experiment_id,
            "metrics": {name: float(value) for name, value in metrics.items()},
        }
        json_path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % experiment_id)
        with open(json_path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print("\n" + text)
    return path


@pytest.fixture
def report_writer():
    """Fixture exposing :func:`emit_report`."""
    return emit_report
