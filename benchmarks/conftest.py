"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper's
evaluation (see DESIGN.md section 4 and EXPERIMENTS.md).  Each experiment
writes its rows both to stdout and to ``benchmarks/results/<experiment>.txt``
so the regenerated numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_report(experiment_id: str, text: str) -> str:
    """Print an experiment report and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % experiment_id)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path


@pytest.fixture
def report_writer():
    """Fixture exposing :func:`emit_report`."""
    return emit_report
