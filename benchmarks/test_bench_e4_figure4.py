"""E4 -- Figure 4: loop path encodings and iteration counting.

The paper's Figure 4 derives the two valid path encodings of a
``while (cond1) { if (cond2) ... else ... }`` loop: ``011`` for the path
through the else branch and ``0011`` for the path through the then branch.
This bench runs the equivalent program and checks the engine reports exactly
those encodings together with per-path iteration counts, and that repeating
the loop adds no hash work (only counter increments).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.lofat.engine import attest_execution
from repro.workloads import get_workload


def test_e4_figure4_path_encodings(benchmark, report_writer):
    workload = get_workload("figure4_loop")
    program = workload.build()
    iterations = 6

    result, measurement = benchmark(
        lambda: attest_execution(program, inputs=[iterations]))

    assert len(measurement.metadata) == 1
    loop = measurement.metadata.loops[0]
    rows = [{
        "path_encoding": path.encoding.bits,
        "first_seen": path.first_seen_index,
        "iterations": path.iterations,
        "indirect_codes": list(path.encoding.indirect_codes),
    } for path in loop.paths]
    table = format_table(
        rows,
        title=("E4: Figure-4 loop (entry %#x, exit %#x) path encodings for %d "
               "iterations" % (loop.entry, loop.exit_node, iterations)),
    )
    extra = ("measurement A = %s...\nmetadata bytes = %d, pairs hashed = %d, "
             "pairs compressed = %d"
             % (measurement.measurement_hex[:32], measurement.metadata.size_bytes,
                measurement.stats["pairs_hashed"], measurement.stats["pairs_compressed"]))
    report_writer("e4_figure4", table + "\n" + extra)

    encodings = {path.encoding.bits for path in loop.paths}
    assert "011" in encodings, "dashed path encoding of Figure 4 missing"
    assert "0011" in encodings, "bold path encoding of Figure 4 missing"
    assert loop.iterations == iterations

    # Doubling the iterations increases only counters, not hash input.
    _, longer = attest_execution(program, inputs=[iterations * 4])
    assert longer.stats["pairs_hashed"] == measurement.stats["pairs_hashed"]
    assert longer.metadata.loops[0].iterations == iterations * 4
