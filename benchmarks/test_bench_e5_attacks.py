"""E5 -- Attack-detection matrix (paper Figure 1 + §6.3).

Runs every attack scenario (classes 1-3 of Figure 1) through the full
attestation protocol and reports which schemes detect it: static (binary)
attestation misses all of them, C-FLAT and LO-FAT detect all of them --
LO-FAT at zero processor overhead.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.attacks import all_attacks
from repro.attestation import Prover, Verifier
from repro.schemes import CFlatAttestation, StaticAttestation
from repro.cpu.core import Cpu
from repro.workloads import get_workload


def _run_scenario(scenario):
    workload = get_workload(scenario.workload_name)
    program = workload.build()

    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

    benign_report = prover.attest(
        verifier.challenge(workload.name, scenario.challenge_inputs))
    benign_verdict = verifier.verify(benign_report)

    prover.install_attack(scenario.prover_hook(program))
    attacked_report = prover.attest(
        verifier.challenge(workload.name, scenario.challenge_inputs))
    attacked_verdict = verifier.verify(attacked_report)

    cflat = CFlatAttestation()
    benign_run = Cpu(program, inputs=list(scenario.challenge_inputs)).run()
    attacked_cpu = Cpu(program, inputs=list(scenario.challenge_inputs))
    scenario.install_on(attacked_cpu, program)
    attacked_run = attacked_cpu.run()
    cflat_detects = (cflat.measure_trace(benign_run.trace)
                     != cflat.measure_trace(attacked_run.trace))
    static_detects = StaticAttestation().detects_runtime_attack(
        benign_run, attacked_run, program)

    return {
        "attack": scenario.name,
        "class": scenario.attack_class,
        "workload": scenario.workload_name,
        "benign_verdict": benign_verdict.reason.value,
        "benign_output": benign_report.output,
        "attacked_output": attacked_report.output,
        "static": "detect" if static_detects else "miss",
        "cflat": "detect" if cflat_detects else "detect" if cflat_detects else "miss",
        "lofat": "detect" if not attacked_verdict.accepted else "miss",
        "lofat_reason": attacked_verdict.reason.value,
    }


def test_e5_attack_detection_matrix(benchmark, report_writer):
    scenarios = all_attacks()
    benchmark(lambda: _run_scenario(scenarios[0]))

    rows = [_run_scenario(scenario) for scenario in scenarios]
    table = format_table(
        rows,
        columns=["attack", "class", "workload", "benign_output", "attacked_output",
                 "static", "cflat", "lofat", "lofat_reason"],
        title="E5: run-time attack detection by attestation scheme",
    )
    report_writer("e5_attacks", table)

    assert {row["class"] for row in rows} == {1, 2, 3}
    for row in rows:
        assert row["benign_verdict"] == "accepted"
        assert row["static"] == "miss", "static attestation cannot see run-time attacks"
        assert row["cflat"] == "detect"
        assert row["lofat"] == "detect", "%s escaped LO-FAT" % row["attack"]
