"""E10 -- Attestation campaign service: parallel throughput and caching.

The service-layer experiment: the full E1-E9 job population (every workload
under every swept LO-FAT configuration, plus every attack scenario) is run
end to end through the campaign runner, comparing

* sequential vs multi-process prover fan-out (throughput scaling), and
* cold vs warm measurement database (repeat-verification speedup).

Parallel campaigns must be *result-identical* to sequential ones -- the
fan-out only reorders work in time, never the recombined verdicts.  The
throughput assertion scales with the machine: on boxes with fewer than four
CPUs the parallel run cannot demonstrate a 2x speedup, so there the
benchmark only reports the measured numbers (the identity and caching
assertions always hold).
"""

from __future__ import annotations

import multiprocessing

from repro.analysis.report import format_table
from repro.service import (
    CampaignRunner,
    MeasurementDatabase,
    experiment_campaign,
    full_campaign,
)

CPU_COUNT = multiprocessing.cpu_count()
WORKERS = max(2, min(4, CPU_COUNT))


def test_e10_parallel_campaign_throughput(benchmark, report_writer):
    # Timed kernel: one small campaign through the sequential runner.
    benchmark(lambda: CampaignRunner().run(experiment_campaign("e4")))

    spec = full_campaign()
    sequential = CampaignRunner().run(spec, workers=1)
    parallel = CampaignRunner().run(spec, workers=WORKERS)

    # The fan-out must not change a single verdict, measurement or output.
    assert parallel.identities() == sequential.identities()
    assert sequential.ok and parallel.ok

    speedup = (sequential.prover_seconds / parallel.prover_seconds
               if parallel.prover_seconds else 0.0)
    rows = [
        {
            "mode": "sequential",
            "workers": 1,
            "jobs": len(sequential),
            "prover_s": sequential.prover_seconds,
            "verify_s": sequential.verify_seconds,
            "jobs_per_s": len(sequential) / sequential.total_seconds,
            "speedup": 1.0,
        },
        {
            "mode": "parallel",
            "workers": WORKERS,
            "jobs": len(parallel),
            "prover_s": parallel.prover_seconds,
            "verify_s": parallel.verify_seconds,
            "jobs_per_s": len(parallel) / parallel.total_seconds,
            "speedup": speedup,
        },
    ]
    table = format_table(
        rows,
        title="E10: campaign prover fan-out, sequential vs %d workers "
              "(%d CPUs available)" % (WORKERS, CPU_COUNT),
    )
    report_writer("e10_campaign_throughput", table)

    if CPU_COUNT >= 4:
        assert speedup >= 2.0, (
            "expected >= 2x prover throughput from %d workers on %d CPUs, "
            "measured %.2fx" % (WORKERS, CPU_COUNT, speedup)
        )


def test_e10_measurement_cache_speedup(benchmark, report_writer):
    spec = full_campaign()
    database = MeasurementDatabase()
    runner = CampaignRunner(database=database)

    cold = runner.run(spec)
    assert cold.ok
    cold_stats = database.stats()
    database.reset_counters()

    warm = runner.run(spec)
    assert warm.ok
    warm_stats = database.stats()

    # Warm verification is pure lookup: no new reference executions at all.
    assert warm_stats["entries"] == cold_stats["entries"]
    assert warm_stats["misses"] == 0
    assert all(result.cache_hit for result in warm.results
               if result.cache_hit is not None)
    assert warm.identities() == cold.identities()

    speedup = (cold.verify_seconds / warm.verify_seconds
               if warm.verify_seconds else float("inf"))
    assert warm.verify_seconds < cold.verify_seconds
    assert speedup >= 2.0, (
        "expected >= 2x verification speedup from the measurement database, "
        "measured %.2fx" % speedup
    )

    # Timed kernel: verifying the whole campaign against the warm database.
    benchmark(lambda: runner.run(spec))

    rows = [
        {"database": "cold", "verify_s": cold.verify_seconds,
         "entries": cold_stats["entries"], "hits": cold_stats["hits"],
         "misses": cold_stats["misses"], "speedup": 1.0},
        {"database": "warm", "verify_s": warm.verify_seconds,
         "entries": warm_stats["entries"], "hits": warm_stats["hits"],
         "misses": warm_stats["misses"], "speedup": speedup},
    ]
    table = format_table(
        rows,
        title="E10b: repeat verification, cold vs warm measurement database "
              "(%d jobs)" % len(warm),
    )
    report_writer("e10b_campaign_cache", table)
