"""E13 -- Capture-once / verify-many campaign speedup.

The two-stage pipeline (content-addressed trace store + attest-from-trace)
must beat capture-per-job (the ``pipeline="live"`` baseline: one fused
simulate+measure execution per job) by >= 3x on a scheme-matrix sweep, while
staying result-identical.  The sweep is the E11 preset -- every loop-heavy
workload and every attack under lofat x cflat x static -- run for several
re-attestation rounds (``repeats``), the service's steady-state shape: the
live pipeline re-simulates every prover execution each round, while the
two-stage pipeline simulates each unique execution exactly once and serves
every further (scheme, config, round) from the stored trace and the replay
cache.

The cold (single-round) speedup is reported too: even there, N-scheme
sweeps pay one CPU simulation per distinct execution instead of N.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.service import CampaignRunner, experiment_campaign
from repro.service.worker import clear_replay_cache

#: Timing repetitions per pipeline point; best-of-N filters scheduler noise.
REPEATS = 3
#: Re-attestation rounds of the scheme-matrix sweep (spec.repeats).  Six
#: rounds measure ~4.4x here; the 3x bar then holds with headroom on noisy
#: CI runners (the advantage only grows with rounds -- the live pipeline
#: re-simulates every round, the two-stage one serves them from the store).
ROUNDS = 6
#: The acceptance bar on the multi-round sweep.
TARGET_SPEEDUP = 3.0


def _best_run(spec, pipeline):
    best = None
    for _ in range(REPEATS):
        if pipeline == "capture":
            # Fresh store and replay cache: measure the cold two-stage cost,
            # not a warm-store rerun.
            clear_replay_cache()
            runner = CampaignRunner()
        else:
            runner = CampaignRunner()
        result = runner.run(spec, pipeline=pipeline)
        assert result.ok, [r.job.job_id for r in result.failures]
        if best is None or result.total_seconds < best.total_seconds:
            best = result
    return best


def test_e13_capture_once_verify_many_speedup(benchmark, report_writer):
    # Warm the process-wide caches (assembly, decode, CFG knowledge) so both
    # pipelines are measured on equal footing.
    warmup = experiment_campaign("e11")
    CampaignRunner().run(warmup, pipeline="live")

    rows = []
    speedups = {}
    for rounds in (1, ROUNDS):
        spec = experiment_campaign("e11")
        spec.repeats = rounds
        live = _best_run(spec, "live")
        two_stage = _best_run(spec, "capture")

        # The acceptance bar's other half: byte-equivalent recombination.
        assert two_stage.identities() == live.identities()
        assert all(result.replayed for result in two_stage.results)

        stats = two_stage.capture_stats
        speedup = live.total_seconds / two_stage.total_seconds
        speedups[rounds] = speedup
        rows.append({
            "rounds": rounds,
            "jobs": len(live.results),
            "executions_live": len(live.results),
            "executions_captured": stats["captured"],
            "deduped_jobs": stats["deduped_jobs"],
            "live_s": round(live.total_seconds, 4),
            "two_stage_s": round(two_stage.total_seconds, 4),
            "speedup": round(speedup, 2),
        })

    # Capture dedup is structural: the sweep's unique executions do not grow
    # with schemes, configs or rounds.
    assert rows[0]["executions_captured"] == rows[1]["executions_captured"]

    # Timed kernel: one two-stage campaign against a warm store (the
    # verify-many steady state).
    spec = experiment_campaign("e11")
    warm_runner = CampaignRunner()
    warm_runner.run(spec)
    benchmark(lambda: warm_runner.run(spec))

    table = format_table(
        rows,
        columns=["rounds", "jobs", "executions_live", "executions_captured",
                 "deduped_jobs", "live_s", "two_stage_s", "speedup"],
        title="E13: capture-once/verify-many vs capture-per-job "
              "(e11 scheme matrix)",
    )
    report_writer(
        "e13_capture_replay", table,
        metrics={
            "speedup_rounds_%d" % ROUNDS: speedups[ROUNDS],
            "speedup_cold": speedups[1],
        },
    )

    # The acceptance bar: >= 3x on the multi-round scheme-matrix sweep.
    assert speedups[ROUNDS] >= TARGET_SPEEDUP, rows
    # Even a cold single round must come out ahead of capture-per-job.
    assert speedups[1] >= 1.1, rows


def test_e13_two_stage_is_default(report_writer):
    """The capture pipeline is opt-out: run() defaults to it."""
    result = CampaignRunner().run(experiment_campaign("e5"))
    assert result.pipeline == "capture"
    assert result.ok
    assert all(job_result.replayed for job_result in result.results)
