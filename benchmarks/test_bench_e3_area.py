"""E3 -- FPGA area and frequency (paper §6.2).

Regenerates the published resource figures for the prototype configuration
(n=4 indirect-target bits, l=16 branches per loop path, 3 nested loops on a
Virtex-7 XC7Z020): ~6% of LUTs, ~4% of registers, 49 36-Kbit BRAMs (16 per
tracked loop plus one for the branches memory), ~20% additional logic over
the Pulpino SoC and an 80 MHz maximum clock.  Also sweeps the configuration
space to show how memory scales with the tracking granularity.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.sweep import area_sweep
from repro.lofat.area_model import AreaModel, VIRTEX7_XC7Z020
from repro.lofat.config import LoFatConfig


def test_e3_paper_configuration_point(benchmark, report_writer):
    model = AreaModel(LoFatConfig())
    estimate = benchmark(model.estimate)
    utilization = estimate.utilization(VIRTEX7_XC7Z020)

    rows = [{
        "metric": "LUTs", "estimate": estimate.luts,
        "device_%": 100.0 * utilization["luts"], "paper": "~6%",
    }, {
        "metric": "registers", "estimate": estimate.registers,
        "device_%": 100.0 * utilization["registers"], "paper": "~4%",
    }, {
        "metric": "BRAM36", "estimate": estimate.bram36,
        "device_%": 100.0 * utilization["bram36"], "paper": "49",
    }, {
        "metric": "logic overhead vs Pulpino", "estimate": "",
        "device_%": 100.0 * estimate.logic_overhead_vs_pulpino(), "paper": "~20%",
    }, {
        "metric": "max clock (MHz)", "estimate": estimate.max_clock_mhz,
        "device_%": "", "paper": "80",
    }]
    table = format_table(rows, title="E3: area/frequency at the paper's configuration")
    report_writer("e3_area_paper_point", table)

    assert estimate.bram36 == 49
    assert AreaModel(LoFatConfig()).loop_counter_brams_per_loop() == 16
    assert AreaModel(LoFatConfig()).loop_counter_brams_total() == 48
    assert 0.04 <= utilization["luts"] <= 0.08
    assert 0.03 <= utilization["registers"] <= 0.05
    assert 0.15 <= estimate.logic_overhead_vs_pulpino() <= 0.25
    assert estimate.max_clock_mhz == 80.0


def test_e3_area_configuration_sweep(benchmark, report_writer):
    rows = benchmark(area_sweep)
    table = format_table(
        rows,
        columns=["nested_loops", "path_bits", "bram36", "loop_mem_kbits",
                 "luts", "registers", "lut_util_%", "reg_util_%"],
        title="E3b: resource scaling across tracking-granularity configurations",
    )
    report_writer("e3b_area_sweep", table)

    # Memory grows monotonically with both nesting depth and path-ID width.
    by_key = {(row["nested_loops"], row["path_bits"]): row for row in rows}
    assert by_key[(3, 16)]["bram36"] == 49
    assert by_key[(1, 16)]["bram36"] < by_key[(3, 16)]["bram36"] < by_key[(4, 16)]["bram36"]
    assert by_key[(3, 8)]["loop_mem_kbits"] < by_key[(3, 16)]["loop_mem_kbits"]
