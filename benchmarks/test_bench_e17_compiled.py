"""E17 -- Superblock trace compilation speedup over the fused fast path.

The compiled engine (:meth:`repro.cpu.core.Cpu.run_compiled` over
:mod:`repro.cpu.compile` plans) replaces the fast path's per-instruction
dispatch with one generated step function per superblock and one hash
absorption per block.  The acceptance bar is on the engine itself: with a
warm plan cache, ``Cpu.run()`` under ``engine="compiled"`` must reach a
>= 2x geometric-mean wall-time speedup over ``engine="fast"`` across the
E12 workload matrix.  The table also records the cold run (first
execution, plan compilation included), how many runs the compile cost
takes to amortize against the per-run saving, and -- informationally --
the end-to-end LO-FAT measurement speedup, where the sponge absorptions
(identical work on both engines) dilute the dispatch win.

Programs the compiler declines (``dispatcher``'s unresolved indirect jump)
execute on ``run_fast`` and appear with speedup ~1x; the geomean bar is
over the whole matrix, declines included.  Byte-identity of the engines is
asserted here per workload and pinned exhaustively in
``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import math
import time

from repro.analysis.report import format_table
from repro.cpu.compile import COMPILE_CACHE, clear_compile_cache
from repro.cpu.core import Cpu, CpuConfig
from repro.schemes import get_scheme
from repro.workloads import get_workload

#: The E12 acceptance matrix: loop-heavy, recursive and indirect shapes.
MATRIX = [
    "figure4_loop",
    "syringe_pump",
    "matmul",
    "quicksort",
    "crc32",
    "dispatcher",
    "fibonacci",
]

#: Timing repetitions per (workload, engine) point; best-of-N filters
#: scheduler noise out of the CI run.
REPEATS = 7


def _best_run(program, inputs, engine):
    """Best-of-N wall time of ``Cpu.run()`` alone (construction excluded)."""
    config = CpuConfig(engine=engine, collect_trace=False)
    best = None
    result = None
    for _ in range(REPEATS):
        cpu = Cpu(program, inputs=list(inputs), config=config)
        started = time.perf_counter()
        result = cpu.run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _best_measure(scheme, program, inputs, engine):
    """Best-of-N wall time of a full scheme measurement (end to end)."""
    config = CpuConfig(engine=engine, collect_trace=False)
    best = None
    result = measured = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result, measured = scheme.measure_execution(
            program, list(inputs), cpu_config=config)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, measured, best


def test_e17_compiled_speedup(benchmark, report_writer):
    lofat = get_scheme("lofat")
    compiled_config = CpuConfig(engine="compiled", collect_trace=False)

    # Timed kernel: one warm compiled LO-FAT measurement of the pump.
    pump = get_workload("syringe_pump")
    pump_program = pump.build()
    lofat.measure_execution(pump_program, list(pump.inputs),
                            cpu_config=compiled_config)  # warm the plan
    benchmark(lambda: lofat.measure_execution(
        pump_program, list(pump.inputs), cpu_config=compiled_config))

    rows = []
    speedups = []
    for name in MATRIX:
        workload = get_workload(name)
        program = workload.build()
        inputs = list(workload.inputs)

        # Cold: drop every plan, time the run that has to compile first.
        clear_compile_cache()
        cpu = Cpu(program, inputs=list(inputs), config=compiled_config)
        started = time.perf_counter()
        cpu.run()
        cold_s = time.perf_counter() - started
        declined = cpu.engine_used != "compiled"

        fast_result, fast_s = _best_run(program, inputs, "fast")
        comp_result, comp_s = _best_run(program, inputs, "compiled")

        # Correctness oracle: the engine changes no observable bit, through
        # the full attestation pipeline included (untimed for the bar).
        assert comp_result.cycles == fast_result.cycles, name
        assert comp_result.instructions == fast_result.instructions, name
        assert comp_result.registers == fast_result.registers, name
        m_fast_result, m_fast, mfast_s = _best_measure(
            lofat, program, inputs, "fast")
        m_comp_result, m_comp, mcomp_s = _best_measure(
            lofat, program, inputs, "compiled")
        assert m_comp.measurement == m_fast.measurement, name
        assert m_comp.metadata.to_bytes() == m_fast.metadata.to_bytes(), name
        assert m_comp.stats == m_fast.stats, name
        assert m_comp_result.cycles == m_fast_result.cycles, name

        speedup = fast_s / comp_s
        speedups.append(speedup)
        saving = fast_s - comp_s
        compile_cost = cold_s - comp_s
        amortize = (str(max(1, math.ceil(compile_cost / saving)))
                    if saving > 0 else "n/a")
        rows.append({
            "workload": name,
            "engine": "fast (declined)" if declined else "compiled",
            "instructions": comp_result.instructions,
            "fast_i/s": round(comp_result.instructions / fast_s),
            "compiled_i/s": round(comp_result.instructions / comp_s),
            "speedup": round(speedup, 2),
            "cold_ms": round(cold_s * 1e3, 3),
            "warm_ms": round(comp_s * 1e3, 3),
            "amortize_runs": amortize,
            "e2e_speedup": round(mfast_s / mcomp_s, 2),
        })

    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    rows.append({
        "workload": "geomean",
        "engine": "",
        "instructions": "",
        "fast_i/s": "",
        "compiled_i/s": "",
        "speedup": round(geomean, 2),
        "cold_ms": "",
        "warm_ms": "",
        "amortize_runs": "",
        "e2e_speedup": "",
    })

    table = format_table(
        rows,
        columns=["workload", "engine", "instructions", "fast_i/s",
                 "compiled_i/s", "speedup", "cold_ms", "warm_ms",
                 "amortize_runs", "e2e_speedup"],
        title="E17: compiled superblock engine vs fast path "
              "(Cpu.run wall time, warm cache, best of %d; e2e_speedup = "
              "full lofat measurement)" % REPEATS,
    )
    report_writer("e17_compiled", table,
                  metrics={"geomean_speedup": geomean})

    # The acceptance bar: >= 2x geometric-mean engine speedup over the
    # matrix with a warm plan cache (declined workloads included).
    assert geomean >= 2.0, (geomean, rows)


def test_e17_compiled_is_cached_across_runs(report_writer):
    """Back-to-back runs on one digest compile once: the second run is
    plan-lookup only."""
    workload = get_workload("figure4_loop")
    program = workload.build()
    config = CpuConfig(engine="compiled", collect_trace=False)
    lofat = get_scheme("lofat")
    clear_compile_cache()
    before = COMPILE_CACHE.compiles
    lofat.measure_execution(program, list(workload.inputs), cpu_config=config)
    lofat.measure_execution(program, list(workload.inputs), cpu_config=config)
    assert COMPILE_CACHE.compiles == before + 1
