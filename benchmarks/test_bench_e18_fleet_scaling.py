"""E18 -- Fleet verifier throughput vs worker-process count.

The multi-process deployment (``repro serve --workers N``) runs as a real
subprocess: an accept-and-dispatch front (SO_REUSEPORT where the kernel
has it, pre-fork socket handoff otherwise) spawning N ``AttestationServer``
workers, each layered over the shared measurement snapshot with its own
append-only delta log.  The fleet load generator
(:func:`repro.service.loadgen.run_fleet_load`) drives it with churning
simulated devices replaying captured executions, and the curve records
unpaced reports/sec at 1, 2 and 4 workers.

The claim under test: verification throughput scales with worker count,
because verdict computation (hash comparison, signature check, metadata
screening) parallelises across processes once the kernel spreads the
4-tuple hash over the listening sockets.  The acceptance bar is >= 2x
reports/sec from 1 to 4 workers -- asserted only where it can physically
hold, i.e. when the runner exposes >= 4 usable CPUs.  On smaller runners
the curve is still measured and reported (the gate baseline tracks the
single-worker rate, which is machine-independent of worker count), and a
sanity floor pins that adding workers must not collapse throughput.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time

from repro.analysis.report import format_table
from repro.service.client import AttestationClient
from repro.service.loadgen import run_fleet_load
from repro.service.tracestore import TraceStore, execution_signature
from repro.service.worker import execute_capture_job
from repro.workloads import get_workload

#: Worker counts of the scaling curve.
WORKER_COUNTS = (1, 2, 4)
#: Concurrent client connections per curve point (fixed across points so
#: only the worker count varies).
CONNECTIONS = 8
#: Total reports per curve point, split across the connections.
TOTAL_REPORTS = 160
#: Timing repetitions per point; best-of-N filters scheduler noise.
REPEATS = 2
#: The acceptance bar: reports/sec at 4 workers vs 1 -- where >= 4 CPUs.
TARGET_SCALING = 2.0
#: Device population the load generator churns through (heavy-tailed).
DEVICES = 10_000
#: The attested workload and scheme of the steady-state rounds.
WORKLOAD = "syringe_pump"
SCHEME = "lofat"


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _build_capture_store(directory: str) -> TraceStore:
    """Capture the benchmark workload once so provers replay, not simulate."""
    store = TraceStore(directory=directory)
    workload = get_workload(WORKLOAD)
    signature = execution_signature(WORKLOAD, tuple(workload.inputs))
    response = execute_capture_job(
        (signature, WORKLOAD, tuple(workload.inputs), None))
    store.put_bytes(
        signature, response.trace_bytes, response.exit_code,
        response.output, response.instructions, response.cycles,
        response.replayable)
    return store


def _start_fleet(workers: int, trace_dir: str, state_dir: str,
                 ready_file: str):
    """Start ``repro serve --workers N`` on an ephemeral port.

    Readiness is the fleet's ready file (written only after every worker
    accepts), whose content is the resolved ``host:port``.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", str(workers), "--allow-shutdown",
         "--trace-dir", trace_dir, "--state-dir", state_dir,
         "--ready-file", ready_file],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    deadline = time.monotonic() + 60.0
    while not os.path.exists(ready_file):
        if process.poll() is not None:
            raise RuntimeError(
                "fleet exited before ready: %r" % process.stdout.read())
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("fleet ready file never appeared")
        time.sleep(0.05)
    with open(ready_file) as handle:
        host, _, port = handle.read().strip().partition(":")
    return process, host, int(port)


def _measure_point(host, port, trace_dir) -> float:
    """Best-of-N unpaced reports/sec through the fleet front door."""
    best = 0.0
    for _ in range(REPEATS):
        report = run_fleet_load(
            host, port, trace_dir=trace_dir,
            devices=DEVICES, connections=CONNECTIONS, processes=1,
            reports=TOTAL_REPORTS, schemes=(SCHEME,), workloads=(WORKLOAD,),
            warmup=False)
        assert report.ok, report.rejections
        best = max(best, report.reports_per_second)
    return best


def test_e18_fleet_scaling(benchmark, report_writer, tmp_path):
    trace_dir = str(tmp_path / "traces")
    _build_capture_store(trace_dir)
    cpus = usable_cpus()

    rates = {}
    rows = []
    for workers in WORKER_COUNTS:
        state_dir = str(tmp_path / ("state-w%d" % workers))
        ready_file = str(tmp_path / ("ready-w%d" % workers))
        process, host, port = _start_fleet(
            workers, trace_dir, state_dir, ready_file)
        try:
            # One warm pass: every worker computes and caches the reference
            # measurement, the client populates its replay cache.
            warm = run_fleet_load(
                host, port, trace_dir=trace_dir,
                devices=DEVICES, connections=max(CONNECTIONS, 2 * workers),
                processes=1, reports=max(24, 8 * workers),
                schemes=(SCHEME,), workloads=(WORKLOAD,))
            assert warm.ok, warm.rejections

            rate = _measure_point(host, port, trace_dir)
            rates[workers] = rate
            rows.append({
                "workers": workers,
                "connections": CONNECTIONS,
                "reports": TOTAL_REPORTS,
                "reports_per_sec": round(rate, 1),
                "scaling_vs_1": round(rate / rates[WORKER_COUNTS[0]], 2),
            })

            if workers == WORKER_COUNTS[-1]:
                # Timed kernel for the benchmark record: one burst through
                # the widest fleet.
                benchmark(lambda: run_fleet_load(
                    host, port, trace_dir=trace_dir,
                    devices=DEVICES, connections=CONNECTIONS, processes=1,
                    reports=48, schemes=(SCHEME,), workloads=(WORKLOAD,),
                    warmup=False))

            # Clean fleet-wide shutdown over the wire: one worker receives
            # SHUTDOWN, raises the stop flag, the parent drains the rest.
            async def shutdown():
                client = AttestationClient(host, port, "prover-admin")
                await client.connect()
                await client.shutdown_server()
            asyncio.run(shutdown())
            assert process.wait(timeout=60) == 0, process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    scaling = rates[WORKER_COUNTS[-1]] / rates[WORKER_COUNTS[0]]
    table = format_table(
        rows,
        columns=["workers", "connections", "reports", "reports_per_sec",
                 "scaling_vs_1"],
        title="E18: fleet verifier reports/sec vs worker processes "
              "(%s/%s, unpaced trace-replay devices, %d usable CPUs)"
              % (SCHEME, WORKLOAD, cpus),
    )
    # Only the scaling ratio is gated: raw reports/sec are wall-clock rates
    # that vary with the runner, while the ratio is machine-portable (the
    # same property the other gated metrics -- all speedups -- have).
    report_writer(
        "e18_fleet_scaling", table,
        metrics={"scaling_1_to_4": scaling},
    )

    if cpus >= 4:
        # The acceptance bar: >= 2x reports/sec from 1 to 4 workers.
        assert scaling >= TARGET_SCALING, rows
    else:
        # Single-core runners cannot parallelise verification; pin only
        # that the fleet machinery does not collapse throughput.
        assert scaling >= 0.5, rows
