"""E9 -- Loop-compression ablation (paper §4: "An integrated optimization for
eliminating redundant attestation computation").

The paper's second listed contribution is the loop-compression optimisation:
hashing each distinct loop path once and counting repetitions, instead of
hashing every iteration (which both inflates the hash workload and explodes
the set of valid measurements the verifier must recognise).  This ablation
disables loop tracking (nesting depth 0) and compares the hash workload and
metadata against the default configuration, per workload and as a function of
loop iteration count.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import attest_execution
from repro.workloads import all_workloads, get_workload

#: Loop tracking disabled: every control-flow event is hashed directly.
NO_COMPRESSION = LoFatConfig(max_nested_loops=0)


def _attest_with(workload, config, inputs=None):
    program = workload.build()
    run_inputs = list(workload.inputs) if inputs is None else list(inputs)
    return attest_execution(program, inputs=run_inputs, config=config)


def test_e9_compression_ablation_per_workload(benchmark, report_writer):
    workload = get_workload("crc32")
    benchmark(lambda: _attest_with(workload, LoFatConfig()))

    rows = []
    for workload in all_workloads():
        _, with_loops = _attest_with(workload, LoFatConfig())
        _, without_loops = _attest_with(workload, NO_COMPRESSION)
        events = with_loops.stats["control_flow_events"]
        rows.append({
            "workload": workload.name,
            "cf_events": events,
            "hashed_with_compression": with_loops.stats["pairs_hashed"],
            "hashed_without": without_loops.stats["pairs_hashed"],
            "hash_reduction_%": (
                100.0 * (1 - with_loops.stats["pairs_hashed"]
                         / max(without_loops.stats["pairs_hashed"], 1))
            ),
            "metadata_B": with_loops.metadata.size_bytes,
        })
    table = format_table(
        rows,
        title="E9: hash workload with and without loop compression",
    )
    report_writer("e9_compression", table)

    # Without loop tracking every event is hashed.
    assert all(row["hashed_without"] == row["cf_events"] for row in rows)
    # Compression never hashes more than the uncompressed baseline, and on
    # loop-dominated workloads it removes the majority of the hash work.
    assert all(row["hashed_with_compression"] <= row["hashed_without"] for row in rows)
    crc_row = next(row for row in rows if row["workload"] == "crc32")
    assert crc_row["hash_reduction_%"] > 50.0


def test_e9_hash_work_vs_iteration_count(benchmark, report_writer):
    """With compression the hash work is flat in the iteration count; without
    it, the work grows linearly -- the verifier-side valid-measurement space
    grows the same way, which is the combinatorial explosion §4 warns about."""
    workload = get_workload("figure4_loop")
    benchmark(lambda: _attest_with(workload, LoFatConfig(), inputs=[16]))

    rows = []
    for iterations in (4, 8, 16, 32, 64):
        _, compressed = _attest_with(workload, LoFatConfig(), inputs=[iterations])
        _, uncompressed = _attest_with(workload, NO_COMPRESSION, inputs=[iterations])
        rows.append({
            "loop_iterations": iterations,
            "hashed_with_compression": compressed.stats["pairs_hashed"],
            "hashed_without": uncompressed.stats["pairs_hashed"],
            "metadata_B": compressed.metadata.size_bytes,
        })
    table = format_table(
        rows,
        title="E9b: hash work vs loop iteration count (figure4 loop)",
    )
    report_writer("e9b_compression_scaling", table)

    compressed_counts = [row["hashed_with_compression"] for row in rows]
    uncompressed_counts = [row["hashed_without"] for row in rows]
    # Flat vs strictly growing.
    assert len(set(compressed_counts)) == 1
    assert uncompressed_counts == sorted(uncompressed_counts)
    assert uncompressed_counts[-1] > uncompressed_counts[0]
