"""E12 -- Fast-path execution pipeline speedup.

The fused fetch/decode/dispatch interpreter (:meth:`repro.cpu.core.Cpu.run_fast`)
plus batched hash absorption must make the simulate->measure hot path at
least 2x faster in instructions/sec than the legacy per-instruction loop on
the E1 overhead workloads -- while staying byte-identical: same measurement
``A``, same metadata ``L``, same verifier verdict, for every attestation
scheme.  This experiment records both the per-workload and the per-scheme
aggregate speedups.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.attestation import Prover, Verifier
from repro.cpu.core import CpuConfig
from repro.schemes import get_scheme, scheme_names
from repro.workloads import all_workloads, get_workload

#: Timing repetitions per (scheme, workload, pipeline) point; best-of-N
#: filters scheduler noise out of the CI run.
REPEATS = 3


def _timed_measurement(scheme, program, inputs, fast):
    config = CpuConfig(fast_path=fast, collect_trace=False)
    best = None
    result = measured = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result, measured = scheme.measure_execution(
            program, inputs, cpu_config=config)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, measured, best


def _protocol_verdict(scheme_name, workload, fast):
    """One full challenge-response round on the given pipeline."""
    program = workload.build()
    cpu_config = CpuConfig(fast_path=fast, collect_trace=False)
    prover = Prover({workload.name: program}, cpu_config=cpu_config)
    verifier = Verifier(cpu_config=cpu_config)
    verifier.register_program(workload.name, program)
    verifier.register_device_key(
        "prover-0", prover.keystore.export_for_verifier())
    challenge = verifier.challenge(
        workload.name, list(workload.inputs), scheme=scheme_name)
    return verifier.verify(prover.attest(challenge))


def test_e12_fastpath_speedup(benchmark, report_writer):
    # Timed kernel: one fast-path LO-FAT measurement of the syringe pump.
    pump = get_workload("syringe_pump")
    pump_program = pump.build()
    lofat = get_scheme("lofat")
    benchmark(lambda: lofat.measure_execution(
        pump_program, list(pump.inputs),
        cpu_config=CpuConfig(collect_trace=False)))

    workloads = all_workloads()  # the E1 overhead workload suite
    rows = []
    aggregate_rows = []
    for scheme_name in scheme_names():
        scheme = get_scheme(scheme_name)
        total_legacy = 0.0
        total_fast = 0.0
        total_instructions = 0
        for workload in workloads:
            program = workload.build()
            inputs = list(workload.inputs)
            legacy_result, legacy, legacy_s = _timed_measurement(
                scheme, program, inputs, fast=False)
            fast_result, fast, fast_s = _timed_measurement(
                scheme, program, inputs, fast=True)

            # Correctness oracle: the fast path changes no observable bit.
            assert fast.measurement == legacy.measurement, \
                (scheme_name, workload.name)
            assert fast.metadata.to_bytes() == legacy.metadata.to_bytes(), \
                (scheme_name, workload.name)
            assert fast_result.cycles == legacy_result.cycles
            assert fast_result.instructions == legacy_result.instructions

            total_legacy += legacy_s
            total_fast += fast_s
            total_instructions += fast_result.instructions
            rows.append({
                "scheme": scheme_name,
                "workload": workload.name,
                "instructions": fast_result.instructions,
                "legacy_i/s": round(fast_result.instructions / legacy_s),
                "fast_i/s": round(fast_result.instructions / fast_s),
                "speedup": round(legacy_s / fast_s, 2),
            })

        # Verifier verdicts are pipeline-independent: a fast-path report
        # verifies, and so does a legacy one, under the same scheme.
        assert _protocol_verdict(scheme_name, pump, fast=True).accepted
        assert _protocol_verdict(scheme_name, pump, fast=False).accepted

        aggregate_speedup = total_legacy / total_fast
        aggregate_rows.append({
            "scheme": scheme_name,
            "workloads": len(workloads),
            "instructions": total_instructions,
            "legacy_i/s": round(total_instructions / total_legacy),
            "fast_i/s": round(total_instructions / total_fast),
            "speedup": round(aggregate_speedup, 2),
        })

    table = format_table(
        rows,
        columns=["scheme", "workload", "instructions", "legacy_i/s",
                 "fast_i/s", "speedup"],
        title="E12: fast-path vs legacy interpreter, per workload",
    )
    table += "\n\n" + format_table(
        aggregate_rows,
        columns=["scheme", "workloads", "instructions", "legacy_i/s",
                 "fast_i/s", "speedup"],
        title="E12: aggregate instructions/sec over the E1 workload suite",
    )
    report_writer(
        "e12_fastpath", table,
        metrics={
            "speedup_%s" % row["scheme"]: row["speedup"]
            for row in aggregate_rows
        },
    )

    # The acceptance bar: >= 2x instructions/sec per scheme over the suite.
    for row in aggregate_rows:
        assert row["speedup"] >= 2.0, row


def test_e12_fast_path_is_default(report_writer):
    """The fast path is opt-out: a default CpuConfig uses it."""
    assert CpuConfig().fast_path is True
