"""E7 -- End-to-end protocol: report sizes and metadata length (paper §3/§6.1).

The paper notes that "the length of the auxiliary metadata (L) that must be
sent to V depends on the number of loops executed, the number of different
paths per loop, and the number of indirect branch targets encountered in the
attested code."  This bench runs the full challenge-response protocol for
every workload and reports the measurement/metadata/report sizes plus the
loop statistics that determine them, and verifies every report is accepted.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.attestation import Prover, Verifier
from repro.workloads import all_workloads, get_workload


def _protocol_roundtrip(workload, prover, verifier):
    challenge = verifier.challenge(workload.name, workload.inputs)
    report = prover.attest(challenge)
    verdict = verifier.verify(report)
    return report, verdict


def test_e7_protocol_report_sizes(benchmark, report_writer):
    workloads = all_workloads()
    programs = {workload.name: workload.build() for workload in workloads}
    prover = Prover(programs)
    verifier = Verifier()
    for name, program in programs.items():
        verifier.register_program(name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

    pump = get_workload("syringe_pump")
    benchmark(lambda: _protocol_roundtrip(pump, prover, verifier))

    rows = []
    for workload in workloads:
        report, verdict = _protocol_roundtrip(workload, prover, verifier)
        metadata = report.metadata
        rows.append({
            "workload": workload.name,
            "verdict": verdict.reason.value,
            "loops": len(metadata),
            "iterations": metadata.total_iterations,
            "distinct_paths": metadata.total_distinct_paths,
            "measurement_B": len(report.measurement),
            "metadata_B": metadata.size_bytes,
            "signature_B": len(report.signature),
            "report_B": report.size_bytes,
        })
    table = format_table(
        rows,
        title="E7: attestation report composition per workload",
    )
    report_writer("e7_protocol", table)

    assert all(row["verdict"] == "accepted" for row in rows)
    assert all(row["measurement_B"] == 64 for row in rows)
    # Metadata size grows with the number of loop executions and paths.
    loopless = [row for row in rows if row["loops"] == 0]
    loopful = [row for row in rows if row["loops"] >= 3]
    if loopless and loopful:
        assert max(r["metadata_B"] for r in loopless) < max(r["metadata_B"] for r in loopful)


def test_e7_metadata_scales_with_loop_activity(benchmark, report_writer):
    """Metadata length vs the number of dispensed units on the syringe pump."""
    workload = get_workload("syringe_pump")
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

    def roundtrip(units):
        challenge = verifier.challenge(workload.name, [1, units, 0])
        report = prover.attest(challenge)
        return report

    benchmark(lambda: roundtrip(5))

    rows = []
    for units in (1, 2, 4, 8, 16, 32):
        report = roundtrip(units)
        rows.append({
            "dispensed_units": units,
            "loops": len(report.metadata),
            "iterations": report.metadata.total_iterations,
            "metadata_B": report.metadata.size_bytes,
            "report_B": report.size_bytes,
        })
    table = format_table(
        rows,
        title="E7b: metadata size vs loop iterations (syringe pump dispense)",
    )
    report_writer("e7b_metadata_scaling", table)

    iteration_counts = [row["iterations"] for row in rows]
    assert iteration_counts == sorted(iteration_counts)
    # Size grows with the number of loop executions but stays compact: the
    # iteration counters absorb the repetition instead of the hash stream.
    assert rows[-1]["metadata_B"] < 4096
