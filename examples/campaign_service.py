"""Attest a whole campaign of executions through the parallel service.

The campaign service is the verifier-side answer to scale: instead of
playing the challenge-response protocol one execution at a time, a declarative
spec (workloads x LO-FAT configurations x attack injections) is expanded into
jobs, the prover executions are fanned out across worker processes, and all
reports are verified centrally against a shared measurement database.

This example runs the E5 attack suite plus a small benign sweep twice --
once cold, once against the warm measurement database -- and prints the
service metrics, including the cache's effect on repeat verification.

Run me::

    PYTHONPATH=src python examples/campaign_service.py [workers]
"""

import sys

from repro.analysis.campaign_report import (
    format_campaign_summary,
    format_campaign_table,
)
from repro.service import (
    CampaignRunner,
    CampaignSpec,
    ConfigVariant,
    MeasurementDatabase,
    WorkloadSelection,
)


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    spec = CampaignSpec(
        name="demo",
        description="benign sweep plus the full attack suite",
        workloads=[
            WorkloadSelection("figure4_loop", input_sets=[[4], [16], [64]]),
            WorkloadSelection("syringe_pump"),
            WorkloadSelection("crc32"),
        ],
        configs=[
            ConfigVariant(),
            ConfigVariant("deep_nesting", {"max_nested_loops": 5}),
        ],
        attacks=[
            "auth_flag_flip",
            "function_pointer_hijack",
            "return_address_overwrite",
            "syringe_overdose",
        ],
    )

    database = MeasurementDatabase()
    runner = CampaignRunner(database=database)

    print("== cold run (references computed on demand) ==")
    cold = runner.run(spec, workers=workers)
    print(format_campaign_summary(cold))
    print()
    print(format_campaign_table(cold, limit=8))
    print()

    print("== warm run (every verification is a database lookup) ==")
    database.reset_counters()
    warm = runner.run(spec, workers=workers)
    print(format_campaign_summary(warm))
    print()

    speedup = (cold.verify_seconds / warm.verify_seconds
               if warm.verify_seconds else float("inf"))
    print("repeat verification speedup: %.1fx "
          "(%.3fs -> %.3fs for %d reports)"
          % (speedup, cold.verify_seconds, warm.verify_seconds, len(warm)))
    print("parallel results identical to sequential: %s"
          % (runner.run(spec, workers=1).identities() == warm.identities()))
    return 0 if (cold.ok and warm.ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
