#!/usr/bin/env python3
"""LO-FAT vs C-FLAT attestation overhead across the workload suite (E1).

Prints, for every registered workload, the baseline cycle count, the number
of control-flow events, and the relative processor overhead of LO-FAT
(always 0 %) and of the C-FLAT software cost model (linear in the number of
events), reproducing the comparison of paper §6.1.

Usage::

    python examples/overhead_comparison.py
"""

from __future__ import annotations

from repro.analysis import compare_all_workloads, format_table
from repro.schemes import CFlatCostModel
from repro.workloads import all_workloads


def main() -> int:
    comparisons = compare_all_workloads(all_workloads(), cflat_cost=CFlatCostModel())
    rows = [comparison.as_row() for comparison in comparisons]
    print(format_table(
        rows,
        columns=["workload", "instructions", "cycles", "cf_events",
                 "lofat_overhead_%", "cflat_overhead_%", "hashed_pairs",
                 "compression", "metadata_B"],
        title="Attestation overhead: LO-FAT (hardware) vs C-FLAT (software)",
    ))
    worst = max(comparisons, key=lambda c: c.cflat_overhead)
    print("\nLO-FAT overhead is 0%% on every workload; C-FLAT peaks at %.0f%% (%s)."
          % (100.0 * worst.cflat_overhead, worst.name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
