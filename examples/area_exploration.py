#!/usr/bin/env python3
"""FPGA resource exploration of the LO-FAT configuration space (E3/E8).

Reproduces the paper's area evaluation (§6.2) for the published configuration
point (n=4 indirect-target bits, l=16 branches per path, 3 nested loops on a
Virtex-7 XC7Z020) and sweeps the granularity knobs to show the memory/logic
trade-off the paper describes.

Usage::

    python examples/area_exploration.py
"""

from __future__ import annotations

from repro.analysis import area_sweep, format_table
from repro.lofat import AreaModel, LoFatConfig, VIRTEX7_XC7Z020


def main() -> int:
    # --- the paper's configuration point -----------------------------------
    config = LoFatConfig()
    estimate = AreaModel(config).estimate()
    utilization = estimate.utilization(VIRTEX7_XC7Z020)
    print("Paper configuration (n=4, l=16, depth 3) on %s" % VIRTEX7_XC7Z020.name)
    print("  LUTs      : %5d  (%.1f%% of device; paper reports ~6%%)"
          % (estimate.luts, 100 * utilization["luts"]))
    print("  Registers : %5d  (%.1f%% of device; paper reports ~4%%)"
          % (estimate.registers, 100 * utilization["registers"]))
    print("  BRAM36    : %5d  (paper reports 49: 16 per loop level + 1)"
          % estimate.bram36)
    print("  Logic overhead vs Pulpino SoC: %.0f%% (paper reports ~20%%)"
          % (100 * estimate.logic_overhead_vs_pulpino()))
    print("  Max clock : %.0f MHz (paper reports 80 MHz)" % estimate.max_clock_mhz)
    print("\nPer-component logic estimate:")
    for component, numbers in estimate.per_component.items():
        print("  %-14s LUTs %5d   registers %5d"
              % (component, numbers["luts"], numbers["registers"]))

    # --- configuration sweep ------------------------------------------------
    print("\n" + format_table(
        area_sweep(),
        columns=["nested_loops", "path_bits", "bram36", "loop_mem_kbits",
                 "luts", "registers", "lut_util_%", "reg_util_%",
                 "logic_overhead_%"],
        title="Resource usage across tracking-granularity configurations",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
