#!/usr/bin/env python3
"""Attack-detection matrix across the three run-time attack classes (E5).

For every registered attack scenario the script runs a benign execution and
an attacked execution through the full attestation protocol and reports which
schemes notice the attack: static (binary) attestation, C-FLAT (software CFA,
same measurement as LO-FAT) and LO-FAT.

Usage::

    python examples/attack_detection.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import all_attacks
from repro.attestation import Prover, Verifier
from repro.schemes import CFlatAttestation, StaticAttestation
from repro.cpu.core import Cpu
from repro.workloads import get_workload


def main() -> int:
    rows = []
    for scenario in all_attacks():
        workload = get_workload(scenario.workload_name)
        program = workload.build()

        prover = Prover({workload.name: program})
        verifier = Verifier()
        verifier.register_program(workload.name, program)
        verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

        benign_challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
        benign_report = prover.attest(benign_challenge)
        benign_verdict = verifier.verify(benign_report)

        prover.install_attack(scenario.prover_hook(program))
        attack_challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
        attacked_report = prover.attest(attack_challenge)
        attacked_verdict = verifier.verify(attacked_report)
        prover.clear_attacks()

        # C-FLAT computes the same path measurement, so it detects the same
        # deviations (at its much higher run-time cost).
        cflat = CFlatAttestation()
        benign_cpu = Cpu(program, inputs=list(scenario.challenge_inputs))
        benign_run = benign_cpu.run()
        attacked_cpu = Cpu(program, inputs=list(scenario.challenge_inputs))
        scenario.install_on(attacked_cpu, program)
        attacked_run = attacked_cpu.run()
        cflat_detects = (cflat.measure_trace(benign_run.trace)
                         != cflat.measure_trace(attacked_run.trace))

        static = StaticAttestation()
        static_detects = static.detects_runtime_attack(benign_run, attacked_run, program)

        rows.append({
            "attack": scenario.name,
            "class": scenario.attack_class,
            "workload": scenario.workload_name,
            "benign_accepted": benign_verdict.accepted,
            "output_change": "%r -> %r" % (benign_report.output, attacked_report.output),
            "static": "detect" if static_detects else "miss",
            "cflat": "detect" if cflat_detects else "miss",
            "lofat": "detect" if not attacked_verdict.accepted else "miss",
        })

    print(format_table(
        rows,
        columns=["attack", "class", "workload", "benign_accepted",
                 "output_change", "static", "cflat", "lofat"],
        title="Run-time attack detection by attestation scheme",
    ))
    missed = [row for row in rows if row["lofat"] != "detect"]
    print("\nLO-FAT detected %d/%d attacks." % (len(rows) - len(missed), len(rows)))
    return 0 if not missed else 1


if __name__ == "__main__":
    raise SystemExit(main())
