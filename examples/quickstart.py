#!/usr/bin/env python3
"""Quickstart: attest one workload end to end.

Runs the syringe-pump firmware on the simulated Pulpino core with the LO-FAT
engine attached, then plays the full challenge-response protocol between a
verifier and a prover and prints the verdict.

Usage::

    python examples/quickstart.py [workload-name]
"""

from __future__ import annotations

import sys

from repro import attest_workload, get_workload
from repro.attestation import Prover, Verifier


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "syringe_pump"
    workload = get_workload(name)
    print("Workload     : %s" % workload.name)
    print("Description  : %s" % workload.description)
    print("Inputs (i)   : %s" % workload.inputs)

    # --- 1. Stand-alone attested execution -------------------------------
    result, measurement = attest_workload(name)
    print("\n--- attested execution ---")
    print("Program output        : %r" % result.output)
    print("Retired instructions  : %d" % result.instructions)
    print("Cycles                : %d (identical with or without LO-FAT)" % result.cycles)
    print("Control-flow events   : %d" % measurement.stats["control_flow_events"])
    print("Pairs hashed          : %d" % measurement.stats["pairs_hashed"])
    print("Pairs compressed      : %d (loop repetition)" % measurement.stats["pairs_compressed"])
    print("Measurement A         : %s..." % measurement.measurement_hex[:48])
    print("Loop metadata L       : %d loop executions, %d bytes"
          % (len(measurement.metadata), measurement.metadata.size_bytes))
    for loop in measurement.metadata:
        paths = ", ".join(
            "%s x%d" % (path.encoding.bits or "-", path.iterations)
            for path in loop.paths
        )
        print("    loop @%#06x depth %d: %d iterations, paths [%s]"
              % (loop.entry, loop.depth, loop.iterations, paths))

    # --- 2. Full challenge-response protocol ------------------------------
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

    challenge = verifier.challenge(workload.name, workload.inputs)
    report = prover.attest(challenge)
    verdict = verifier.verify(report)

    print("\n--- attestation protocol ---")
    print("Challenge nonce       : %s" % challenge.nonce.hex())
    print("Report size           : %d bytes" % report.size_bytes)
    print("Signature valid, path valid: %s (%s)" % (verdict.accepted, verdict.reason.value))
    return 0 if verdict.accepted else 1


if __name__ == "__main__":
    raise SystemExit(main())
