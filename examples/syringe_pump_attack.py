#!/usr/bin/env python3
"""The syringe-pump overdose scenario (paper §2, attack class 2).

The verifier asks the pump to dispense 5 units.  A memory-corruption exploit
on the device raises the in-memory quantity to 9 while the dispense loop is
running.  Static attestation sees nothing (the binary is unchanged); LO-FAT's
loop metadata reports 9 iterations of the motor loop, so golden-replay
verification rejects the report.

Usage::

    python examples/syringe_pump_attack.py
"""

from __future__ import annotations

from repro.attacks import get_attack
from repro.attestation import Prover, Verifier
from repro.schemes import StaticAttestation
from repro.workloads import get_workload


def main() -> int:
    scenario = get_attack("syringe_overdose")
    workload = get_workload(scenario.workload_name)
    program = workload.build()

    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())

    # ----- benign run ------------------------------------------------------
    challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
    report = prover.attest(challenge)
    verdict = verifier.verify(report)
    benign_loops = report.metadata.loops_at_entry(program.symbol("dispense_loop"))
    print("Benign run     : output=%r, verdict=%s" % (report.output, verdict.reason.value))
    if benign_loops:
        print("  dispense loop iterations reported in L: %d" % benign_loops[0].iterations)

    # ----- attacked run ----------------------------------------------------
    prover.install_attack(scenario.prover_hook(program))
    challenge = verifier.challenge(workload.name, scenario.challenge_inputs)
    attacked_report = prover.attest(challenge)
    attacked_verdict = verifier.verify(attacked_report)
    attacked_loops = attacked_report.metadata.loops_at_entry(program.symbol("dispense_loop"))
    print("Attacked run   : output=%r, verdict=%s"
          % (attacked_report.output, attacked_verdict.reason.value))
    if attacked_loops:
        print("  dispense loop iterations reported in L: %d" % attacked_loops[0].iterations)

    # ----- what static attestation sees ------------------------------------
    static = StaticAttestation()
    print("Static attestation measurement unchanged: %s"
          % (static.measure(program).digest == static.measure(program).digest))
    print("\nLO-FAT detected the overdose: %s" % (not attacked_verdict.accepted))
    return 0 if not attacked_verdict.accepted else 1


if __name__ == "__main__":
    raise SystemExit(main())
