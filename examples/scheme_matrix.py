"""Compare LO-FAT, C-FLAT and static attestation through one API.

The scheme redesign makes the paper's comparison structural: every backend
implements :class:`repro.schemes.AttestationScheme`, so the same
challenge-response protocol, verifier and campaign pipeline drive all three.
This example

1. attests one workload under each registered scheme and prints the
   measured digest, report size and runtime overhead, then
2. runs the ``e11`` scheme-matrix campaign (all loop-heavy workloads plus
   every attack scenario under every scheme) and prints the detection
   matrix: the control-flow schemes reject every attack, static attestation
   (expectedly) accepts them all.

Run me::

    PYTHONPATH=src python examples/scheme_matrix.py [workers]
"""

import sys

from repro.attestation import Prover, Verifier
from repro.schemes import all_schemes, get_scheme
from repro.service import CampaignRunner, experiment_campaign
from repro.workloads import get_workload


def one_workload_all_schemes(workload_name: str) -> None:
    workload = get_workload(workload_name)
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0",
                                 prover.keystore.export_for_verifier())

    print("Attesting %r under every registered scheme:" % workload_name)
    for scheme in all_schemes():
        challenge = verifier.challenge(workload.name, workload.inputs,
                                       scheme=scheme.name)
        report = prover.attest(challenge)
        verdict = verifier.verify(report)
        overhead = prover.last_run.engine_stats.get("overhead_cycles", 0)
        print("  %-7s A=%s...  report %3d B  overhead %5d cycles  -> %s"
              % (scheme.name, report.measurement.hex()[:16],
                 report.size_bytes, overhead,
                 "ACCEPTED" if verdict.accepted else "REJECTED"))
    print()


def scheme_matrix_campaign(workers: int) -> bool:
    spec = experiment_campaign("e11")
    result = CampaignRunner().run(spec, workers=workers)

    detected = {}
    for job_result in result.results:
        if job_result.job.attack is not None:
            detected[(job_result.job.attack, job_result.job.scheme)] = \
                job_result.detected

    attacks = sorted({attack for attack, _ in detected})
    schemes = [s.name for s in all_schemes()]
    print("Attack detection matrix (campaign %r, %d jobs, %.1f jobs/s):"
          % (spec.name, len(result), result.jobs_per_second))
    header = "  %-26s" % "attack" + "".join("%-10s" % s for s in schemes)
    print(header)
    for attack in attacks:
        cells = "".join(
            "%-10s" % ("caught" if detected[(attack, scheme)] else "missed")
            for scheme in schemes
        )
        print("  %-26s%s" % (attack, cells))
    print()
    print("static attestation is blind to run-time attacks -- the paper's")
    print("motivating gap -- so 'missed' under it is the expected outcome,")
    print("and the campaign reports ok=%s." % result.ok)
    return result.ok


def main() -> int:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    one_workload_all_schemes("syringe_pump")
    ok = scheme_matrix_campaign(workers)

    # The registry is the extension point: everything above was driven by
    # names, never by concrete classes.
    print()
    print("Registered schemes: %s"
          % ", ".join(s.name for s in all_schemes()))
    print("get_scheme('cflat') -> %r" % get_scheme("cflat").description)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
