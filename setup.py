"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that the package
can be installed in environments without the ``wheel`` package (where PEP 660
editable installs are unavailable), e.g. ``python setup.py develop``.
"""

from setuptools import setup

setup()
