"""Packaging for the LO-FAT reproduction.

Installs the ``repro`` package from ``src/`` plus two console scripts that
both dispatch to :func:`repro.cli.main`:

* ``repro`` -- the primary entry point (``repro campaign --experiment all``),
* ``lofat-repro`` -- kept as an alias for earlier documentation.

The project deliberately has no runtime dependencies beyond the standard
library; the test/benchmark extras (pytest, pytest-benchmark, hypothesis)
are listed under the ``test`` extra.
"""

from setuptools import find_packages, setup

setup(
    name="lofat-repro",
    version="1.0.0",
    description=(
        "Reproduction of LO-FAT: Low-Overhead Control Flow ATtestation in "
        "Hardware (Dessouky et al., DAC 2017) with a parallel attestation "
        "campaign service"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "lofat-repro = repro.cli:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
