"""Rendering of campaign results for the CLI and the E10 benchmark.

Sits in the analysis layer so the service stays presentation-free: the
runner returns structured :class:`repro.service.runner.CampaignResult`
objects, and this module turns them into the same plain-text tables the rest
of the experiments print (via :func:`repro.analysis.report.format_table`).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import format_table


def format_campaign_summary(result) -> str:
    """A compact key/value block summarising one campaign run."""
    summary = result.summary()
    database = summary.pop("database", {})
    capture = summary.pop("capture", {})
    lines = ["Campaign %r (%s verification, %d worker%s)" % (
        summary.pop("campaign"),
        summary.pop("verify_mode"),
        summary["workers"],
        "" if summary["workers"] == 1 else "s",
    )]
    summary.pop("workers")
    pipeline = summary.pop("pipeline", "capture")
    lines.append("  execution path   : %s, %s pipeline"
                 % ("fast" if summary.pop("fast_path", True) else "legacy",
                    "capture/attest" if pipeline == "capture" else "live"))
    lines.append("  jobs             : %d" % summary.pop("jobs"))
    lines.append("  all as expected  : %s" % summary.pop("ok"))
    lines.append("  accepted reports : %d" % summary.pop("accepted"))
    lines.append("  attacks detected : %s" % summary.pop("attacks_detected"))
    expected_misses = summary.pop("expected_misses", 0)
    if expected_misses:
        lines.append("  expected misses  : %d (by scheme design, not failures)"
                     % expected_misses)
    if capture:
        lines.append(
            "  capture stage    : %.3f s -- %d unique execution%s for %d jobs "
            "(%d deduped), %d simulated, %d from store, %d reference"
            % (summary.get("capture_seconds", 0.0),
               capture.get("unique_executions", 0),
               "" if capture.get("unique_executions", 0) == 1 else "s",
               capture.get("jobs", 0),
               capture.get("deduped_jobs", 0),
               capture.get("captured", 0),
               capture.get("store_hits", 0),
               capture.get("reference_executions", 0)))
        lines.append(
            "  attest stage     : %.3f s -- %d replayed, %d live"
            % (summary.get("attest_seconds", 0.0),
               capture.get("replayed_jobs", 0),
               capture.get("live_jobs", 0)))
    summary.pop("capture_seconds", None)
    summary.pop("attest_seconds", None)
    lines.append("  prover fan-out   : %.3f s" % summary.pop("prover_seconds"))
    lines.append("  verification     : %.3f s" % summary.pop("verify_seconds"))
    lines.append("  total            : %.3f s (%.1f jobs/s)" % (
        summary.pop("total_seconds"), summary.pop("jobs_per_second")))
    if database:
        lines.append(
            "  measurement db   : %d entries (+%d trace-keyed), "
            "%d hits / %d misses (%.0f%% hit rate)"
            % (database.get("entries", 0), database.get("trace_entries", 0),
               database.get("hits", 0), database.get("misses", 0),
               100.0 * database.get("hit_rate", 0.0)))
        worker_totals = (database.get("worker_replay_hits", 0),
                         database.get("worker_replay_misses", 0))
        if any(worker_totals):
            lines.append(
                "  prover replay db : %d hits / %d misses across worker "
                "processes" % worker_totals)
    return "\n".join(lines)


def format_campaign_table(result, limit: Optional[int] = None) -> str:
    """Per-job verdict table (optionally truncated to the first ``limit``)."""
    rows = [job.as_row() for job in result.results]
    shown = rows if limit is None else rows[:limit]
    table = format_table(
        shown,
        columns=["job", "scheme", "verdict", "reason", "ok", "outcome",
                 "cache", "source", "instructions", "cycles"],
        title="Campaign %r: per-job verdicts" % result.spec_name,
    )
    if limit is not None and len(rows) > limit:
        table += "\n... (%d more jobs)" % (len(rows) - limit)
    return table


def format_campaign_failures(result) -> str:
    """Human-readable list of jobs that did not behave as expected."""
    failures = result.failures
    if not failures:
        return "no unexpected job outcomes"
    lines = ["%d unexpected job outcome(s):" % len(failures)]
    for job_result in failures:
        expectation = ("expected rejection (attack %s)" % job_result.job.attack
                       if job_result.job.expects_detection
                       else "expected acceptance")
        lines.append("  %s: %s (%s) -- %s" % (
            job_result.job.job_id,
            "ACCEPTED" if job_result.accepted else "REJECTED",
            job_result.reason,
            expectation,
        ))
        if job_result.detail:
            lines.append("      %s" % job_result.detail)
    return "\n".join(lines)
