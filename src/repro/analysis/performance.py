"""Per-workload performance accounting: LO-FAT vs C-FLAT vs no attestation.

This module implements the measurement behind the paper's central performance
claim (§6.1): "Since LO-FAT extracts and filters control-flow events in
parallel with the processor, it does not incur any performance overhead for
the attested software, as opposed to C-FLAT which incurs attestation overhead
that is linearly dependent on the number of control-flow events."

For every workload we run the *same* execution three ways:

1. uninstrumented, no attestation (the baseline cycle count);
2. with the LO-FAT engine attached as a parallel monitor (the cycle count is
   identical by construction -- the comparison verifies that);
3. with the C-FLAT software cost model applied (baseline + per-event cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.schemes.cflat import CFlatAttestation, CFlatCostModel
from repro.cpu.core import Cpu, CpuConfig
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine
from repro.workloads.common import Workload


@dataclass
class WorkloadComparison:
    """All measured quantities for one workload (one row of experiment E1)."""

    name: str
    instructions: int
    baseline_cycles: int
    control_flow_events: int
    lofat_cycles: int
    cflat_cycles: int
    lofat_internal_latency: int
    pairs_hashed: int
    pairs_compressed: int
    metadata_bytes: int
    loop_executions: int

    @property
    def lofat_overhead(self) -> float:
        """Relative processor overhead of LO-FAT (zero by construction)."""
        if self.baseline_cycles == 0:
            return 0.0
        return (self.lofat_cycles - self.baseline_cycles) / self.baseline_cycles

    @property
    def cflat_overhead(self) -> float:
        """Relative processor overhead of the C-FLAT cost model."""
        if self.baseline_cycles == 0:
            return 0.0
        return (self.cflat_cycles - self.baseline_cycles) / self.baseline_cycles

    @property
    def event_density(self) -> float:
        """Control-flow events per retired instruction."""
        if self.instructions == 0:
            return 0.0
        return self.control_flow_events / self.instructions

    @property
    def compression_ratio(self) -> float:
        """Hashed pairs / total control-flow events (lower = more compression)."""
        if self.control_flow_events == 0:
            return 1.0
        return self.pairs_hashed / self.control_flow_events

    def as_row(self) -> Dict[str, object]:
        """Row dictionary for :func:`repro.analysis.report.format_table`."""
        return {
            "workload": self.name,
            "instructions": self.instructions,
            "cycles": self.baseline_cycles,
            "cf_events": self.control_flow_events,
            "lofat_overhead_%": 100.0 * self.lofat_overhead,
            "cflat_overhead_%": 100.0 * self.cflat_overhead,
            "hashed_pairs": self.pairs_hashed,
            "compression": self.compression_ratio,
            "metadata_B": self.metadata_bytes,
        }


def compare_workload(
    workload: Workload,
    lofat_config: Optional[LoFatConfig] = None,
    cflat_cost: Optional[CFlatCostModel] = None,
    cpu_config: Optional[CpuConfig] = None,
) -> WorkloadComparison:
    """Measure one workload under no attestation, LO-FAT and C-FLAT."""
    program = workload.build()

    # 1. Baseline: no attestation attached.
    baseline_cpu = Cpu(program, inputs=list(workload.inputs), config=cpu_config)
    baseline = baseline_cpu.run()

    # 2. LO-FAT: same execution with the hardware monitor attached.
    lofat_cpu = Cpu(program, inputs=list(workload.inputs), config=cpu_config)
    engine = LoFatEngine(lofat_config)
    lofat_cpu.attach_monitor(engine.observe)
    lofat_result = lofat_cpu.run()
    measurement = engine.finalize()

    # 3. C-FLAT: software attestation cost model over the same trace.
    cflat = CFlatAttestation(cflat_cost)
    cflat_result = cflat.attest(program, baseline)

    stats = measurement.stats
    return WorkloadComparison(
        name=workload.name,
        instructions=baseline.instructions,
        baseline_cycles=baseline.cycles,
        control_flow_events=baseline.trace.control_flow_events,
        lofat_cycles=lofat_result.cycles,
        cflat_cycles=cflat_result.attested_cycles,
        lofat_internal_latency=stats["internal_latency_cycles"],
        pairs_hashed=stats["pairs_hashed"],
        pairs_compressed=stats["pairs_compressed"],
        metadata_bytes=measurement.metadata.size_bytes,
        loop_executions=len(measurement.metadata),
    )


def compare_all_workloads(
    workloads: Sequence[Workload],
    lofat_config: Optional[LoFatConfig] = None,
    cflat_cost: Optional[CFlatCostModel] = None,
    cpu_config: Optional[CpuConfig] = None,
) -> List[WorkloadComparison]:
    """Run :func:`compare_workload` over a workload suite."""
    return [
        compare_workload(workload, lofat_config, cflat_cost, cpu_config)
        for workload in workloads
    ]
