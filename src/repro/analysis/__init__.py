"""Experiment drivers: performance accounting, parameter sweeps, reporting.

* :mod:`repro.analysis.performance` -- runs workloads with and without
  attestation and produces the LO-FAT vs C-FLAT overhead comparison (E1) and
  related per-workload statistics.
* :mod:`repro.analysis.sweep` -- parameter sweeps over the LO-FAT
  configuration space (area, buffer depth, granularity) used by E3, E6, E8.
* :mod:`repro.analysis.report` -- plain-text table rendering shared by the
  benchmarks and examples so every experiment prints the same style of rows
  the paper reports.
"""

from repro.analysis.performance import WorkloadComparison, compare_all_workloads, compare_workload
from repro.analysis.report import format_table
from repro.analysis.sweep import (
    area_sweep,
    buffer_depth_sweep,
    granularity_sweep,
    hash_density_sweep,
)

__all__ = [
    "WorkloadComparison",
    "compare_all_workloads",
    "compare_workload",
    "format_table",
    "area_sweep",
    "buffer_depth_sweep",
    "granularity_sweep",
    "hash_density_sweep",
]
