"""Plain-text table rendering for experiment output.

All benches and examples print their results through :func:`format_table` so
the reproduction's output is uniform and easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (dictionaries) as an aligned plain-text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing values render as empty cells.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered: List[List[str]] = [[str(col) for col in columns]]
    for row in rows:
        rendered.append([_render_cell(row.get(col, "")) for col in columns])

    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(width) for cell, width in zip(rendered[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Render a ratio as a percentage string (0.0423 -> '4.2%')."""
    return "%.1f%%" % (100.0 * value)
