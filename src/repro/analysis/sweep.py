"""Parameter sweeps over the LO-FAT configuration space.

These drivers back the area experiment (E3), the hash-engine buffering
experiment (E6) and the granularity ablation (E8).  Each returns a list of
row dictionaries ready for :func:`repro.analysis.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpu.core import Cpu, CpuConfig
from repro.lofat.area_model import AreaModel, FpgaDevice, VIRTEX7_XC7Z020
from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine
from repro.workloads.common import Workload


def area_sweep(
    nesting_depths: Sequence[int] = (1, 2, 3, 4),
    path_bits: Sequence[int] = (8, 12, 16, 20),
    device: FpgaDevice = VIRTEX7_XC7Z020,
) -> List[Dict[str, object]]:
    """Resource estimates across nesting depth and path-ID width (E3/E8).

    The paper's configuration point is depth=3, l=16 (49 BRAMs); the sweep
    shows how "configuring these parameters to lower numbers reduces the
    memory requirements significantly" (§6.2).
    """
    rows: List[Dict[str, object]] = []
    for depth in nesting_depths:
        for bits in path_bits:
            config = LoFatConfig(
                max_nested_loops=depth,
                max_branches_per_path=bits,
                # Keep the indirect-branch budget feasible for narrow path IDs.
                max_indirect_branches_per_path=max(1, min(4, bits // 4)),
            )
            estimate = AreaModel(config).estimate()
            utilization = estimate.utilization(device)
            rows.append({
                "nested_loops": depth,
                "path_bits": bits,
                "bram36": estimate.bram36,
                "loop_mem_kbits": config.total_loop_memory_bits // 1024,
                "luts": estimate.luts,
                "registers": estimate.registers,
                "lut_util_%": 100.0 * utilization["luts"],
                "reg_util_%": 100.0 * utilization["registers"],
                "logic_overhead_%": 100.0 * estimate.logic_overhead_vs_pulpino(),
            })
    return rows


def buffer_depth_sweep(
    workloads: Sequence[Workload],
    buffer_depths: Sequence[int] = (1, 2, 4, 8, 16),
    cpu_config: Optional[CpuConfig] = None,
) -> List[Dict[str, object]]:
    """Hash-input buffer occupancy and drops per workload and depth (E6)."""
    if cpu_config is None:
        # Cycle-model experiment: observe per record so pair arrival times
        # match the hardware's per-cycle snoop (the batched fast path is
        # digest-identical but coarsens the transient occupancy numbers).
        cpu_config = CpuConfig(fast_path=False)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        program = workload.build()
        for depth in buffer_depths:
            config = LoFatConfig(hash_input_buffer_depth=depth)
            cpu = Cpu(program, inputs=list(workload.inputs), config=cpu_config)
            engine = LoFatEngine(config)
            cpu.attach_monitor(engine.observe)
            cpu.run()
            measurement = engine.finalize()
            hash_stats = measurement.stats["hash_engine"]
            rows.append({
                "workload": workload.name,
                "buffer_depth": depth,
                "pairs": hash_stats["pairs_absorbed"],
                "max_occupancy": hash_stats["max_buffer_occupancy"],
                "pad_stalls": hash_stats["pad_stalls"],
                "dropped_pairs": hash_stats["dropped_pairs"],
            })
    return rows


def granularity_sweep(
    workload: Workload,
    indirect_bits: Sequence[int] = (2, 3, 4, 6),
    max_branches: Sequence[int] = (8, 16, 24),
    cpu_config: Optional[CpuConfig] = None,
) -> List[Dict[str, object]]:
    """Trade-off between tracking granularity and memory (E8).

    Reports, per configuration: loop memory bits, how many loop paths were
    truncated (path longer than ``l`` bits) and how many indirect targets
    overflowed the CAM (reported as the all-zero code).
    """
    rows: List[Dict[str, object]] = []
    program = workload.build()
    for bits in indirect_bits:
        for branches in max_branches:
            config = LoFatConfig(
                indirect_target_bits=bits,
                max_branches_per_path=branches,
                max_indirect_branches_per_path=min(
                    2, branches // max(bits, 1)
                ) or 1,
            )
            cpu = Cpu(program, inputs=list(workload.inputs), config=cpu_config)
            engine = LoFatEngine(config)
            cpu.attach_monitor(engine.observe)
            cpu.run()
            measurement = engine.finalize()
            truncated = sum(
                1
                for loop in measurement.metadata
                for path in loop.paths
                if path.encoding.truncated
            )
            distinct = measurement.metadata.total_distinct_paths
            rows.append({
                "indirect_bits": bits,
                "path_bits": branches,
                "loop_mem_kbits": config.total_loop_memory_bits // 1024,
                "distinct_paths": distinct,
                "truncated_paths": truncated,
                "metadata_B": measurement.metadata.size_bytes,
            })
    return rows


def hash_density_sweep(
    workloads: Sequence[Workload],
    cpu_config: Optional[CpuConfig] = None,
    config: Optional[LoFatConfig] = None,
) -> List[Dict[str, object]]:
    """Hash-engine utilisation vs branch density (E6).

    For each workload: control-flow event density, pairs absorbed, the hash
    engine's busy fraction relative to the program run time, and the buffer
    high-water mark.
    """
    if cpu_config is None:
        # Cycle-model experiment: per-record observation for exact arrival
        # timing (see buffer_depth_sweep).
        cpu_config = CpuConfig(fast_path=False)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        program = workload.build()
        cpu = Cpu(program, inputs=list(workload.inputs), config=cpu_config)
        engine = LoFatEngine(config)
        cpu.attach_monitor(engine.observe)
        result = cpu.run()
        measurement = engine.finalize()
        hash_stats = measurement.stats["hash_engine"]
        events = result.trace.control_flow_events
        rows.append({
            "workload": workload.name,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "cf_events": events,
            "density": events / max(result.instructions, 1),
            "pairs_absorbed": hash_stats["pairs_absorbed"],
            "engine_busy_%": 100.0 * hash_stats["pairs_absorbed"] / max(result.cycles, 1),
            "max_buffer": hash_stats["max_buffer_occupancy"],
            "dropped": hash_stats["dropped_pairs"],
        })
    return rows
