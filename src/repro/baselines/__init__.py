"""Deprecated: the baseline attestation models moved to :mod:`repro.schemes`.

This package historically held the C-FLAT cost model and the static
(load-time) attestation model separately from the measuring scheme backends
built on top of them, which duplicated the split across two packages.  The
classes now live next to their schemes:

* :class:`repro.schemes.cflat.CFlatCostModel` / ``CFlatResult`` /
  ``CFlatAttestation`` -- C-FLAT (Abera et al., CCS 2016);
* :class:`repro.schemes.static.StaticAttestation` / ``StaticMeasurement``
  -- conventional static (binary) attestation.

Importing any of them through ``repro.baselines`` keeps working but emits a
:class:`DeprecationWarning`; migrate to ``repro.schemes``.
"""

import warnings

__all__ = [
    "CFlatCostModel",
    "CFlatResult",
    "CFlatAttestation",
    "CFlatScheme",
    "StaticAttestation",
    "StaticMeasurement",
    "StaticScheme",
]

_EXPORTS = {
    "CFlatCostModel": "repro.schemes.cflat",
    "CFlatResult": "repro.schemes.cflat",
    "CFlatAttestation": "repro.schemes.cflat",
    "CFlatScheme": "repro.schemes.cflat",
    "StaticAttestation": "repro.schemes.static",
    "StaticMeasurement": "repro.schemes.static",
    "StaticScheme": "repro.schemes.static",
}


#: Submodules historically reachable as attributes after ``import
#: repro.baselines`` (the eager imports bound them); resolve to the shim
#: submodules so that access pattern keeps working too.
_SUBMODULES = ("cflat", "static_attestation")


def __getattr__(name):
    import importlib

    if name in _SUBMODULES:
        warnings.warn(
            "repro.baselines.%s is deprecated; use repro.schemes" % name,
            DeprecationWarning,
            stacklevel=2,
        )
        return importlib.import_module("%s.%s" % (__name__, name))
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    warnings.warn(
        "repro.baselines is deprecated; import %s from %s"
        % (name, module_name),
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)
