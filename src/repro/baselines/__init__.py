"""Baseline attestation schemes LO-FAT is compared against.

* :mod:`repro.baselines.cflat` -- C-FLAT (Abera et al., CCS 2016), the
  software control-flow attestation scheme whose instrumentation overhead
  motivates LO-FAT.  Modelled as a per-control-flow-event cycle cost added to
  the uninstrumented execution (the overhead is linear in the number of
  control-flow events, which is the paper's comparison point).
* :mod:`repro.baselines.static_attestation` -- conventional static (binary)
  attestation, which measures the program image at load time and therefore
  cannot observe run-time control-flow attacks.
"""

from repro.baselines.cflat import CFlatCostModel, CFlatResult, CFlatAttestation
from repro.baselines.static_attestation import StaticAttestation, StaticMeasurement

__all__ = [
    "CFlatCostModel",
    "CFlatResult",
    "CFlatAttestation",
    "StaticAttestation",
    "StaticMeasurement",
]
