"""Baseline attestation schemes LO-FAT is compared against.

* :mod:`repro.baselines.cflat` -- C-FLAT (Abera et al., CCS 2016), the
  software control-flow attestation scheme whose instrumentation overhead
  motivates LO-FAT.  Modelled as a per-control-flow-event cycle cost added to
  the uninstrumented execution (the overhead is linear in the number of
  control-flow events, which is the paper's comparison point).
* :mod:`repro.baselines.static_attestation` -- conventional static (binary)
  attestation, which measures the program image at load time and therefore
  cannot observe run-time control-flow attacks.

Both baselines are also available as first-class, challenge-drivable
backends of the unified scheme API (:mod:`repro.schemes`): ``cflat`` and
``static`` plug into the same prover/verifier/campaign pipeline as
``lofat``.  This module keeps the historical cost-model imports working and
re-exports the scheme classes for convenience.
"""

from repro.baselines.cflat import CFlatCostModel, CFlatResult, CFlatAttestation
from repro.baselines.static_attestation import StaticAttestation, StaticMeasurement

__all__ = [
    "CFlatCostModel",
    "CFlatResult",
    "CFlatAttestation",
    "CFlatScheme",
    "StaticAttestation",
    "StaticMeasurement",
    "StaticScheme",
]

_SCHEME_EXPORTS = {"CFlatScheme": "cflat", "StaticScheme": "static"}


def __getattr__(name):
    # Lazy re-export of the scheme classes: repro.schemes imports this
    # package's submodules, so importing it eagerly here would be circular.
    if name in _SCHEME_EXPORTS:
        import importlib

        module = importlib.import_module(
            "repro.schemes.%s" % _SCHEME_EXPORTS[name]
        )
        return getattr(module, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
