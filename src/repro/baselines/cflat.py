"""Deprecated: the C-FLAT model moved to :mod:`repro.schemes.cflat`.

Importing through this module keeps working but emits a
:class:`DeprecationWarning`; migrate to ``repro.schemes.cflat`` (or the
``repro.schemes`` package exports).
"""

import warnings

__all__ = ["CFlatCostModel", "CFlatResult", "CFlatAttestation"]


def __getattr__(name):
    if name not in __all__ and name != "CFlatScheme":
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    warnings.warn(
        "repro.baselines.cflat is deprecated; import %s from "
        "repro.schemes.cflat" % name,
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.schemes import cflat

    return getattr(cflat, name)
