"""C-FLAT: software control-flow attestation (the paper's main comparison).

C-FLAT instruments every control-flow instruction of the target program so
that it traps into an attestation runtime inside a TEE (TrustZone secure
world), which updates a running hash with the (source, destination) pair
before resuming the program.  Its performance cost is therefore *linear in
the number of executed control-flow events*: each event replaces a single
branch with a trampoline, a world switch and a software hash update.

LO-FAT's claim (paper §6.1) is that it provides the same measurement without
any of that cost because the recording happens in parallel hardware.  To
reproduce the comparison we model C-FLAT as a cost function applied to the
same execution trace used for LO-FAT:

``attested_cycles = baseline_cycles + events * per_event_cycles``

where ``per_event_cycles`` decomposes into the trampoline, the world switch
and the software hash.  The default constants are deliberately conservative
(favourable to C-FLAT); the experiment sweeps them to show the conclusion is
insensitive to the exact values.

Functionally, the C-FLAT measurement over a trace is the same cumulative hash
of (Src, Dest) pairs, so the scheme detects the same control-flow deviations;
only the cost differs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cpu.core import Cpu, CpuConfig, ExecutionResult
from repro.cpu.trace import ExecutionTrace
from repro.isa.assembler import Program


@dataclass
class CFlatCostModel:
    """Per-event cycle costs of the software attestation runtime.

    Attributes:
        trampoline_cycles: executing the rewritten branch stub (register
            spills, computing the original target).
        world_switch_cycles: entering and leaving the TEE (SMC/secure monitor
            round trip); set to 0 to model a same-world software monitor.
        hash_update_cycles: software hash absorb of one 64-bit (Src, Dest)
            pair (BLAKE2s-style software hashing on a small in-order core).
        loop_event_discount: fraction of loop-internal events whose hash
            update is skipped thanks to C-FLAT's own loop handling (the
            trampoline still executes); 0.0 means every event is hashed.
    """

    trampoline_cycles: int = 20
    world_switch_cycles: int = 50
    hash_update_cycles: int = 80
    loop_event_discount: float = 0.0

    @property
    def per_event_cycles(self) -> int:
        """Total extra cycles charged per control-flow event."""
        return self.trampoline_cycles + self.world_switch_cycles + self.hash_update_cycles

    def overhead_cycles(self, events: int, loop_events: int = 0) -> int:
        """Extra cycles for a run with ``events`` control-flow events."""
        full = self.trampoline_cycles + self.world_switch_cycles + self.hash_update_cycles
        discounted = self.trampoline_cycles + self.world_switch_cycles
        loop_events = min(loop_events, events)
        if self.loop_event_discount <= 0.0:
            return events * full
        skipped = int(loop_events * self.loop_event_discount)
        return (events - skipped) * full + skipped * discounted


@dataclass
class CFlatResult:
    """Outcome of attesting one execution with the C-FLAT cost model."""

    baseline_cycles: int
    attested_cycles: int
    control_flow_events: int
    measurement: bytes
    instrumented_instructions: int

    @property
    def overhead_cycles(self) -> int:
        """Extra cycles caused by the software attestation."""
        return self.attested_cycles - self.baseline_cycles

    @property
    def overhead_ratio(self) -> float:
        """Relative slowdown (0.0 = no overhead)."""
        if self.baseline_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.baseline_cycles


class CFlatAttestation:
    """Software control-flow attestation applied to a program execution."""

    def __init__(self, cost_model: Optional[CFlatCostModel] = None) -> None:
        self.cost_model = cost_model or CFlatCostModel()

    def instrumented_instruction_count(self, program: Program) -> int:
        """Number of control-flow instructions that would be rewritten."""
        return sum(1 for instr in program.instructions if instr.is_control_flow)

    def measure_trace(self, trace: ExecutionTrace) -> bytes:
        """The cumulative measurement C-FLAT would compute for ``trace``."""
        hasher = hashlib.sha3_512()
        for record in trace.control_flow_records:
            src, dest = record.src_dest
            hasher.update(src.to_bytes(4, "little") + dest.to_bytes(4, "little"))
        return hasher.digest()

    def attest(self, program: Program, result: ExecutionResult) -> CFlatResult:
        """Apply the cost model to an existing (uninstrumented) execution."""
        events = result.trace.control_flow_events
        overhead = self.cost_model.overhead_cycles(events)
        return CFlatResult(
            baseline_cycles=result.cycles,
            attested_cycles=result.cycles + overhead,
            control_flow_events=events,
            measurement=self.measure_trace(result.trace),
            instrumented_instructions=self.instrumented_instruction_count(program),
        )

    def attest_program(
        self,
        program: Program,
        inputs: Optional[List[int]] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> Tuple[ExecutionResult, CFlatResult]:
        """Run ``program`` and attest it with the C-FLAT cost model."""
        cpu = Cpu(program, inputs=inputs, config=cpu_config)
        result = cpu.run()
        return result, self.attest(program, result)
