"""Conventional static (binary) attestation.

Static attestation measures the program image (code and initialised data) at
load time and reports the hash to the verifier.  It establishes that the
right binary was loaded but, as the paper stresses, "cannot detect run-time
exploitation techniques, since run-time attacks do not modify the program
binary" (§2).  The security experiment (E5) uses this baseline to show which
attack classes each scheme detects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.cpu.core import ExecutionResult
from repro.isa.assembler import Program


@dataclass(frozen=True)
class StaticMeasurement:
    """The load-time measurement of a program image."""

    digest: bytes
    code_bytes: int
    data_bytes: int

    @property
    def hex(self) -> str:
        return self.digest.hex()


class StaticAttestation:
    """Binary attestation of the loaded program image."""

    def measure(self, program: Program) -> StaticMeasurement:
        """Hash the program image exactly as a boot-time measurement would."""
        hasher = hashlib.sha3_256()
        hasher.update(program.code_base.to_bytes(4, "little"))
        hasher.update(program.code)
        hasher.update(program.data_base.to_bytes(4, "little"))
        hasher.update(program.data)
        return StaticMeasurement(
            digest=hasher.digest(),
            code_bytes=len(program.code),
            data_bytes=len(program.data),
        )

    def verify(self, program: Program, reported: StaticMeasurement) -> bool:
        """Check a reported load-time measurement against the expected image."""
        return self.measure(program).digest == reported.digest

    def detects_runtime_attack(self, baseline: ExecutionResult,
                               attacked: ExecutionResult,
                               program: Program) -> bool:
        """Whether static attestation notices a run-time control-flow attack.

        The measurement only depends on the program image, which run-time
        attacks leave untouched, so this always returns False when the code
        was not modified -- that is precisely the gap LO-FAT fills.
        """
        return False
