"""Deprecated: static attestation moved to :mod:`repro.schemes.static`.

Importing through this module keeps working but emits a
:class:`DeprecationWarning`; migrate to ``repro.schemes.static`` (or the
``repro.schemes`` package exports).
"""

import warnings

__all__ = ["StaticAttestation", "StaticMeasurement"]


def __getattr__(name):
    if name not in __all__ and name != "StaticScheme":
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    warnings.warn(
        "repro.baselines.static_attestation is deprecated; import %s from "
        "repro.schemes.static" % name,
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.schemes import static

    return getattr(static, name)
