"""Command-line interface for the LO-FAT reproduction.

Installed as the ``repro`` (and ``lofat-repro``) console script via setup.py,
the CLI exposes the most common interactions without writing any Python:

* ``repro list`` -- list the registered workloads and attack scenarios.
* ``repro schemes`` -- list the registered attestation schemes.
* ``repro run <workload> [--inputs 1 2 3]`` -- execute a workload on the
  core model (no attestation) and print its output and cycle count.
* ``repro attest <workload> [--scheme lofat]`` -- run the workload under an
  attestation scheme and print the measurement ``A`` and, for schemes with
  loop compression, a summary of the loop metadata ``L``.
* ``repro protocol <workload> [--scheme lofat]`` -- play the full
  challenge-response protocol and print the verifier's verdict.
* ``repro attack <scenario>`` -- run an attack scenario end to end and
  show that the verifier rejects the attacked execution.
* ``repro overhead`` -- print the E1 LO-FAT vs C-FLAT overhead table.
* ``repro area`` -- print the E3 FPGA resource estimate and sweep.
* ``repro fastpath [--workload NAME]`` -- verify that the fused fast-path
  interpreter is enabled by default and that the fast and compiled engines
  both produce byte-identical measurements to the legacy per-instruction
  loop, and print the per-scheme instructions/sec speedups (the CI smoke
  check for E12/E17).  Execution-bearing commands take ``--engine
  {legacy,fast,compiled}``; ``--legacy-loop`` is a deprecated alias for
  ``--engine legacy``.
* ``repro campaign`` -- run an attestation campaign (schemes x workloads x
  configs x attacks) through the parallel campaign service, e.g.
  ``repro campaign --experiment all --workers 4`` or
  ``repro campaign --experiment e5 --scheme lofat,cflat,static``.  Jobs are
  deduplicated by execution signature and attested from stored traces
  (``--pipeline live`` forces one fused execution per job); ``--trace-dir``
  persists the capture store across invocations.
* ``repro trace capture`` -- stage 1 only: simulate every unique execution
  a campaign needs and persist the control-flow traces to ``--trace-dir``.
* ``repro trace attest`` -- run a campaign against a capture store
  populated earlier (the verify-many half: no simulation for executions
  already captured).
* ``repro compile <file>`` -- compile a workload-language source file
  (see ``docs/LANG.md``) to RV32 assembly, cross-checking the compiler's
  CFG/loop metadata against the verifier's analysis; ``--emit-asm`` prints
  the assembly, ``--run --inputs ...`` executes the program.
* ``repro analyze [targets...]`` -- run the static dataflow analyses
  (see ``docs/ANALYSIS.md``) over the lang corpus and the registered
  workloads (or named targets / ``.lang`` files): loop-bound report, lint
  findings, ``--json`` machine output, ``--baseline`` drift gating,
  ``--policy-out`` StaticPolicy artifacts and ``--selfcheck`` dynamic
  soundness validation.
* ``repro workloads`` -- generate the seeded compiled workload families
  (``--family nest,branchy``), optionally executing each member against
  its Python reference model (``--check``).  ``repro campaign --experiment
  family`` attests the whole matrix under every scheme.
* ``repro serve`` -- run the standing attestation verifier service: an
  asyncio TCP server speaking the length-prefixed challenge/report framing
  (see ``docs/SERVER.md``), verifying against a shared measurement
  database, e.g. ``repro serve --port 4711 --database measurements.json``.
* ``repro attest-remote`` -- drive N concurrent simulated provers against
  a running server and print the throughput, e.g. ``repro attest-remote
  --port 4711 --provers 8 --rounds 20 --scheme lofat,cflat,static``.
  Exits nonzero if any (benign) report is rejected.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
from typing import List, Optional

from repro.analysis.campaign_report import (
    format_campaign_failures,
    format_campaign_summary,
    format_campaign_table,
)
from repro.analysis.performance import compare_all_workloads
from repro.analysis.report import format_table
from repro.analysis.sweep import area_sweep
from repro.attacks import all_attacks, get_attack
from repro.attestation import Prover, Verifier
from repro.cpu.core import CpuConfig, run_program
from repro.lofat.area_model import AreaModel, VIRTEX7_XC7Z020
from repro.lofat.config import LoFatConfig
from repro.schemes import all_schemes, get_scheme, scheme_names
from repro.service import (
    CampaignRunner,
    CampaignSpec,
    MeasurementDatabase,
    TraceStore,
    adversary_campaign,
    all_experiments,
    experiment_campaign,
    family_campaign,
    full_campaign,
)
from repro.workloads import all_workloads, get_workload


def _cmd_list(args: argparse.Namespace) -> int:
    print("Workloads:")
    for workload in all_workloads():
        print("  %-20s %s" % (workload.name, workload.description))
    print("\nAttack scenarios:")
    for scenario in all_attacks():
        print("  %-26s class %d, targets %s"
              % (scenario.name, scenario.attack_class, scenario.workload_name))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    print("Attestation schemes:")
    for scheme in all_schemes():
        print("  %-8s %s" % (scheme.name, scheme.description))
        print("  %-8s measurement %d bytes, detects runtime attacks: %s"
              % ("", scheme.measurement_bytes,
                 "yes" if scheme.detects_runtime_attacks else "no"))
    return 0


def _resolve_inputs(args: argparse.Namespace, workload) -> List[int]:
    return list(workload.inputs) if args.inputs is None else list(args.inputs)


def _cli_engine(args: argparse.Namespace) -> Optional[str]:
    """The execution engine selected by the CLI flags, or None for default.

    ``--legacy-loop`` is the deprecated spelling of ``--engine legacy``;
    an explicit ``--engine`` wins when both are given.
    """
    engine = getattr(args, "engine", None)
    if engine is None and getattr(args, "legacy_loop", False):
        return "legacy"
    return engine


def _cpu_config(args: argparse.Namespace) -> CpuConfig:
    """The core-model configuration implied by the CLI flags."""
    engine = _cli_engine(args)
    return CpuConfig(fast_path=engine != "legacy", engine=engine)


def _cmd_run(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    inputs = _resolve_inputs(args, workload)
    result = run_program(workload.build(), inputs=inputs, config=_cpu_config(args))
    print("output      : %s" % result.output)
    print("exit code   : %d" % result.exit_code)
    print("instructions: %d" % result.instructions)
    print("cycles      : %d" % result.cycles)
    print("cf events   : %d" % result.trace.control_flow_events)
    return result.exit_code


def _cmd_attest(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    inputs = _resolve_inputs(args, workload)
    scheme = get_scheme(args.scheme)
    result, measurement = scheme.measure_execution(
        workload.build(), inputs, cpu_config=_cpu_config(args))

    overhead = int(measurement.stats.get("overhead_cycles", 0))
    cost = ("zero attestation overhead" if overhead == 0
            else "+%d cycles attestation overhead" % overhead)
    print("scheme        : %s" % scheme.name)
    print("output        : %s" % result.output)
    print("cycles        : %d (%s)" % (result.cycles, cost))
    print("measurement A : %s" % measurement.measurement_hex)
    print("pairs hashed  : %d / %d control-flow events"
          % (measurement.stats.get("pairs_hashed", 0),
             measurement.stats.get("control_flow_events", 0)))
    print("metadata L    : %d loop executions, %d bytes"
          % (len(measurement.metadata), measurement.metadata.size_bytes))
    for loop in measurement.metadata:
        paths = ", ".join("%s x%d" % (path.encoding.bits or "-", path.iterations)
                          for path in loop.paths)
        print("  loop @%#06x depth %d iterations %d: %s"
              % (loop.entry, loop.depth, loop.iterations, paths))
    return 0


def _make_protocol(workload):
    program = workload.build()
    prover = Prover({workload.name: program})
    verifier = Verifier()
    verifier.register_program(workload.name, program)
    verifier.register_device_key("prover-0", prover.keystore.export_for_verifier())
    return program, prover, verifier


def _cmd_protocol(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    inputs = _resolve_inputs(args, workload)
    scheme = get_scheme(args.scheme)
    _, prover, verifier = _make_protocol(workload)
    challenge = verifier.challenge(workload.name, inputs, scheme=scheme.name)
    report = prover.attest(challenge)
    verdict = verifier.verify(report)
    print("scheme    : %s" % report.scheme)
    print("nonce     : %s" % challenge.nonce.hex())
    print("output    : %s" % report.output)
    print("report    : %d bytes (A=%d, L=%d, sig=%d)"
          % (report.size_bytes, len(report.measurement),
             report.metadata.size_bytes, len(report.signature)))
    print("verdict   : %s (%s)" % ("ACCEPTED" if verdict.accepted else "REJECTED",
                                   verdict.reason.value))
    return 0 if verdict.accepted else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.list or args.scenario is None:
        if not args.list and args.scenario is None:
            print("error: scenario name required (or use --list)", file=sys.stderr)
            return 2
        print("Registered attack scenarios:")
        for scenario in all_attacks():
            print("  %-32s class %d, %-12s targets %s"
                  % (scenario.name, scenario.attack_class,
                     scenario.category + ",", scenario.workload_name))
        return 0
    scenario = get_attack(args.scenario)
    workload = get_workload(scenario.workload_name)
    program, prover, verifier = _make_protocol(workload)

    benign = prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))
    benign_verdict = verifier.verify(benign)

    prover.install_attack(scenario.prover_hook(program))
    attacked = prover.attest(verifier.challenge(workload.name, scenario.challenge_inputs))
    attacked_verdict = verifier.verify(attacked)

    print("attack      : %s (class %d)" % (scenario.name, scenario.attack_class))
    print("description : %s" % scenario.description)
    print("benign run  : output=%r verdict=%s" % (benign.output, benign_verdict.reason.value))
    print("attacked run: output=%r verdict=%s" % (attacked.output, attacked_verdict.reason.value))
    print("detected    : %s" % (not attacked_verdict.accepted))
    return 0 if not attacked_verdict.accepted else 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    comparisons = compare_all_workloads(all_workloads())
    print(format_table(
        [comparison.as_row() for comparison in comparisons],
        columns=["workload", "instructions", "cycles", "cf_events",
                 "lofat_overhead_%", "cflat_overhead_%", "hashed_pairs",
                 "compression", "metadata_B"],
        title="LO-FAT vs C-FLAT attestation overhead",
    ))
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    estimate = AreaModel(LoFatConfig()).estimate()
    utilization = estimate.utilization(VIRTEX7_XC7Z020)
    print("Paper configuration point (n=4, l=16, depth 3):")
    print("  LUTs %d (%.1f%%), registers %d (%.1f%%), BRAM36 %d, %.0f MHz"
          % (estimate.luts, 100 * utilization["luts"],
             estimate.registers, 100 * utilization["registers"],
             estimate.bram36, estimate.max_clock_mhz))
    print()
    print(format_table(
        area_sweep(),
        columns=["nested_loops", "path_bits", "bram36", "loop_mem_kbits",
                 "luts", "registers"],
        title="Configuration sweep",
    ))
    return 0


def _cmd_fastpath(args: argparse.Namespace) -> int:
    """Smoke-check the fast and compiled pipelines against the legacy loop."""
    workload = get_workload(args.workload)
    program = workload.build()
    inputs = list(workload.inputs)

    default_engine = CpuConfig().resolved_engine()
    print("default engine: %s" % default_engine)
    all_identical = True

    for scheme in all_schemes():
        measurements = {}
        rates = {}
        for label in ("legacy", "fast", "compiled"):
            config = CpuConfig(engine=label, collect_trace=False)
            best = None
            for _ in range(max(1, args.repeats)):
                started = time.perf_counter()
                result, measured = scheme.measure_execution(
                    program, inputs, cpu_config=config)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            measurements[label] = (measured.measurement,
                                   measured.metadata.to_bytes())
            rates[label] = result.instructions / best if best else 0.0
        identical = (measurements["legacy"] == measurements["fast"]
                     == measurements["compiled"])
        all_identical = all_identical and identical
        legacy_rate = rates["legacy"]
        print("  %-8s measurements %s  legacy %8.0f i/s  "
              "fast %8.0f i/s (%.2fx)  compiled %8.0f i/s (%.2fx)"
              % (scheme.name, "identical" if identical else "DIFFER",
                 legacy_rate,
                 rates["fast"],
                 rates["fast"] / legacy_rate if legacy_rate else 0.0,
                 rates["compiled"],
                 rates["compiled"] / legacy_rate if legacy_rate else 0.0))

    ok = default_engine == "fast" and all_identical
    print("fastpath check: %s" % ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def _load_campaign_spec(args: argparse.Namespace) -> CampaignSpec:
    if args.spec is not None:
        with open(args.spec) as handle:
            spec = CampaignSpec.from_json(handle.read())
    elif args.experiment == "all":
        spec = full_campaign()
    elif args.experiment == "adversary":
        spec = adversary_campaign(seed=getattr(args, "seed", None))
    elif args.experiment == "family":
        spec = family_campaign(seed=getattr(args, "seed", None))
    else:
        spec = experiment_campaign(args.experiment)
    if args.repeats is not None:
        spec.repeats = args.repeats
    if args.verify_mode is not None:
        spec.verify_mode = args.verify_mode
    if args.scheme is not None:
        spec.schemes = [name.strip() for name in args.scheme.split(",")
                        if name.strip()]
    engine = _cli_engine(args)
    if engine is not None:
        spec.engine = engine
    spec.validate()
    return spec


def _make_runner(args: argparse.Namespace, database=None) -> CampaignRunner:
    trace_store = None
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is not None:
        trace_store = TraceStore(directory=trace_dir)
    return CampaignRunner(
        database=database,
        cpu_config=_cpu_config(args),
        trace_store=trace_store,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    # Spec, database and trace-store files are user input: report parse
    # problems as CLI errors rather than tracebacks.  Errors raised later,
    # from inside the runner, are genuine bugs and propagate.
    try:
        spec = _load_campaign_spec(args)
        database = None
        if args.database is not None and os.path.exists(args.database):
            database = MeasurementDatabase.load(args.database)
        runner = _make_runner(args, database)
    except (ValueError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    result = runner.run(spec, workers=args.workers,
                        pipeline=getattr(args, "pipeline", "capture"))

    if args.database is not None:
        try:
            runner.database.save(args.database)
        except OSError as error:
            print("error: cannot save measurement database: %s" % error,
                  file=sys.stderr)
            return 2
    print(format_campaign_summary(result))
    if args.show_jobs:
        print()
        print(format_campaign_table(result))
    if not result.ok:
        print()
        print(format_campaign_failures(result))
    return 0 if result.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Capture-once / verify-many trace-store operations."""
    if args.trace_command == "capture":
        try:
            spec = _load_campaign_spec(args)
            runner = _make_runner(args)
        except (ValueError, OSError) as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        stats = runner.capture(spec, workers=args.workers)
        store = stats.pop("store", {})
        print("Captured campaign %r into %s" % (spec.name, args.trace_dir))
        print("  jobs                : %d" % stats.get("jobs", 0))
        print("  unique executions   : %d (%d jobs deduped)"
              % (stats.get("unique_executions", 0),
                 stats.get("deduped_jobs", 0)))
        print("  reference captures  : %d" % stats.get("reference_executions", 0))
        print("  simulated this run  : %d (%d already in store)"
              % (stats.get("captured", 0), stats.get("store_hits", 0)))
        print("  capture time        : %.3f s" % stats.get("capture_seconds", 0.0))
        print("  store               : %d captures, %d unique traces"
              % (store.get("captures", 0), store.get("unique_traces", 0)))
        return 0
    # "attest": a full campaign run against the populated store.
    return _cmd_campaign(args)


def _cmd_adversary(args: argparse.Namespace) -> int:
    """Generate adversarial suites, check the detection matrix, fuzz parsers."""
    import json as _json

    from repro.adversary import (
        fuzz_framing,
        fuzz_tracefile,
        generate_suite,
        resolve_seed,
        run_oracle,
    )
    from repro.adversary.generator import DEFAULT_WORKLOADS
    from repro.workloads import WORKLOAD_REGISTRY

    seed = resolve_seed(args.seed)
    if args.workloads == "all":
        workloads = sorted(WORKLOAD_REGISTRY)
    elif args.workloads:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
    else:
        workloads = list(DEFAULT_WORKLOADS)
    schemes = ([name.strip() for name in args.scheme.split(",") if name.strip()]
               if args.scheme else ["lofat", "cflat", "static"])

    print("adversary seed: %d" % seed)
    suites = {name: generate_suite(name, seed=seed) for name in workloads}
    for name in workloads:
        suite = suites[name]
        counts = ", ".join("%s=%d" % item for item in sorted(suite.counts().items()))
        print("  %-20s %2d scenarios (%s)" % (name, suite.scenario_count, counts))

    if args.list:
        for name in workloads:
            suite = suites[name]
            for variant in suite.benign:
                print("  benign %-36s inputs=%s"
                      % (variant.name, list(variant.inputs)))
            for scenario in suite.attacks:
                print("  attack %-36s class %d %-15s cf_visible=%s"
                      % (scenario.name, scenario.attack_class,
                         scenario.category, scenario.control_flow_visible))
        return 0

    report = run_oracle(workloads, seed=seed, schemes=schemes, suites=suites)
    print()
    print(report.format_matrix())
    print("oracle: %d protocol runs, %d expected misses (asserted), "
          "%d failures" % (len(report.entries), len(report.expected_misses),
                           len(report.failures)))
    for entry in report.failures[:20]:
        print("  FAIL %s/%s %s (%s): expected %s, got %s (%s)"
              % (entry.workload, entry.scheme, entry.scenario, entry.family,
                 entry.expected, entry.actual, entry.reason))

    ok = report.ok
    fuzz_failures = []
    if not args.skip_fuzz:
        print()
        for fuzzer in (fuzz_tracefile, fuzz_framing):
            fuzz_report = fuzzer(seed=seed, iterations=args.fuzz_examples)
            print(fuzz_report.summary_line())
            fuzz_failures.extend(fuzz_report.failures)
            ok = ok and fuzz_report.ok

    if args.failures_file:
        payload = {
            "seed": seed,
            "oracle_failures": [
                {"workload": e.workload, "scheme": e.scheme,
                 "scenario": e.scenario, "family": e.family,
                 "expected": e.expected, "actual": e.actual,
                 "reason": e.reason}
                for e in report.failures
            ],
            "fuzz_failures": [
                {"surface": f.surface, "iteration": f.iteration,
                 "description": f.description, "blob_hex": f.blob_hex}
                for f in fuzz_failures
            ],
        }
        with open(args.failures_file, "w") as handle:
            _json.dump(payload, handle, indent=2)
            handle.write("\n")

    if not ok:
        print("\nreproduce with: repro adversary --seed %d" % seed,
              file=sys.stderr)
    return 0 if ok else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    """Compile a workload-language source file and report on the program."""
    from repro.lang import LangError, compile_source

    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    name = args.name or os.path.splitext(os.path.basename(args.file))[0]
    try:
        compiled = compile_source(source, name=name,
                                  verify=not args.no_verify)
    except LangError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    if args.emit_asm:
        print(compiled.assembly, end="")
        return 0

    print("program      : %s" % compiled.name)
    print("instructions : %d" % (len(compiled.program.code) // 4))
    print("basic blocks : %d" % len(compiled.block_leaders))
    print("functions    :")
    for fn_name, address in sorted(compiled.functions.items(),
                                   key=lambda item: item[1]):
        print("  %-16s @%#06x" % (fn_name, address))
    print("loops        : %d" % len(compiled.loops))
    for loop in compiled.loops:
        print("  %-20s @%#06x depth %d (in %s)"
              % (loop.header_label, loop.header, loop.depth, loop.function))
    if not args.no_verify:
        print("metadata     : verified against repro.cfg analysis")

    if args.run:
        result = run_program(compiled.program, inputs=list(args.inputs or []),
                             config=_cpu_config(args))
        print("output       : %r" % result.output)
        print("exit code    : %d" % result.exit_code)
        print("cycles       : %d" % result.cycles)
        return result.exit_code
    return 0


def _analyze_targets(args: argparse.Namespace):
    """Resolve the programs ``repro analyze`` covers.

    Yields ``(name, program, inputs)`` tuples: named targets may be workload
    registry names, lang-corpus entry names or ``.lang`` source paths; with
    no targets the whole lang corpus plus every registered workload is
    analyzed.
    """
    from repro.isa.assembler import assemble
    from repro.lang import compile_source
    from repro.lang.corpus import build_corpus

    corpus = {entry.name: entry for entry in build_corpus()}
    workload_names = {workload.name for workload in all_workloads()}
    if args.targets:
        for token in args.targets:
            if token in corpus:
                entry = corpus[token]
                yield token, assemble(entry.assembly), tuple(entry.inputs)
            elif token in workload_names:
                workload = get_workload(token)
                yield token, workload.build(), tuple(workload.inputs)
            elif os.path.exists(token):
                with open(token) as handle:
                    source = handle.read()
                name = os.path.splitext(os.path.basename(token))[0]
                compiled = compile_source(source, name=name)
                yield name, compiled.program, ()
            else:
                raise KeyError(token)
    else:
        for name in sorted(corpus):
            entry = corpus[name]
            yield name, assemble(entry.assembly), tuple(entry.inputs)
        for workload in all_workloads():
            yield workload.name, workload.build(), tuple(workload.inputs)


def _analyze_selfcheck(analysis, inputs) -> List[str]:
    """Execute once and compare the trace against the statically proven facts.

    Returns soundness violations (empty = every proven fact held).  This is
    the CLI face of the tier-1 soundness oracle: CI runs it over the corpus
    and the workloads on every push.
    """
    violations: List[str] = []
    result = run_program(analysis.program, inputs=list(inputs))
    valid_pairs = analysis.valid_pairs
    for pair in result.trace.executed_edges:
        if pair not in valid_pairs:
            violations.append(
                "executed edge (0x%x, 0x%x) is not in the proven valid-pair set"
                % pair
            )
            break
    executed = {record.pc for record in result.trace.records}
    for start in sorted(analysis.unreachable_blocks):
        block = analysis.cfg.block_starting_at(start)
        if block is not None and any(
            instr.address in executed for instr in block.instructions
        ):
            violations.append(
                "block 0x%x executed but was proven unreachable" % start
            )
    policy = analysis.policy
    scheme = get_scheme("lofat")
    _, measurement = scheme.measure_execution(
        analysis.program, list(inputs)
    )
    for record in measurement.metadata.loops:
        detail = policy.check_loop_record(record.entry, record.iterations)
        if detail is not None:
            violations.append("dynamic loop record violates the policy: " + detail)
    return violations


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static analysis report (and policy artifacts) over programs."""
    import json as _json

    from repro.dataflow import analyze_program, lint_program, new_findings

    baseline = {}
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                document = _json.load(handle)
        except (OSError, ValueError) as error:
            print("error: cannot read baseline: %s" % error, file=sys.stderr)
            return 2
        for row in document.get("programs", []):
            baseline[row["name"]] = row.get("findings", [])

    try:
        targets = list(_analyze_targets(args))
    except KeyError as error:
        print("error: unknown analyze target %s (not a workload, corpus "
              "entry or file)" % error, file=sys.stderr)
        return 2
    except Exception as error:  # lang compile errors on file targets
        print("error: %s" % error, file=sys.stderr)
        return 2

    if args.policy_out:
        os.makedirs(args.policy_out, exist_ok=True)

    report = {"version": 1, "programs": []}
    failed = False
    for name, program, inputs in targets:
        analysis = analyze_program(program)
        findings = lint_program(analysis)
        policy = analysis.policy
        fresh = new_findings(findings, baseline.get(name, [])) if args.baseline \
            else []
        violations: List[str] = []
        if args.selfcheck and inputs is not None:
            violations = _analyze_selfcheck(analysis, inputs)
        entry = {
            "name": name,
            "digest": program.digest,
            "blocks": len(analysis.cfg.blocks),
            "unreachable_blocks": sorted(analysis.unreachable_blocks),
            "loops": len(analysis.loops),
            "loop_bounds": [
                {
                    "entry": header,
                    "max_back_edges": bound.max_back_edges,
                    "exact_back_edges": bound.exact_back_edges,
                }
                for header, bound in sorted(analysis.loop_bounds.items())
            ],
            "findings": [finding.to_json() for finding in findings],
            "policy_digest": policy.policy_digest(),
            "soundness_violations": violations,
        }
        if args.baseline:
            entry["new_findings"] = [finding.to_json() for finding in fresh]
        report["programs"].append(entry)
        if fresh or violations:
            failed = True
        if args.policy_out:
            path = os.path.join(args.policy_out, "%s.policy.json" % name)
            with open(path, "w") as handle:
                _json.dump(policy.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")

    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 1 if failed else 0

    for entry in report["programs"]:
        print("== %s (%s) ==" % (entry["name"], entry["digest"][:12]))
        print("  blocks %d (%d unreachable), loops %d"
              % (entry["blocks"], len(entry["unreachable_blocks"]),
                 entry["loops"]))
        for bound in entry["loop_bounds"]:
            if bound["max_back_edges"] is None:
                line = "unbounded (data-dependent)"
            else:
                line = "back-edges <= %d" % bound["max_back_edges"]
                if bound["exact_back_edges"] is not None:
                    line += " (exact %d)" % bound["exact_back_edges"]
            print("  loop @%#06x %s" % (bound["entry"], line))
        for finding in entry["findings"]:
            print("  %-20s %#06x  %s"
                  % (finding["kind"], finding["address"], finding["detail"]))
        for violation in entry["soundness_violations"]:
            print("  SOUNDNESS VIOLATION: %s" % violation)
        if entry.get("new_findings"):
            print("  %d finding(s) not in the baseline" % len(entry["new_findings"]))
    print("%d program(s) analyzed%s"
          % (len(report["programs"]),
             ", FAILURES above" if failed else ""))
    return 1 if failed else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    """Generate (and optionally execute) the compiled workload families."""
    from repro.adversary.seeds import resolve_seed
    from repro.lang import families as _families

    if args.list_families:
        print("Workload families:")
        for name in _families.family_names():
            family = _families.get_family(name)
            print("  %-10s %2d members  %s"
                  % (name, len(family.grid), family.description))
        return 0

    seed = resolve_seed(args.seed)
    if args.family:
        names = [name.strip() for name in args.family.split(",") if name.strip()]
        for name in names:
            if name not in _families.FAMILY_REGISTRY:
                print("error: unknown family %r (known: %s)"
                      % (name, ", ".join(_families.family_names())),
                      file=sys.stderr)
                return 2
    else:
        names = _families.family_names()

    print("family seed: %d" % seed)
    workloads = []
    for name in names:
        workloads.extend(_families.generate_family(name, seed=seed))
    failures = 0
    for workload in workloads:
        line = "  %-24s inputs=%-24s" % (workload.name, workload.inputs)
        if args.check:
            result = run_program(workload.build(), inputs=workload.inputs,
                                 config=_cpu_config(args))
            ok = result.output == workload.expected_output
            failures += 0 if ok else 1
            line += " %s" % ("ok" if ok else
                             "MISMATCH (got %r, want %r)"
                             % (result.output, workload.expected_output))
        else:
            line += " expect=%s" % workload.expected_output.strip()
        print(line)
    print("%d workloads across %d families%s"
          % (len(workloads), len(names),
             "" if not args.check else
             (", all outputs match the reference models" if not failures
              else ", %d MISMATCHES" % failures)))
    return 1 if failures else 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """``repro serve --workers N``: the multi-process verifier fleet."""
    from repro.service.fleet import FleetError, FleetServer

    fleet = FleetServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        dispatcher=args.dispatcher,
        state_dir=args.state_dir,
        database_path=args.database,
        trace_dir=args.trace_dir,
        cpu_config=_cpu_config(args),
        allow_shutdown=args.allow_shutdown,
        session_limit=args.session_limit,
        ready_file=args.ready_file,
    )
    try:
        fleet.start()
    except (FleetError, OSError) as error:
        print("error: cannot start fleet on %s:%d: %s"
              % (args.host, args.port, error), file=sys.stderr)
        fleet.stop()
        return 2
    # Same contract as the single-process line, plus the fleet shape; the
    # E18 benchmark and CI parse the host:port.
    print("fleet listening on %s:%d (%d workers, %s dispatch)"
          % (fleet.host, fleet.port, fleet.workers, fleet.dispatcher),
          flush=True)
    try:
        fleet.wait()
    except KeyboardInterrupt:
        pass
    except FleetError as error:
        print("error: %s" % error, file=sys.stderr)
        fleet.stop()
        return 1
    summary = fleet.stop()
    stats = summary.stats
    print("fleet served %s connections, %s reports (%s accepted, "
          "%s rejected, %s protocol errors); merged %d delta records "
          "into %d database entries"
          % (stats.get("connections", 0), stats.get("reports_verified", 0),
             stats.get("accepted", 0), stats.get("rejected", 0),
             stats.get("protocol_errors", 0), summary.delta_records,
             summary.database_entries))
    if not summary.clean:
        print("error: worker exit codes %s" % summary.worker_exit_codes,
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the standing attestation verifier service until stopped."""
    from repro.service.server import AttestationServer

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.workers > 1:
        return _cmd_serve_fleet(args)

    try:
        database = None
        if args.database is not None and os.path.exists(args.database):
            database = MeasurementDatabase.load(args.database)
        trace_store = None
        if args.trace_dir is not None:
            trace_store = TraceStore(directory=args.trace_dir)
    except (ValueError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    server = AttestationServer(
        host=args.host,
        port=args.port,
        database=database,
        trace_store=trace_store,
        cpu_config=_cpu_config(args),
        allow_shutdown=args.allow_shutdown,
        session_limit=args.session_limit,
        ready_file=args.ready_file,
    )

    async def _serve() -> None:
        await server.start()
        # The bound port matters when --port 0 asked for an ephemeral one;
        # clients (and the E14 benchmark) parse this line.
        print("listening on %s:%d" % (server.host, server.port), flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        # Bind failures (port in use, privileged port) are usage errors,
        # not tracebacks.
        print("error: cannot serve on %s:%d: %s"
              % (args.host, args.port, error), file=sys.stderr)
        return 2
    if args.database is not None:
        try:
            server.database.save(args.database)
        except OSError as error:
            print("error: cannot save measurement database: %s" % error,
                  file=sys.stderr)
            return 2
    stats = server.stats.as_dict()
    print("served %d connections, %d reports (%d accepted, %d rejected, "
          "%d protocol errors)"
          % (stats["connections"], stats["reports_verified"],
             stats["accepted"], stats["rejected"], stats["protocol_errors"]))
    return 0


def _cmd_attest_remote(args: argparse.Namespace) -> int:
    """Drive simulated provers against a running attestation server."""
    from repro.service.client import AttestationClient, run_load

    schemes = [name.strip() for name in args.scheme.split(",") if name.strip()]
    workloads = [name.strip() for name in args.workload.split(",")
                 if name.strip()]
    if not schemes or not workloads:
        print("error: --scheme and --workload need at least one name",
              file=sys.stderr)
        return 2
    for name in schemes:
        if name not in scheme_names():
            print("error: unknown scheme %r" % name, file=sys.stderr)
            return 2
    trace_store = None
    if args.trace_dir is not None:
        trace_store = TraceStore(directory=args.trace_dir)

    async def _drive():
        report = await run_load(
            args.host, args.port,
            provers=args.provers, rounds=args.rounds,
            schemes=schemes, workloads=workloads,
            trace_store=trace_store, cpu_config=_cpu_config(args),
            batch=args.batch, pace_seconds=args.pace_ms / 1000.0,
        )
        if args.shutdown:
            client = AttestationClient(args.host, args.port, "prover-admin")
            await client.connect()
            await client.shutdown_server()
        return report

    from repro.service.client import RemoteAttestationError

    try:
        report = asyncio.run(_drive())
    except (ConnectionError, OSError) as error:
        print("error: cannot reach server at %s:%d: %s"
              % (args.host, args.port, error), file=sys.stderr)
        return 2
    except RemoteAttestationError as error:
        # The server answered with an ERROR frame (unknown program,
        # shutdown refused, protocol violation): a clean CLI error, not a
        # traceback.
        print("error: server rejected the session: %s" % error,
              file=sys.stderr)
        return 2

    print("provers      : %d" % report.provers)
    print("rounds each  : %d (batch %d)" % (report.rounds, args.batch))
    print("reports      : %d (%d accepted, %d rejected)"
          % (report.reports, report.accepted, report.rejected))
    print("prover side  : %d trace replays, %d live executions"
          % (report.replayed, report.executed))
    for scheme, count in sorted(report.by_scheme.items()):
        print("  %-8s %d reports" % (scheme, count))
    print("elapsed      : %.3f s" % report.elapsed_seconds)
    print("throughput   : %.1f reports/s" % report.reports_per_second)
    if report.rejections:
        for scheme, workload, reason in report.rejections[:10]:
            print("rejected     : %s/%s (%s)" % (scheme, workload, reason),
                  file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_fleet_load(args: argparse.Namespace) -> int:
    """Drive the fleet load generator against a running verifier (fleet)."""
    from repro.service.client import AttestationClient, RemoteAttestationError
    from repro.service.loadgen import FleetLoadSpec, run_fleet_load

    schemes = tuple(n.strip() for n in args.scheme.split(",") if n.strip())
    workloads = tuple(n.strip() for n in args.workload.split(",") if n.strip())
    if not schemes or not workloads:
        print("error: --scheme and --workload need at least one name",
              file=sys.stderr)
        return 2
    for name in schemes:
        if name not in scheme_names():
            print("error: unknown scheme %r" % name, file=sys.stderr)
            return 2

    spec = FleetLoadSpec(
        devices=args.devices,
        connections=args.connections,
        processes=args.processes,
        reports=args.reports,
        schemes=schemes,
        workloads=workloads,
        seed=args.seed,
        session_rounds=args.session_rounds,
        storms=args.storms,
        stale_fraction=args.stale,
        duplicate_fraction=args.duplicate,
        pace_seconds=args.pace_ms / 1000.0,
    )
    try:
        spec.validate()
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    try:
        report = run_fleet_load(
            args.host, args.port, spec=spec,
            trace_dir=args.trace_dir, cpu_config=_cpu_config(args),
        )
        if args.shutdown:
            async def _shutdown() -> None:
                client = AttestationClient(args.host, args.port, "fleet-admin")
                await client.connect()
                await client.shutdown_server()
            asyncio.run(_shutdown())
    except (ConnectionError, OSError) as error:
        print("error: cannot reach server at %s:%d: %s"
              % (args.host, args.port, error), file=sys.stderr)
        return 2
    except RemoteAttestationError as error:
        print("error: server rejected the session: %s" % error,
              file=sys.stderr)
        return 2

    print("device pool  : %d modeled, %d distinct attested"
          % (report.devices, report.distinct_devices))
    print("clients      : %d processes x %d connections"
          % (max(1, report.processes), report.connections))
    print("sessions     : %d (%d reconnects, %d storms)"
          % (report.sessions, report.reconnects, report.storms_completed))
    print("reports      : %d benign (%d accepted, %d unexpectedly rejected)"
          % (report.reports, report.accepted, report.rejected_unexpected))
    print("stale        : %d injected, %d rejected"
          % (report.stale_injected, report.stale_rejected))
    print("duplicate    : %d injected, %d rejected"
          % (report.duplicate_injected, report.duplicate_rejected))
    for scheme, count in sorted(report.by_scheme.items()):
        print("  %-8s %d reports" % (scheme, count))
    print("elapsed      : %.3f s" % report.elapsed_seconds)
    print("throughput   : %.1f reports/s" % report.reports_per_second)
    if report.rejections:
        for scheme, workload, reason in report.rejections[:10]:
            print("rejected     : %s/%s (%s)" % (scheme, workload, reason),
                  file=sys.stderr)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LO-FAT hardware control-flow attestation reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_engine_options(target, what="CPU executions"):
        target.add_argument(
            "--engine", default=None, choices=["legacy", "fast", "compiled"],
            help="execution engine for %s: the per-instruction legacy loop, "
                 "the fused fast path (default) or the superblock trace "
                 "compiler" % what,
        )
        target.add_argument(
            "--legacy-loop", action="store_true",
            help="deprecated alias for --engine legacy",
        )

    subparsers.add_parser("list", help="list workloads and attack scenarios")
    subparsers.add_parser("schemes", help="list the registered attestation schemes")

    for name, help_text in (
        ("run", "run a workload without attestation"),
        ("attest", "run a workload under an attestation scheme and print (A, L)"),
        ("protocol", "play the full challenge-response protocol"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("workload", help="workload name (see 'list')")
        sub.add_argument("--inputs", type=int, nargs="*", default=None,
                         help="override the workload's default input values")
        if name in ("run", "attest"):
            add_engine_options(sub, what="the workload execution")
        if name in ("attest", "protocol"):
            sub.add_argument("--scheme", default="lofat", choices=scheme_names(),
                             help="attestation scheme (default: lofat)")

    attack = subparsers.add_parser("attack", help="demonstrate an attack scenario")
    attack.add_argument("scenario", nargs="?", default=None,
                        help="attack scenario name (see 'list' or --list)")
    attack.add_argument("--list", action="store_true",
                        help="list the registered attack scenarios and exit")

    subparsers.add_parser("overhead", help="print the LO-FAT vs C-FLAT overhead table")
    subparsers.add_parser("area", help="print the FPGA resource estimates")

    fastpath = subparsers.add_parser(
        "fastpath",
        help="check fast-path/legacy digest equality and print the speedup",
    )
    fastpath.add_argument(
        "--workload", default="syringe_pump",
        help="workload to execute under every scheme (default: syringe_pump)",
    )
    fastpath.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timing repetitions per configuration (best-of-N, default 3)",
    )

    def add_campaign_options(target, full=True):
        source = target.add_mutually_exclusive_group()
        source.add_argument(
            "--experiment", default="all",
            choices=all_experiments() + ["all", "adversary", "family"],
            help="preset campaign: one benchmark experiment, 'all' (default), "
                 "'adversary' (seeded generated scenarios) or 'family' "
                 "(seeded compiled workload families)",
        )
        target.add_argument(
            "--seed", type=int, default=None, metavar="N",
            help="generation seed for '--experiment adversary/family' "
                 "(default: REPRO_SEED or the built-in seed)",
        )
        source.add_argument(
            "--spec", default=None, metavar="FILE",
            help="JSON campaign spec file (see repro.service.CampaignSpec)",
        )
        target.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="prover worker processes (1 = sequential, default)",
        )
        target.add_argument(
            "--repeats", type=int, default=None, metavar="N",
            help="override the spec's repeat count",
        )
        target.add_argument(
            "--verify-mode", default=None,
            choices=["database", "replay", "structural"],
            help="override the spec's verification mode",
        )
        target.add_argument(
            "--scheme", default=None, metavar="NAMES",
            help="override the spec's attestation schemes (comma-separated, "
                 "e.g. lofat,cflat,static)",
        )
        add_engine_options(target, what="prover and verifier executions")
        if full:
            target.add_argument(
                "--database", default=None, metavar="FILE",
                help="measurement database file to load before and save "
                     "after the run",
            )
            target.add_argument(
                "--show-jobs", action="store_true",
                help="print the per-job verdict table",
            )
            target.add_argument(
                "--pipeline", default="capture",
                choices=["capture", "live"],
                help="report production: 'capture' dedupes executions and "
                     "attests from stored traces (default); 'live' runs one "
                     "fused execution per job",
            )

    campaign = subparsers.add_parser(
        "campaign",
        help="run an attestation campaign through the parallel service",
    )
    add_campaign_options(campaign)
    campaign.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="persist the capture store in DIR (reused across invocations)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="capture-once / verify-many operations on a persistent "
             "trace store",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_capture = trace_sub.add_parser(
        "capture",
        help="simulate every unique execution of a campaign and persist "
             "the control-flow traces",
    )
    add_campaign_options(trace_capture, full=False)
    trace_capture.add_argument(
        "--trace-dir", required=True, metavar="DIR",
        help="directory of the persistent capture store",
    )
    trace_attest = trace_sub.add_parser(
        "attest",
        help="run a campaign against a previously captured trace store",
    )
    add_campaign_options(trace_attest)
    trace_attest.add_argument(
        "--trace-dir", required=True, metavar="DIR",
        help="directory of the persistent capture store",
    )

    adversary = subparsers.add_parser(
        "adversary",
        help="generate adversarial scenarios, check the detection matrix "
             "and fuzz the trust-boundary parsers (seeded)",
    )
    adversary.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="generation seed (default: REPRO_SEED or the built-in seed)",
    )
    adversary.add_argument(
        "--workloads", default=None, metavar="NAMES",
        help="comma-separated workload names, or 'all' "
             "(default: the attack-target workloads)",
    )
    adversary.add_argument(
        "--scheme", default=None, metavar="NAMES",
        help="comma-separated schemes to check (default: lofat,cflat,static)",
    )
    adversary.add_argument(
        "--list", action="store_true",
        help="only print the generated scenarios, skip oracle and fuzzing",
    )
    adversary.add_argument(
        "--fuzz-examples", type=int, default=None, metavar="N",
        help="mutations per parser surface "
             "(default: REPRO_FUZZ_EXAMPLES or 1000)",
    )
    adversary.add_argument(
        "--skip-fuzz", action="store_true",
        help="skip the parser fuzzing stage",
    )
    adversary.add_argument(
        "--failures-file", default=None, metavar="FILE",
        help="write oracle/fuzz failures as JSON (CI artifact)",
    )

    compile_cmd = subparsers.add_parser(
        "compile",
        help="compile a workload-language source file to RV32 assembly",
    )
    compile_cmd.add_argument("file", help="workload-language source file")
    compile_cmd.add_argument("--name", default=None,
                             help="program name (default: the file stem)")
    compile_cmd.add_argument("--emit-asm", action="store_true",
                             help="print the generated assembly and exit")
    compile_cmd.add_argument("--no-verify", action="store_true",
                             help="skip the codegen-metadata vs repro.cfg "
                                  "cross-check")
    compile_cmd.add_argument("--run", action="store_true",
                             help="execute the compiled program")
    compile_cmd.add_argument("--inputs", type=int, nargs="*", default=None,
                             help="input values for --run")
    add_engine_options(compile_cmd, what="--run executions")

    analyze = subparsers.add_parser(
        "analyze",
        help="static dataflow analysis report over programs "
             "(loop bounds, lint findings, StaticPolicy artifacts)",
    )
    analyze.add_argument(
        "targets", nargs="*",
        help="workload names, lang-corpus entry names or .lang files "
             "(default: the whole lang corpus plus every workload)",
    )
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    analyze.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="previous --json report; exit 1 on lint findings not in it",
    )
    analyze.add_argument(
        "--policy-out", default=None, metavar="DIR",
        help="write one <name>.policy.json StaticPolicy artifact per program",
    )
    analyze.add_argument(
        "--selfcheck", action="store_true",
        help="execute each program once and fail on any statically proven "
             "fact the dynamic trace violates (the CI soundness gate)",
    )

    workloads_cmd = subparsers.add_parser(
        "workloads",
        help="generate the compiled workload families (seeded)",
    )
    workloads_cmd.add_argument(
        "--family", default=None, metavar="NAMES",
        help="comma-separated family names (default: all families)",
    )
    workloads_cmd.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="generation seed (default: REPRO_SEED or the built-in seed)",
    )
    workloads_cmd.add_argument(
        "--list-families", action="store_true",
        help="list the registered families and exit",
    )
    workloads_cmd.add_argument(
        "--check", action="store_true",
        help="execute every generated workload and compare its output "
             "against the family's Python reference model",
    )
    add_engine_options(workloads_cmd, what="--check executions")

    serve = subparsers.add_parser(
        "serve",
        help="run the standing attestation verifier service (asyncio TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=4711,
                       help="TCP port; 0 picks an ephemeral port and prints "
                            "it (default: 4711)")
    serve.add_argument("--database", default=None, metavar="FILE",
                       help="measurement database to load at startup and "
                            "save (atomically) at shutdown")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="capture store; cold references replay stored "
                            "benign traces instead of re-simulating")
    serve.add_argument("--session-limit", type=int, default=4, metavar="N",
                       help="concurrent reference sessions per scheme "
                            "(default: 4)")
    serve.add_argument("--allow-shutdown", action="store_true",
                       help="honour the wire SHUTDOWN frame (CI smoke runs)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="verifier worker processes; >1 runs the "
                            "multi-process fleet with a shared database "
                            "snapshot + per-worker delta logs (default: 1)")
    serve.add_argument("--dispatcher", default="auto",
                       choices=["auto", "reuseport", "handoff"],
                       help="fleet connection dispatch: kernel SO_REUSEPORT "
                            "balancing or pre-fork socket handoff "
                            "(default: auto)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="fleet state directory (ready flags, delta "
                            "logs, worker stats; default: a temp dir)")
    serve.add_argument("--ready-file", default=None, metavar="FILE",
                       help="atomically write 'host:port' here once the "
                            "server (or every fleet worker) is accepting -- "
                            "a deterministic readiness signal for scripts")
    add_engine_options(serve, what="reference computations")

    attest_remote = subparsers.add_parser(
        "attest-remote",
        help="drive N concurrent simulated provers against a running server",
    )
    attest_remote.add_argument("--host", default="127.0.0.1",
                               help="server address (default: 127.0.0.1)")
    attest_remote.add_argument("--port", type=int, default=4711,
                               help="server port (default: 4711)")
    attest_remote.add_argument("--provers", type=int, default=1, metavar="N",
                               help="concurrent prover connections "
                                    "(default: 1)")
    attest_remote.add_argument("--rounds", type=int, default=1, metavar="R",
                               help="attestation rounds per prover "
                                    "(default: 1)")
    attest_remote.add_argument("--batch", type=int, default=1, metavar="B",
                               help="rounds pipelined per verification "
                                    "session (default: 1 = unbatched)")
    attest_remote.add_argument("--scheme", default="lofat", metavar="NAMES",
                               help="comma-separated scheme names to cycle "
                                    "through (default: lofat)")
    attest_remote.add_argument("--workload", default="syringe_pump",
                               metavar="NAMES",
                               help="comma-separated workloads to attest "
                                    "(default: syringe_pump)")
    attest_remote.add_argument("--trace-dir", default=None, metavar="DIR",
                               help="replay stored captures instead of "
                                    "re-simulating prover executions")
    attest_remote.add_argument("--pace-ms", type=float, default=0.0,
                               metavar="MS",
                               help="simulated device latency per round "
                                    "(closed-loop load; default 0 = "
                                    "unpaced wire throughput)")
    attest_remote.add_argument("--shutdown", action="store_true",
                               help="send a SHUTDOWN frame after the run "
                                    "(server must allow it)")
    add_engine_options(attest_remote, what="live prover executions")

    fleet_load = subparsers.add_parser(
        "fleet-load",
        help="generate realistic fleet traffic (churn, heavy-tailed rates, "
             "reconnect storms, stale/duplicate reports) against a server",
    )
    fleet_load.add_argument("--host", default="127.0.0.1",
                            help="server address (default: 127.0.0.1)")
    fleet_load.add_argument("--port", type=int, default=4711,
                            help="server port (default: 4711)")
    fleet_load.add_argument("--devices", type=int, default=1_000_000,
                            metavar="N",
                            help="modeled device population; identities are "
                                 "drawn heavy-tailed from it "
                                 "(default: 1000000)")
    fleet_load.add_argument("--connections", type=int, default=8, metavar="N",
                            help="concurrent device connections "
                                 "(default: 8)")
    fleet_load.add_argument("--processes", type=int, default=1, metavar="N",
                            help="client OS processes driving the "
                                 "connections (default: 1)")
    fleet_load.add_argument("--reports", type=int, default=200, metavar="N",
                            help="benign reports to submit in total "
                                 "(default: 200)")
    fleet_load.add_argument("--scheme", default="lofat", metavar="NAMES",
                            help="comma-separated scheme names "
                                 "(default: lofat)")
    fleet_load.add_argument("--workload", default="syringe_pump",
                            metavar="NAMES",
                            help="comma-separated workloads "
                                 "(default: syringe_pump)")
    fleet_load.add_argument("--session-rounds", type=int, default=4,
                            metavar="R",
                            help="mean rounds per connection before the "
                                 "device churns (default: 4)")
    fleet_load.add_argument("--storms", type=int, default=0, metavar="N",
                            help="synchronized reconnect storms during the "
                                 "run (default: 0)")
    fleet_load.add_argument("--stale", type=float, default=0.0, metavar="P",
                            help="per-session probability of submitting a "
                                 "stale report on a fresh connection; every "
                                 "one must be rejected (default: 0)")
    fleet_load.add_argument("--duplicate", type=float, default=0.0,
                            metavar="P",
                            help="per-round probability of re-submitting "
                                 "the same signed report; every duplicate "
                                 "must be rejected (default: 0)")
    fleet_load.add_argument("--seed", type=int,
                            default=int(os.environ.get("REPRO_SEED",
                                                       "20170618")),
                            help="deterministic traffic seed "
                                 "(default: $REPRO_SEED or 20170618)")
    fleet_load.add_argument("--trace-dir", default=None, metavar="DIR",
                            help="replay stored captures instead of "
                                 "re-simulating prover executions")
    fleet_load.add_argument("--pace-ms", type=float, default=0.0,
                            metavar="MS",
                            help="simulated device latency per round "
                                 "(default 0 = unpaced wire throughput)")
    fleet_load.add_argument("--shutdown", action="store_true",
                            help="send a SHUTDOWN frame after the run "
                                 "(server must allow it)")
    add_engine_options(fleet_load, what="live prover executions")
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "schemes": _cmd_schemes,
    "run": _cmd_run,
    "attest": _cmd_attest,
    "protocol": _cmd_protocol,
    "attack": _cmd_attack,
    "overhead": _cmd_overhead,
    "area": _cmd_area,
    "fastpath": _cmd_fastpath,
    "campaign": _cmd_campaign,
    "adversary": _cmd_adversary,
    "compile": _cmd_compile,
    "analyze": _cmd_analyze,
    "workloads": _cmd_workloads,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "attest-remote": _cmd_attest_remote,
    "fleet-load": _cmd_fleet_load,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
