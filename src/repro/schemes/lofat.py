"""LO-FAT as an :class:`repro.schemes.base.AttestationScheme` backend.

Wraps :class:`repro.lofat.engine.LoFatEngine` -- the paper's hardware model --
behind the scheme protocol.  Because the engine observes the pipeline in
parallel, the cost model adds **zero** processor cycles; that is the paper's
central performance claim and what E1/E11 compare against C-FLAT.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.lofat.config import LoFatConfig
from repro.lofat.engine import LoFatEngine
from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeMeasurement,
)
from repro.schemes.registry import register_scheme


class LoFatSession(MeasurementSession):
    """One attested execution observed by a fresh LO-FAT engine."""

    def __init__(self, config: Optional[LoFatConfig] = None) -> None:
        self.engine = LoFatEngine(config)

    def observe(self, record) -> None:
        self.engine.observe(record)

    def observe_batch(self, records) -> None:
        self.engine.observe_batch(records)

    def observe_block(self, records, chunk, pairs) -> None:
        self.engine.observe_block(records, chunk, pairs)

    def sync_straight_line(self, next_pc, cycle) -> None:
        self.engine.sync_straight_line(next_pc, cycle)

    def finish_run(self, instructions, cycle) -> None:
        self.engine.finish_run(instructions, cycle)

    def finalize(self) -> SchemeMeasurement:
        measurement = self.engine.finalize()
        return SchemeMeasurement(
            scheme=LoFatScheme.name,
            measurement=measurement.measurement,
            metadata=measurement.metadata,
            stats=measurement.stats,
        )


@register_scheme
class LoFatScheme(AttestationScheme):
    """Hardware control-flow attestation (Dessouky et al., DAC 2017)."""

    name = "lofat"
    description = ("parallel hardware measurement: SHA3-512 over (Src, Dest) "
                   "pairs with loop compression, zero processor overhead")
    measurement_bytes = 64
    detects_runtime_attacks = True

    def configure(self, params: Optional[Mapping] = None) -> LoFatConfig:
        if isinstance(params, LoFatConfig):
            return params
        try:
            return LoFatConfig(**dict(params or {}))
        except (TypeError, ValueError) as error:
            raise SchemeConfigError(
                "invalid lofat parameters: %s" % error
            ) from None

    def open_session(self, program, config=None) -> LoFatSession:
        return LoFatSession(config)

    def cost_model(self, trace, config=None) -> SchemeCost:
        # The engine is a monitor on the retired-instruction stream: the
        # core's cycle count is identical with and without it.
        return SchemeCost(
            scheme=self.name,
            baseline_cycles=trace.cycles,
            attested_cycles=trace.cycles,
            control_flow_events=trace.control_flow_events,
        )
