"""Static (binary) attestation as an :class:`AttestationScheme` backend.

Static attestation measures the program image at load time and reports the
hash; it establishes that the right binary was loaded but "cannot detect
run-time exploitation techniques, since run-time attacks do not modify the
program binary" (paper §2).  Accordingly ``detects_runtime_attacks`` is
False: the campaign service *expects* attacked executions to be accepted
under this scheme, which is exactly the gap LO-FAT fills (experiment E5/E11).

The measurement is execution-independent, so :meth:`reference_measurement`
skips the replay entirely -- verification is O(hash) no matter the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.static_attestation import StaticAttestation
from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeMeasurement,
)
from repro.schemes.registry import register_scheme


@dataclass(frozen=True)
class StaticConfig:
    """Static attestation has no tunable parameters; the type exists so the
    scheme protocol (configure / config_digest) stays uniform."""


class StaticSession(MeasurementSession):
    """Load-time measurement: hash the image, ignore the execution."""

    def __init__(self, program) -> None:
        self.program = program
        self._finalized: Optional[SchemeMeasurement] = None

    def observe(self, record) -> None:
        # The boot-time measurement happened before the first instruction
        # retired; run-time records carry no information for this scheme.
        pass

    def observe_batch(self, records) -> None:
        # Batched delivery carries no information either; declaring the hook
        # keeps static-scheme executions on the CPU's fast path.
        pass

    def finalize(self) -> SchemeMeasurement:
        if self._finalized is not None:
            return self._finalized
        measured = StaticAttestation().measure(self.program)
        self._finalized = SchemeMeasurement(
            scheme=StaticScheme.name,
            measurement=measured.digest,
            stats={
                "control_flow_events": 0,
                "pairs_hashed": 0,
                "code_bytes": measured.code_bytes,
                "data_bytes": measured.data_bytes,
                "processor_stall_cycles": 0,
            },
        )
        return self._finalized


@register_scheme
class StaticScheme(AttestationScheme):
    """Conventional static attestation: hash of the loaded code image."""

    name = "static"
    description = ("load-time hash of the program image: detects modified "
                   "binaries, blind to run-time control-flow attacks")
    measurement_bytes = 32
    detects_runtime_attacks = False

    def configure(self, params: Optional[Mapping] = None) -> StaticConfig:
        if isinstance(params, StaticConfig):
            return params
        if params:
            raise SchemeConfigError(
                "static attestation takes no parameters (got: %s)"
                % ", ".join(sorted(params))
            )
        return StaticConfig()

    def open_session(self, program, config=None) -> StaticSession:
        return StaticSession(program)

    def reference_measurement(
        self, program, inputs, config=None, cpu_config=None,
    ) -> SchemeMeasurement:
        # The image hash does not depend on inputs or execution: measure
        # directly instead of replaying the program.
        return StaticSession(program).finalize()

    def cost_model(self, trace, config=None) -> SchemeCost:
        # Measured once at load time; the attested execution itself runs at
        # native speed.
        return SchemeCost(
            scheme=self.name,
            baseline_cycles=trace.cycles,
            attested_cycles=trace.cycles,
            control_flow_events=trace.control_flow_events,
        )
