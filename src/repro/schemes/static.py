"""Static (binary) attestation as an :class:`AttestationScheme` backend.

Static attestation measures the program image at load time and reports the
hash; it establishes that the right binary was loaded but "cannot detect
run-time exploitation techniques, since run-time attacks do not modify the
program binary" (paper §2).  Accordingly ``detects_runtime_attacks`` is
False: the campaign service *expects* attacked executions to be accepted
under this scheme, which is exactly the gap LO-FAT fills (experiment E5/E11).

The measurement is execution-independent, so :meth:`reference_measurement`
skips the replay entirely -- verification is O(hash) no matter the workload
-- and ``reference_requires_execution`` is False, so the capture-once
campaign pipeline never plans a benign capture for a static reference.

The load-time measurement model itself (:class:`StaticAttestation`,
:class:`StaticMeasurement`) lives here too, next to the scheme backend
built on top of it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.cpu.core import ExecutionResult
from repro.isa.assembler import Program
from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeMeasurement,
)
from repro.schemes.registry import register_scheme


@dataclass(frozen=True)
class StaticMeasurement:
    """The load-time measurement of a program image."""

    digest: bytes
    code_bytes: int
    data_bytes: int

    @property
    def hex(self) -> str:
        return self.digest.hex()


class StaticAttestation:
    """Binary attestation of the loaded program image."""

    def measure(self, program: Program) -> StaticMeasurement:
        """Hash the program image exactly as a boot-time measurement would."""
        hasher = hashlib.sha3_256()
        hasher.update(program.code_base.to_bytes(4, "little"))
        hasher.update(program.code)
        hasher.update(program.data_base.to_bytes(4, "little"))
        hasher.update(program.data)
        return StaticMeasurement(
            digest=hasher.digest(),
            code_bytes=len(program.code),
            data_bytes=len(program.data),
        )

    def verify(self, program: Program, reported: StaticMeasurement) -> bool:
        """Check a reported load-time measurement against the expected image."""
        return self.measure(program).digest == reported.digest

    def detects_runtime_attack(self, baseline: ExecutionResult,
                               attacked: ExecutionResult,
                               program: Program) -> bool:
        """Whether static attestation notices a run-time control-flow attack.

        The measurement only depends on the program image, which run-time
        attacks leave untouched, so this always returns False when the code
        was not modified -- that is precisely the gap LO-FAT fills.
        """
        return False


@dataclass(frozen=True)
class StaticConfig:
    """Static attestation has no tunable parameters; the type exists so the
    scheme protocol (configure / config_digest) stays uniform."""


class StaticSession(MeasurementSession):
    """Load-time measurement: hash the image, ignore the execution."""

    def __init__(self, program) -> None:
        self.program = program
        self._finalized: Optional[SchemeMeasurement] = None

    def observe(self, record) -> None:
        # The boot-time measurement happened before the first instruction
        # retired; run-time records carry no information for this scheme.
        pass

    def observe_batch(self, records) -> None:
        # Batched delivery carries no information either; declaring the hook
        # keeps static-scheme executions on the CPU's fast path and makes
        # stored-trace replay a no-op stream.
        pass

    def finalize(self) -> SchemeMeasurement:
        if self._finalized is not None:
            return self._finalized
        measured = StaticAttestation().measure(self.program)
        self._finalized = SchemeMeasurement(
            scheme=StaticScheme.name,
            measurement=measured.digest,
            stats={
                "control_flow_events": 0,
                "pairs_hashed": 0,
                "code_bytes": measured.code_bytes,
                "data_bytes": measured.data_bytes,
                "processor_stall_cycles": 0,
            },
        )
        return self._finalized


@register_scheme
class StaticScheme(AttestationScheme):
    """Conventional static attestation: hash of the loaded code image."""

    name = "static"
    description = ("load-time hash of the program image: detects modified "
                   "binaries, blind to run-time control-flow attacks")
    measurement_bytes = 32
    detects_runtime_attacks = False
    reference_requires_execution = False

    def configure(self, params: Optional[Mapping] = None) -> StaticConfig:
        if isinstance(params, StaticConfig):
            return params
        if params:
            raise SchemeConfigError(
                "static attestation takes no parameters (got: %s)"
                % ", ".join(sorted(params))
            )
        return StaticConfig()

    def open_session(self, program, config=None) -> StaticSession:
        return StaticSession(program)

    def reference_measurement(
        self, program, inputs, config=None, cpu_config=None,
    ) -> SchemeMeasurement:
        # The image hash does not depend on inputs or execution: measure
        # directly instead of replaying the program.
        return StaticSession(program).finalize()

    def cost_model(self, trace, config=None) -> SchemeCost:
        # Measured once at load time; the attested execution itself runs at
        # native speed.
        return SchemeCost(
            scheme=self.name,
            baseline_cycles=trace.cycles,
            attested_cycles=trace.cycles,
            control_flow_events=trace.control_flow_events,
        )
