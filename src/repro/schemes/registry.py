"""Decorator-based registry of attestation schemes.

Backends register themselves at import time::

    @register_scheme
    class MyScheme(AttestationScheme):
        name = "mine"
        ...

and everything downstream -- prover, verifier, measurement database, campaign
specs, CLI -- resolves them with :func:`get_scheme` by the name carried in
challenges and reports.  Lookup is fail-closed: an unknown name raises
:class:`SchemeNotFoundError` (a ``KeyError``), never a silent default.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Type

from repro.schemes.base import AttestationScheme, SchemeError


class SchemeNotFoundError(KeyError):
    """Raised when a scheme name is not registered."""


class DuplicateSchemeError(SchemeError):
    """Raised when two backends claim the same scheme name."""


class SchemeRegistry:
    """Name -> scheme instance mapping with decorator registration."""

    def __init__(self) -> None:
        self._schemes: Dict[str, AttestationScheme] = {}
        # Registration is check-then-insert, so it is serialised; lookups
        # stay lock-free (dict reads are atomic under the GIL and scheme
        # instances are immutable by contract) -- the attestation server
        # resolves schemes from executor threads.
        self._lock = threading.Lock()

    def register(self, scheme_class: Type[AttestationScheme]) -> Type[AttestationScheme]:
        """Register ``scheme_class`` under its ``name`` (decorator-friendly)."""
        name = getattr(scheme_class, "name", "")
        if not name:
            raise SchemeError(
                "scheme class %s declares no name" % scheme_class.__name__
            )
        with self._lock:
            if name in self._schemes:
                raise DuplicateSchemeError(
                    "scheme %r is already registered (by %s)"
                    % (name, type(self._schemes[name]).__name__)
                )
            self._schemes[name] = scheme_class()
        return scheme_class

    def get(self, name: str) -> AttestationScheme:
        """Resolve a scheme by name; raises :class:`SchemeNotFoundError`."""
        try:
            return self._schemes[name]
        except KeyError:
            raise SchemeNotFoundError(
                "unknown attestation scheme %r (registered: %s)"
                % (name, ", ".join(sorted(self._schemes)) or "none")
            ) from None

    def names(self) -> List[str]:
        """Registered scheme names, sorted."""
        return sorted(self._schemes)

    def all(self) -> List[AttestationScheme]:
        """All registered scheme instances, sorted by name."""
        return [self._schemes[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._schemes

    def __len__(self) -> int:
        return len(self._schemes)


#: The process-wide registry the first-class backends register into.
SCHEME_REGISTRY = SchemeRegistry()


def register_scheme(scheme_class: Type[AttestationScheme]) -> Type[AttestationScheme]:
    """Class decorator registering a backend in :data:`SCHEME_REGISTRY`."""
    return SCHEME_REGISTRY.register(scheme_class)


def get_scheme(name: str) -> AttestationScheme:
    """Resolve a scheme from the process-wide registry."""
    return SCHEME_REGISTRY.get(name)


def all_schemes() -> List[AttestationScheme]:
    """All registered schemes, sorted by name."""
    return SCHEME_REGISTRY.all()


def scheme_names() -> List[str]:
    """Registered scheme names, sorted."""
    return SCHEME_REGISTRY.names()
