"""The public attestation-scheme contract.

The paper's headline claim is comparative: LO-FAT's parallel hardware
measurement against C-FLAT's software instrumentation and classic static
(binary) attestation.  :class:`AttestationScheme` is the one protocol all
three speak, so the prover, the verifier, the measurement database and the
campaign service are scheme-agnostic: a scheme turns raw parameters into a
validated configuration, opens a :class:`MeasurementSession` that consumes
the retired-instruction stream, and judges a report against an expected
reference.

The contract (see ``docs/SCHEMES.md`` for the how-to-add-a-backend guide):

* ``name`` -- the registry name carried in challenges and reports.
* ``configure(params)`` -- validated, scheme-specific configuration object.
* ``open_session(program, config)`` -- a fresh measurement session; its
  ``observe`` hook is attached as a CPU monitor.
* ``verify(report, expected)`` -- compare a report against the expected
  ``(A, serialized L)`` reference.
* ``replay_measurement(program, trace, config)`` -- the verify-many half of
  the capture-once pipeline: measure a stored control-flow trace through a
  fresh session, no CPU in the loop, byte-identical to live execution.
* ``cost_model(trace, config)`` -- the scheme's runtime cost applied to an
  execution (the E1/E11 overhead comparisons).

Verdict types (:class:`VerdictReason`, :class:`VerificationResult`) live here
so schemes can return them without importing the verifier; the historical
import path ``repro.attestation.verifier`` re-exports both.
"""

from __future__ import annotations

import abc
import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass, replace
from typing import ClassVar, Mapping, Optional, Tuple

from repro.lofat.metadata import LoopMetadata


class SchemeError(ValueError):
    """Base class for attestation-scheme errors."""


class SchemeConfigError(SchemeError):
    """Raised when scheme parameters do not form a valid configuration."""


class VerdictReason(enum.Enum):
    """Why a report was accepted or rejected."""

    ACCEPTED = "accepted"
    UNKNOWN_PROGRAM = "unknown_program"
    UNKNOWN_NONCE = "unknown_nonce"
    NONCE_REUSED = "nonce_reused"
    BAD_SIGNATURE = "bad_signature"
    SCHEME_MISMATCH = "scheme_mismatch"
    PROGRAM_MISMATCH = "program_mismatch"
    MEASUREMENT_MISMATCH = "measurement_mismatch"
    METADATA_MISMATCH = "metadata_mismatch"
    METADATA_CFG_VIOLATION = "metadata_cfg_violation"
    POLICY_VIOLATION = "policy_violation"
    NO_REFERENCE = "no_reference_measurement"


@dataclass
class VerificationResult:
    """The verifier's verdict on one attestation report."""

    accepted: bool
    reason: VerdictReason
    detail: str = ""

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class SchemeMeasurement:
    """What one measurement session produced.

    Every scheme reports through the same shape so reports, signatures and
    database entries are uniform: ``measurement`` is the scheme's digest
    (64 bytes for the control-flow hashes, 32 for the static image hash),
    ``metadata`` is the auxiliary data ``L`` (empty for schemes without loop
    compression) and ``stats`` carries the scheme's operational numbers.
    """

    scheme: str
    measurement: bytes
    metadata: LoopMetadata = field(default_factory=LoopMetadata)
    stats: dict = field(default_factory=dict)

    @property
    def measurement_hex(self) -> str:
        return self.measurement.hex()

    @property
    def metadata_bytes(self) -> bytes:
        """The serialised metadata (what signatures and databases store)."""
        return self.metadata.to_bytes()

    @property
    def report_payload(self) -> bytes:
        """The byte string covered by the attestation signature: ``A || L``."""
        return self.measurement + self.metadata.to_bytes()


@dataclass(frozen=True)
class SchemeCost:
    """Runtime cost of attesting one execution under a scheme."""

    scheme: str
    baseline_cycles: int
    attested_cycles: int
    control_flow_events: int = 0

    @property
    def overhead_cycles(self) -> int:
        return self.attested_cycles - self.baseline_cycles

    @property
    def overhead_ratio(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.baseline_cycles


class MeasurementSession(abc.ABC):
    """One attested execution in progress.

    A session is attached to the CPU as a retired-instruction monitor
    (``cpu.attach_monitor(session.observe)``), consumes the stream as it
    retires -- so memory stays flat regardless of execution length -- and is
    closed with :meth:`finalize`, which must be idempotent.

    Sessions may additionally implement ``observe_batch(records)``, which
    receives batches of *control-flow* records only (in retirement order).
    When every attached monitor provides it, the CPU uses its fused
    fast-path loop (:meth:`repro.cpu.core.Cpu.run_fast`) and never
    materializes records for straight-line instructions; a batch
    implementation must therefore produce the same measurement from the
    control-flow stream alone.  All three first-class schemes do.  Sessions
    without the hook keep the legacy per-record loop and continue to see
    every retired instruction.

    Concurrency contract: a session belongs to exactly one execution and
    one thread/task -- it is never shared or reused across executions
    (the attestation server's session pool bounds how many are *open*
    per scheme, it does not share them).  Scheme instances themselves are
    stateless and immutable by contract, and configuration objects are
    read-only once built, so resolving schemes and opening sessions from
    concurrent threads (the server's executor) is safe without locking.
    """

    @abc.abstractmethod
    def observe(self, record) -> None:
        """Observe one retired :class:`repro.cpu.trace.TraceRecord`."""

    @abc.abstractmethod
    def finalize(self) -> SchemeMeasurement:
        """Close the session and return the measurement (idempotent)."""

    def finish_run(self, instructions: int, cycle: int) -> None:
        """End-of-run sync from the CPU's fast path (optional override).

        Called once when a fast-path run ends, with the total retirement
        count and the final cycle -- information a batch implementation
        cannot recover from control-flow records alone.  The default does
        nothing; sessions tracking per-instruction counters override it.
        """

    def observe_block(self, records, chunk, pairs) -> None:
        """Per-block delivery from the compiled engine (optional override).

        ``records[:len(pairs)]`` are a compiled block's chain-internal
        forward jumps; ``chunk`` is their precomputed little-endian
        (Src, Dest) byte serialization and ``pairs`` the matching masked
        address pairs.  Any trailing records carry the block terminator.
        The default ignores the precomputed bytes and delegates to
        ``observe_batch`` (the measurement is defined over the records
        alone); sessions that hash the pair stream override this to absorb
        ``chunk`` in one update.
        """
        self.observe_batch(records)  # type: ignore[attr-defined]

    # Allow the session object itself to be used as the monitor callback.
    def __call__(self, record) -> None:
        self.observe(record)


class AttestationScheme(abc.ABC):
    """One pluggable attestation backend (LO-FAT, C-FLAT, static, ...)."""

    #: Registry name; carried in the ``scheme`` field of challenges/reports.
    name: ClassVar[str] = ""
    #: One-line description for ``repro schemes`` and the docs.
    description: ClassVar[str] = ""
    #: Length in bytes of the measurement this scheme produces.
    measurement_bytes: ClassVar[int] = 64
    #: Whether the scheme can observe run-time control-flow attacks.  Static
    #: attestation cannot ("run-time attacks do not modify the program
    #: binary", paper §2) -- the campaign service uses this to decide whether
    #: an attacked execution is *expected* to be rejected.
    detects_runtime_attacks: ClassVar[bool] = True
    #: Whether :meth:`reference_measurement` needs an execution of the
    #: program.  Static attestation only hashes the image, so the campaign
    #: service skips planning a benign capture for its references.
    reference_requires_execution: ClassVar[bool] = True

    # ------------------------------------------------------- configuration
    @abc.abstractmethod
    def configure(self, params: Optional[Mapping] = None):
        """Build the scheme's validated configuration from raw parameters.

        Raises :class:`SchemeConfigError` on unknown parameter names or
        invalid values, so campaign validation fails before any execution.
        """

    def default_config(self):
        """The scheme's default configuration (``configure({})``)."""
        return self.configure({})

    def config_digest(self, config=None) -> str:
        """Canonical SHA3-256 digest of a configuration (database keys).

        Two configurations with identical parameters hash identically
        regardless of how they were constructed.  Scheme separation comes
        from the database key's explicit scheme element, not from this
        digest -- which keeps the lofat digest identical to the pre-scheme
        releases, so persisted measurement databases keep hitting.
        """
        if config is None:
            config = self.default_config()
        if is_dataclass(config) and not isinstance(config, type):
            canonical = json.dumps(asdict(config), sort_keys=True)
        else:
            canonical = json.dumps(config, sort_keys=True, default=str)
        return hashlib.sha3_256(canonical.encode("utf-8")).hexdigest()

    # ----------------------------------------------------------- measuring
    @abc.abstractmethod
    def open_session(self, program, config=None) -> MeasurementSession:
        """Open a fresh measurement session for one execution of ``program``."""

    def measure_execution(
        self,
        program,
        inputs,
        config=None,
        cpu_config=None,
    ):
        """Run ``program`` with a fresh session attached.

        The one shared run-and-measure sequence (CLI, public API and the
        verifier's replay all funnel through it); returns
        ``(ExecutionResult, SchemeMeasurement)``.
        """
        from repro.cpu.core import Cpu

        cpu = Cpu(program, inputs=list(inputs), config=cpu_config)
        session = self.open_session(program, config)
        cpu.attach_monitor(session.observe)
        result = cpu.run()
        return result, session.finalize()

    def replay_measurement(
        self,
        program,
        trace,
        config=None,
        batch_size: int = 256,
    ) -> SchemeMeasurement:
        """Measure a stored trace through a fresh session -- no CPU in the loop.

        The verify-many half of the capture-once pipeline: ``trace`` is a
        :class:`repro.cpu.trace.ControlFlowTrace` (or a full
        :class:`~repro.cpu.trace.ExecutionTrace`, whose control-flow records
        are used) captured from one execution of ``program``; its records
        are streamed into the session's ``observe_batch`` hook in
        retirement order, followed by one ``finish_run`` carrying the stored
        instruction/cycle totals -- the same delivery the CPU's fast path
        performs live, so the measurement ``A``, the metadata ``L`` and the
        session statistics are byte-identical to live execution.

        Raises :class:`SchemeError` for a session without batched
        observation (per-record replay of a control-flow-only trace would
        miss the straight-line instructions its loop tracking needs) and for
        a capture marked non-replayable (a pre-instruction hook redirected
        control flow mid-run, breaking the straight-line continuity batched
        observation reconstructs).
        """
        session = self.open_session(program, config)
        observe_batch = getattr(session, "observe_batch", None)
        if observe_batch is None:
            raise SchemeError(
                "%s session does not support batched observation; a "
                "control-flow trace cannot be replayed through it" % self.name
            )
        if not getattr(trace, "replayable", True):
            raise SchemeError(
                "trace is not replayable (a pre-instruction hook redirected "
                "control flow during capture); re-attest live instead"
            )
        records = trace.control_flow_records
        step = max(1, batch_size)
        for start in range(0, len(records), step):
            observe_batch(records[start:start + step])
        session.finish_run(len(trace), trace.cycles)
        return session.finalize()

    def reference_measurement(
        self,
        program,
        inputs,
        config=None,
        cpu_config=None,
    ) -> SchemeMeasurement:
        """The verifier's trusted reference: replay ``program`` and measure.

        Streams records straight into a fresh session without accumulating a
        trace.  Schemes whose measurement does not depend on the execution
        (static attestation) override this to skip the replay entirely.
        """
        from repro.cpu.core import CpuConfig

        run_config = replace(cpu_config or CpuConfig(), collect_trace=False)
        _, measurement = self.measure_execution(
            program, inputs, config=config, cpu_config=run_config,
        )
        return measurement

    # ---------------------------------------------------------- verdict
    def verify(
        self, report, expected: Tuple[bytes, bytes]
    ) -> VerificationResult:
        """Judge ``report`` against the expected ``(A, serialized L)`` pair.

        The default comparison -- byte equality of measurement and metadata
        -- is what all three first-class schemes need; a backend with richer
        semantics (tolerance windows, partial paths) overrides this.
        """
        expected_measurement, expected_metadata = expected
        if expected_measurement != report.measurement:
            return VerificationResult(
                False, VerdictReason.MEASUREMENT_MISMATCH,
                "reported measurement does not match the %s reference"
                % self.name,
            )
        if expected_metadata != report.metadata.to_bytes():
            return VerificationResult(
                False, VerdictReason.METADATA_MISMATCH,
                "reported metadata does not match the %s reference" % self.name,
            )
        return VerificationResult(True, VerdictReason.ACCEPTED)

    # -------------------------------------------------------------- cost
    @abc.abstractmethod
    def cost_model(self, trace, config=None) -> SchemeCost:
        """The scheme's runtime cost for one execution.

        ``trace`` is an :class:`repro.cpu.trace.ExecutionTrace` or
        :class:`repro.cpu.trace.StreamingTrace` -- only the summary counters
        (``cycles``, ``control_flow_events``) are consulted, so streamed
        executions work too.
        """

    # ------------------------------------------------------------ reporting
    def describe(self) -> dict:
        """Dictionary view for ``repro schemes`` and campaign reports."""
        return {
            "name": self.name,
            "description": self.description,
            "measurement_bytes": self.measurement_bytes,
            "detects_runtime_attacks": self.detects_runtime_attacks,
        }
