"""Pluggable attestation schemes: one protocol for every backend.

This package defines the public contract every attestation backend speaks
(:class:`AttestationScheme`, :class:`MeasurementSession`) plus the registry
that resolves scheme names carried in challenges, reports, database keys and
campaign specs.  Three backends are first-class:

* ``lofat``  -- the paper's parallel hardware measurement
  (:mod:`repro.schemes.lofat`, wrapping :class:`repro.lofat.engine.LoFatEngine`).
* ``cflat``  -- C-FLAT software instrumentation promoted to a full measuring
  scheme (:mod:`repro.schemes.cflat`).
* ``static`` -- classic load-time binary attestation
  (:mod:`repro.schemes.static`).

Adding a backend is a self-registering subclass (see ``docs/SCHEMES.md``)::

    from repro.schemes import AttestationScheme, register_scheme

    @register_scheme
    class MyScheme(AttestationScheme):
        name = "mine"
        ...

Quickstart::

    from repro.schemes import get_scheme
    scheme = get_scheme("cflat")
    measurement = scheme.reference_measurement(program, inputs=[5])
"""

from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeError,
    SchemeMeasurement,
    VerdictReason,
    VerificationResult,
)
from repro.schemes.registry import (
    SCHEME_REGISTRY,
    DuplicateSchemeError,
    SchemeNotFoundError,
    SchemeRegistry,
    all_schemes,
    get_scheme,
    register_scheme,
    scheme_names,
)

# Importing the modules populates the registry.
from repro.schemes import cflat, lofat, static  # noqa: F401  (registration)
from repro.schemes.cflat import (
    CFlatAttestation,
    CFlatCostModel,
    CFlatResult,
    CFlatScheme,
    CFlatSession,
)
from repro.schemes.lofat import LoFatScheme, LoFatSession
from repro.schemes.static import (
    StaticAttestation,
    StaticConfig,
    StaticMeasurement,
    StaticScheme,
    StaticSession,
)

__all__ = [
    "AttestationScheme",
    "MeasurementSession",
    "SchemeConfigError",
    "SchemeCost",
    "SchemeError",
    "SchemeMeasurement",
    "VerdictReason",
    "VerificationResult",
    "SCHEME_REGISTRY",
    "SchemeRegistry",
    "SchemeNotFoundError",
    "DuplicateSchemeError",
    "all_schemes",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "LoFatScheme",
    "LoFatSession",
    "CFlatScheme",
    "CFlatSession",
    "CFlatCostModel",
    "CFlatResult",
    "CFlatAttestation",
    "StaticScheme",
    "StaticSession",
    "StaticConfig",
    "StaticAttestation",
    "StaticMeasurement",
]
