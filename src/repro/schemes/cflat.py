"""C-FLAT as a full measuring :class:`AttestationScheme` backend.

C-FLAT (Abera et al., CCS 2016) instruments every control-flow instruction of
the target program so that it traps into an attestation runtime inside a TEE
(TrustZone secure world), which updates a running hash with the (source,
destination) pair before resuming the program.  Its performance cost is
therefore *linear in the number of executed control-flow events*: each event
replaces a single branch with a trampoline, a world switch and a software
hash update.  LO-FAT's claim (paper §6.1) is that it provides the same
measurement without any of that cost because the recording happens in
parallel hardware.

This module carries both halves of the reproduction's C-FLAT model:

* the cost model (:class:`CFlatCostModel`, :class:`CFlatResult`,
  :class:`CFlatAttestation`) applied to an uninstrumented execution --
  ``attested_cycles = baseline_cycles + events * per_event_cycles``;
* the first-class measuring scheme (:class:`CFlatSession`,
  :class:`CFlatScheme`) that can be driven by a challenge, verified against
  the measurement database and swept in a campaign.  The session computes,
  while streaming, exactly the measurement
  :meth:`CFlatAttestation.measure_trace` computes from a recorded trace --
  the cumulative SHA3-512 hash over every (Src, Dest) pair of every
  control-flow event -- so the two stay interchangeable and the equivalence
  is pinned by ``tests/test_schemes.py``.

The default cost constants are deliberately conservative (favourable to
C-FLAT); the experiments sweep them to show the conclusion is insensitive to
the exact values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.cpu.core import Cpu, CpuConfig, ExecutionResult
from repro.cpu.trace import ExecutionTrace, TraceNotRecordedError
from repro.isa.assembler import Program
from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeMeasurement,
)
from repro.schemes.registry import register_scheme


@dataclass
class CFlatCostModel:
    """Per-event cycle costs of the software attestation runtime.

    Attributes:
        trampoline_cycles: executing the rewritten branch stub (register
            spills, computing the original target).
        world_switch_cycles: entering and leaving the TEE (SMC/secure monitor
            round trip); set to 0 to model a same-world software monitor.
        hash_update_cycles: software hash absorb of one 64-bit (Src, Dest)
            pair (BLAKE2s-style software hashing on a small in-order core).
        loop_event_discount: fraction of loop-internal events whose hash
            update is skipped thanks to C-FLAT's own loop handling (the
            trampoline still executes); 0.0 means every event is hashed.
    """

    trampoline_cycles: int = 20
    world_switch_cycles: int = 50
    hash_update_cycles: int = 80
    loop_event_discount: float = 0.0

    @property
    def per_event_cycles(self) -> int:
        """Total extra cycles charged per control-flow event."""
        return self.trampoline_cycles + self.world_switch_cycles + self.hash_update_cycles

    def overhead_cycles(self, events: int, loop_events: int = 0) -> int:
        """Extra cycles for a run with ``events`` control-flow events."""
        full = self.trampoline_cycles + self.world_switch_cycles + self.hash_update_cycles
        discounted = self.trampoline_cycles + self.world_switch_cycles
        loop_events = min(loop_events, events)
        if self.loop_event_discount <= 0.0:
            return events * full
        skipped = int(loop_events * self.loop_event_discount)
        return (events - skipped) * full + skipped * discounted


@dataclass
class CFlatResult:
    """Outcome of attesting one execution with the C-FLAT cost model."""

    baseline_cycles: int
    attested_cycles: int
    control_flow_events: int
    measurement: bytes
    instrumented_instructions: int

    @property
    def overhead_cycles(self) -> int:
        """Extra cycles caused by the software attestation."""
        return self.attested_cycles - self.baseline_cycles

    @property
    def overhead_ratio(self) -> float:
        """Relative slowdown (0.0 = no overhead)."""
        if self.baseline_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.baseline_cycles


class CFlatAttestation:
    """Software control-flow attestation applied to a program execution."""

    def __init__(self, cost_model: Optional[CFlatCostModel] = None) -> None:
        self.cost_model = cost_model or CFlatCostModel()

    def instrumented_instruction_count(self, program: Program) -> int:
        """Number of control-flow instructions that would be rewritten."""
        return sum(1 for instr in program.instructions if instr.is_control_flow)

    def measure_trace(self, trace: ExecutionTrace) -> bytes:
        """The cumulative measurement C-FLAT would compute for ``trace``."""
        hasher = hashlib.sha3_512()
        for record in trace.control_flow_records:
            src, dest = record.src_dest
            hasher.update(src.to_bytes(4, "little") + dest.to_bytes(4, "little"))
        return hasher.digest()

    def attest(self, program: Program, result: ExecutionResult) -> CFlatResult:
        """Apply the cost model to an existing (uninstrumented) execution."""
        events = result.trace.control_flow_events
        overhead = self.cost_model.overhead_cycles(events)
        return CFlatResult(
            baseline_cycles=result.cycles,
            attested_cycles=result.cycles + overhead,
            control_flow_events=events,
            measurement=self.measure_trace(result.trace),
            instrumented_instructions=self.instrumented_instruction_count(program),
        )

    def attest_program(
        self,
        program: Program,
        inputs: Optional[List[int]] = None,
        cpu_config: Optional[CpuConfig] = None,
    ) -> Tuple[ExecutionResult, CFlatResult]:
        """Run ``program`` and attest it with the C-FLAT cost model."""
        cpu = Cpu(program, inputs=inputs, config=cpu_config)
        result = cpu.run()
        return result, self.attest(program, result)


class CFlatSession(MeasurementSession):
    """Streaming C-FLAT measurement of one execution.

    Hashes each control-flow (Src, Dest) pair as the instruction retires;
    nothing is accumulated, so memory stays flat on arbitrarily long runs.
    Backward taken transfers are counted as loop events, which is what the
    cost model's ``loop_event_discount`` (C-FLAT's own loop handling)
    applies to.
    """

    def __init__(self, cost_model: Optional[CFlatCostModel] = None) -> None:
        self.cost_model = cost_model or CFlatCostModel()
        self._hasher = hashlib.sha3_512()
        self._events = 0
        self._loop_events = 0
        self._last_cycle = 0
        self._finalized: Optional[SchemeMeasurement] = None

    def observe(self, record) -> None:
        if self._finalized is not None:
            raise RuntimeError("C-FLAT session already finalized")
        self._last_cycle = record.cycle
        if record.is_control_flow:
            src, dest = record.src_dest
            self._hasher.update(
                src.to_bytes(4, "little") + dest.to_bytes(4, "little")
            )
            self._events += 1
            if record.is_backward:
                self._loop_events += 1

    def observe_batch(self, records) -> None:
        """Fold a batch of control-flow records in with one hash update.

        Byte-identical to per-record observation: the digest covers the same
        (Src, Dest) sequence, concatenated into a single sponge update.
        Both the CPU's live fast path and stored-trace replay
        (:meth:`repro.schemes.base.AttestationScheme.replay_measurement`)
        deliver through this hook.
        """
        if self._finalized is not None:
            raise RuntimeError("C-FLAT session already finalized")
        if not records:
            return
        self._last_cycle = records[-1].cycle
        chunk = bytearray()
        events = 0
        loop_events = 0
        for record in records:
            pc = record.pc
            next_pc = record.next_pc
            chunk += pc.to_bytes(4, "little") + next_pc.to_bytes(4, "little")
            events += 1
            if record.taken and next_pc <= pc:
                loop_events += 1
        self._hasher.update(bytes(chunk))
        self._events += events
        self._loop_events += loop_events

    def observe_block(self, records, chunk, pairs) -> None:
        """Per-block delivery from the compiled engine.

        The chain-internal jumps arrive with their pair bytes already
        serialized (and masked) at block-compile time: absorb the chunk
        directly.  Internal jumps are forward by construction, so none is a
        loop event; the terminator record(s) go through the batched path.
        """
        if self._finalized is not None:
            raise RuntimeError("C-FLAT session already finalized")
        n = len(pairs)
        if n and len(records) >= n:
            self._last_cycle = records[n - 1].cycle
            self._hasher.update(chunk)
            self._events += n
            self.observe_batch(records[n:])
        else:
            self.observe_batch(records)

    def finish_run(self, instructions, cycle) -> None:
        # Keeps the reported ``attested_cycles`` exact on the fast path: the
        # last *instruction* cycle, not the last control-flow cycle.
        if self._finalized is None and cycle > self._last_cycle:
            self._last_cycle = cycle

    def finalize(self) -> SchemeMeasurement:
        if self._finalized is not None:
            return self._finalized
        overhead = self.cost_model.overhead_cycles(
            self._events, loop_events=self._loop_events
        )
        self._finalized = SchemeMeasurement(
            scheme=CFlatScheme.name,
            measurement=self._hasher.digest(),
            stats={
                "control_flow_events": self._events,
                "loop_events": self._loop_events,
                "pairs_hashed": self._events,
                "compression_ratio": 1.0,
                "per_event_cycles": self.cost_model.per_event_cycles,
                "overhead_cycles": overhead,
                "attested_cycles": self._last_cycle + overhead,
                "processor_stall_cycles": overhead,
            },
        )
        return self._finalized


@register_scheme
class CFlatScheme(AttestationScheme):
    """Software control-flow attestation (Abera et al., CCS 2016)."""

    name = "cflat"
    description = ("software instrumentation: every control-flow event traps "
                   "into the TEE for a hash update, overhead linear in events")
    measurement_bytes = 64
    detects_runtime_attacks = True

    def configure(self, params: Optional[Mapping] = None) -> CFlatCostModel:
        if isinstance(params, CFlatCostModel):
            return params
        try:
            model = CFlatCostModel(**dict(params or {}))
        except TypeError as error:
            raise SchemeConfigError(
                "invalid cflat parameters: %s" % error
            ) from None
        if (model.trampoline_cycles < 0 or model.world_switch_cycles < 0
                or model.hash_update_cycles < 0):
            raise SchemeConfigError("cflat cycle costs must be >= 0")
        if not 0.0 <= model.loop_event_discount <= 1.0:
            raise SchemeConfigError("loop_event_discount must be in [0, 1]")
        return model

    def open_session(self, program, config=None) -> CFlatSession:
        return CFlatSession(config)

    def cost_model(self, trace, config=None) -> SchemeCost:
        model = config if isinstance(config, CFlatCostModel) else self.configure(config)
        events = trace.control_flow_events
        # The loop-event discount needs per-record data; on a streaming
        # trace (records dropped) fall back to the conservative zero, which
        # charges every event in full.
        try:
            loop_events = sum(
                1 for record in trace.control_flow_records if record.is_backward
            )
        except TraceNotRecordedError:
            loop_events = 0
        overhead = model.overhead_cycles(events, loop_events=loop_events)
        return SchemeCost(
            scheme=self.name,
            baseline_cycles=trace.cycles,
            attested_cycles=trace.cycles + overhead,
            control_flow_events=events,
        )
