"""C-FLAT as a full measuring :class:`AttestationScheme` backend.

This promotes :mod:`repro.baselines.cflat` from a trace-level cost table to a
first-class scheme that can be driven by a challenge, verified against the
measurement database and swept in a campaign.  The session computes, while
streaming, exactly the measurement :meth:`CFlatAttestation.measure_trace`
computes from a recorded trace -- the cumulative SHA3-512 hash over every
(Src, Dest) pair of every control-flow event -- so the two stay
interchangeable and the equivalence is pinned by ``tests/test_schemes.py``.

The *cost* of producing that measurement is what separates C-FLAT from
LO-FAT: every control-flow instruction is rewritten into a trampoline that
traps into the TEE for a software hash update, so the overhead is linear in
the number of executed control-flow events (:class:`CFlatCostModel`).
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional

from repro.baselines.cflat import CFlatCostModel
from repro.cpu.trace import TraceNotRecordedError
from repro.schemes.base import (
    AttestationScheme,
    MeasurementSession,
    SchemeConfigError,
    SchemeCost,
    SchemeMeasurement,
)
from repro.schemes.registry import register_scheme


class CFlatSession(MeasurementSession):
    """Streaming C-FLAT measurement of one execution.

    Hashes each control-flow (Src, Dest) pair as the instruction retires;
    nothing is accumulated, so memory stays flat on arbitrarily long runs.
    Backward taken transfers are counted as loop events, which is what the
    cost model's ``loop_event_discount`` (C-FLAT's own loop handling)
    applies to.
    """

    def __init__(self, cost_model: Optional[CFlatCostModel] = None) -> None:
        self.cost_model = cost_model or CFlatCostModel()
        self._hasher = hashlib.sha3_512()
        self._events = 0
        self._loop_events = 0
        self._last_cycle = 0
        self._finalized: Optional[SchemeMeasurement] = None

    def observe(self, record) -> None:
        if self._finalized is not None:
            raise RuntimeError("C-FLAT session already finalized")
        self._last_cycle = record.cycle
        if record.is_control_flow:
            src, dest = record.src_dest
            self._hasher.update(
                src.to_bytes(4, "little") + dest.to_bytes(4, "little")
            )
            self._events += 1
            if record.is_backward:
                self._loop_events += 1

    def observe_batch(self, records) -> None:
        """Fold a batch of control-flow records in with one hash update.

        Byte-identical to per-record observation: the digest covers the same
        (Src, Dest) sequence, concatenated into a single sponge update.
        """
        if self._finalized is not None:
            raise RuntimeError("C-FLAT session already finalized")
        if not records:
            return
        self._last_cycle = records[-1].cycle
        chunk = bytearray()
        events = 0
        loop_events = 0
        for record in records:
            pc = record.pc
            next_pc = record.next_pc
            chunk += pc.to_bytes(4, "little") + next_pc.to_bytes(4, "little")
            events += 1
            if record.taken and next_pc <= pc:
                loop_events += 1
        self._hasher.update(bytes(chunk))
        self._events += events
        self._loop_events += loop_events

    def finish_run(self, instructions, cycle) -> None:
        # Keeps the reported ``attested_cycles`` exact on the fast path: the
        # last *instruction* cycle, not the last control-flow cycle.
        if self._finalized is None and cycle > self._last_cycle:
            self._last_cycle = cycle

    def finalize(self) -> SchemeMeasurement:
        if self._finalized is not None:
            return self._finalized
        overhead = self.cost_model.overhead_cycles(
            self._events, loop_events=self._loop_events
        )
        self._finalized = SchemeMeasurement(
            scheme=CFlatScheme.name,
            measurement=self._hasher.digest(),
            stats={
                "control_flow_events": self._events,
                "loop_events": self._loop_events,
                "pairs_hashed": self._events,
                "compression_ratio": 1.0,
                "per_event_cycles": self.cost_model.per_event_cycles,
                "overhead_cycles": overhead,
                "attested_cycles": self._last_cycle + overhead,
                "processor_stall_cycles": overhead,
            },
        )
        return self._finalized


@register_scheme
class CFlatScheme(AttestationScheme):
    """Software control-flow attestation (Abera et al., CCS 2016)."""

    name = "cflat"
    description = ("software instrumentation: every control-flow event traps "
                   "into the TEE for a hash update, overhead linear in events")
    measurement_bytes = 64
    detects_runtime_attacks = True

    def configure(self, params: Optional[Mapping] = None) -> CFlatCostModel:
        if isinstance(params, CFlatCostModel):
            return params
        try:
            model = CFlatCostModel(**dict(params or {}))
        except TypeError as error:
            raise SchemeConfigError(
                "invalid cflat parameters: %s" % error
            ) from None
        if (model.trampoline_cycles < 0 or model.world_switch_cycles < 0
                or model.hash_update_cycles < 0):
            raise SchemeConfigError("cflat cycle costs must be >= 0")
        if not 0.0 <= model.loop_event_discount <= 1.0:
            raise SchemeConfigError("loop_event_discount must be in [0, 1]")
        return model

    def open_session(self, program, config=None) -> CFlatSession:
        return CFlatSession(config)

    def cost_model(self, trace, config=None) -> SchemeCost:
        model = config if isinstance(config, CFlatCostModel) else self.configure(config)
        events = trace.control_flow_events
        # The loop-event discount needs per-record data; on a streaming
        # trace (records dropped) fall back to the conservative zero, which
        # charges every event in full.
        try:
            loop_events = sum(
                1 for record in trace.control_flow_records if record.is_backward
            )
        except TraceNotRecordedError:
            loop_events = 0
        overhead = model.overhead_cycles(events, loop_events=loop_events)
        return SchemeCost(
            scheme=self.name,
            baseline_cycles=trace.cycles,
            attested_cycles=trace.cycles + overhead,
            control_flow_events=events,
        )
