"""Protocol-parser finite state machine driven through a jump table.

Firmware protocol parsers are commonly compiled into a jump table indexed by
the current state: an *indirect jump* (not a call) inside the parsing loop.
This is the other flavour of indirect control flow LO-FAT must re-encode
through the per-loop target CAM, complementing the indirect *calls* of the
dispatcher workload.

States: 0 = IDLE, 1 = RECEIVING, 2 = CLOSED, 3 = ERROR.
Tokens: 1 = START, 2 = DATA, 3 = END, anything else = garbage; 0 stops the
parser.  The program prints the number of accepted DATA tokens followed by
the final state.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    li   s0, 0              # state = IDLE
    li   s2, 0              # accepted DATA tokens
fsm_loop:
    li   a7, 5
    ecall                   # next token (0 terminates)
    beqz a0, fsm_done
    mv   s1, a0
    la   t0, state_table
    slli t1, s0, 2
    add  t0, t0, t1
    lw   t2, 0(t0)
    jr   t2                 # indirect jump to the current state's handler

state_idle:
    li   t3, 1
    bne  s1, t3, idle_stay
    li   s0, 1              # START -> RECEIVING
idle_stay:
    j    fsm_loop

state_receiving:
    li   t3, 2
    beq  s1, t3, recv_data
    li   t3, 3
    beq  s1, t3, recv_end
    li   s0, 3              # anything else -> ERROR
    j    fsm_loop
recv_data:
    addi s2, s2, 1
    j    fsm_loop
recv_end:
    li   s0, 2              # END -> CLOSED
    j    fsm_loop

state_closed:
    li   t3, 1
    bne  s1, t3, closed_stay
    li   s0, 1              # START reopens the stream
closed_stay:
    j    fsm_loop

state_error:
    li   s0, 0              # any token resets to IDLE
    j    fsm_loop

fsm_done:
    mv   a0, s2
    li   a7, 1
    ecall
    li   a0, 32
    li   a7, 11
    ecall
    mv   a0, s0
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall

    .data
state_table:
    .word state_idle
    .word state_receiving
    .word state_closed
    .word state_error
"""

IDLE, RECEIVING, CLOSED, ERROR = range(4)


def reference_output(inputs: List[int]) -> str:
    """Reference model of the protocol parser."""
    state = IDLE
    accepted = 0
    for token in inputs:
        if token == 0:
            break
        if state == IDLE:
            if token == 1:
                state = RECEIVING
        elif state == RECEIVING:
            if token == 2:
                accepted += 1
            elif token == 3:
                state = CLOSED
            else:
                state = ERROR
        elif state == CLOSED:
            if token == 1:
                state = RECEIVING
        else:  # ERROR
            state = IDLE
    return "%d %d" % (accepted, state)


DEFAULT_INPUTS = [1, 2, 2, 3, 1, 2, 9, 4, 1, 2, 3, 0]


@register_workload
def state_machine() -> Workload:
    """Jump-table protocol parser FSM."""
    return Workload(
        name="state_machine",
        description="Protocol parser FSM via jump table (indirect jumps in a loop)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "indirect", "data-dependent"],
    )
