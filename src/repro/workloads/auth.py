"""Authentication check: the class-1 (non-control-data) attack target.

The firmware reads a password attempt, stores the resulting authorisation
flag in data memory, and then branches on that flag to either the privileged
or the unprivileged action (both are *legitimate* CFG paths).  Corrupting the
flag between the store and the load is the paper's attack class 1: it never
violates control-flow integrity, yet it changes which legal path executes --
which is exactly what control-flow attestation (but not CFI, and not static
attestation) can reveal to the verifier.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: The password accepted by the firmware.
CORRECT_PASSWORD = 4242
#: Markers printed by the privileged / unprivileged actions.
PRIVILEGED_MARKER = 777
UNPRIVILEGED_MARKER = 111

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # read password attempt
    li   t0, %(password)d
    la   t1, auth_flag
    li   t2, 0
    sw   t2, 0(t1)          # auth_flag = 0
    bne  a0, t0, check_done
    li   t2, 1
    sw   t2, 0(t1)          # auth_flag = 1
check_done:
    la   t1, auth_flag
    lw   t2, 0(t1)          # the security decision (attack target)
    beqz t2, unprivileged
privileged:
    li   a0, %(priv)d
    li   a7, 1
    ecall
    j    finish
unprivileged:
    li   a0, %(unpriv)d
    li   a7, 1
    ecall
finish:
    li   a0, 0
    li   a7, 93
    ecall

    .data
auth_flag:
    .word 0
""" % {
    "password": CORRECT_PASSWORD,
    "priv": PRIVILEGED_MARKER,
    "unpriv": UNPRIVILEGED_MARKER,
}


def reference_output(inputs: List[int]) -> str:
    """Reference model: which marker is printed for the given attempt."""
    attempt = inputs[0] if inputs else 0
    marker = PRIVILEGED_MARKER if attempt == CORRECT_PASSWORD else UNPRIVILEGED_MARKER
    return str(marker)


DEFAULT_INPUTS = [1000]  # wrong password: the unprivileged path is expected


@register_workload
def auth_check() -> Workload:
    """Password check guarding a privileged action."""
    return Workload(
        name="auth_check",
        description="Authentication flag check (non-control-data attack target)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["attack-target", "data-dependent"],
    )
