"""Integer matrix multiplication: triply nested loops.

Exercises LO-FAT's maximum supported nesting depth (three simultaneously
active loops in the default configuration) plus the M-extension multiplier.
"""

from __future__ import annotations

from repro.workloads.common import Workload, register_workload

#: Matrix dimension (N x N).
DIMENSION = 4

SOURCE = """
    .text
_start:
    li   s0, %(n)d          # N
    la   s1, mat_a
    la   s2, mat_b
    la   s3, mat_c

    li   t0, 0              # initialise A[i][j] = i + j, B[i][j] = i*j + 1
init_i:
    bge  t0, s0, init_done
    li   t1, 0
init_j:
    bge  t1, s0, init_i_next
    mul  t2, t0, s0
    add  t2, t2, t1
    slli t2, t2, 2
    add  t3, t0, t1
    add  t4, s1, t2
    sw   t3, 0(t4)
    mul  t3, t0, t1
    addi t3, t3, 1
    add  t4, s2, t2
    sw   t3, 0(t4)
    addi t1, t1, 1
    j    init_j
init_i_next:
    addi t0, t0, 1
    j    init_i
init_done:

    li   t0, 0              # C = A * B
mm_i:
    bge  t0, s0, mm_done
    li   t1, 0
mm_j:
    bge  t1, s0, mm_i_next
    li   t5, 0
    li   t2, 0
mm_k:
    bge  t2, s0, mm_k_done
    mul  t3, t0, s0
    add  t3, t3, t2
    slli t3, t3, 2
    add  t3, t3, s1
    lw   t3, 0(t3)
    mul  t4, t2, s0
    add  t4, t4, t1
    slli t4, t4, 2
    add  t4, t4, s2
    lw   t4, 0(t4)
    mul  t3, t3, t4
    add  t5, t5, t3
    addi t2, t2, 1
    j    mm_k
mm_k_done:
    mul  t3, t0, s0
    add  t3, t3, t1
    slli t3, t3, 2
    add  t3, t3, s3
    sw   t5, 0(t3)
    addi t1, t1, 1
    j    mm_j
mm_i_next:
    addi t0, t0, 1
    j    mm_i
mm_done:

    li   t0, 0              # print the sum of all elements of C
    li   s4, 0
    mul  t6, s0, s0
sum_loop:
    bge  t0, t6, sum_done
    slli t1, t0, 2
    add  t1, t1, s3
    lw   t1, 0(t1)
    add  s4, s4, t1
    addi t0, t0, 1
    j    sum_loop
sum_done:
    mv   a0, s4
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall

    .data
mat_a: .space %(bytes)d
mat_b: .space %(bytes)d
mat_c: .space %(bytes)d
""" % {"n": DIMENSION, "bytes": DIMENSION * DIMENSION * 4}


def reference_output(dimension: int = DIMENSION) -> str:
    """Reference model: sum of all elements of C = A * B."""
    a = [[i + j for j in range(dimension)] for i in range(dimension)]
    b = [[i * j + 1 for j in range(dimension)] for i in range(dimension)]
    total = 0
    for i in range(dimension):
        for j in range(dimension):
            total += sum(a[i][k] * b[k][j] for k in range(dimension))
    return str(total)


@register_workload
def matmul() -> Workload:
    """Dense integer matrix multiply (N=4)."""
    return Workload(
        name="matmul",
        description="4x4 integer matrix multiplication (triple loop nest)",
        source=SOURCE,
        inputs=[],
        expected_output=reference_output(),
        tags=["loops", "nested", "deep-nesting", "paper-workload"],
    )
