"""Workload description and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.isa.assembler import Program, assemble


@dataclass
class Workload:
    """A runnable evaluation workload.

    Attributes:
        name: unique identifier (also used as the attested program id).
        description: one-line description of what the program does.
        source: RV32 assembly source text.
        inputs: default input values consumed via the ``read_int`` syscall
            (the verifier-chosen input ``i`` in the protocol).
        expected_output: expected program output for the default inputs, when
            it is known statically (None if it is computed by a reference
            model in the tests).
        tags: free-form labels ("loops", "nested", "indirect", "recursion",
            "attack-target", ...) used by experiments to select workloads.
    """

    name: str
    description: str
    source: str
    inputs: List[int] = field(default_factory=list)
    expected_output: Optional[str] = None
    tags: List[str] = field(default_factory=list)

    def build(self) -> Program:
        """Assemble the workload into a program image."""
        return assemble(self.source)

    def with_inputs(self, inputs: List[int]) -> "Workload":
        """A copy of the workload with different input values."""
        return Workload(
            name=self.name,
            description=self.description,
            source=self.source,
            inputs=list(inputs),
            expected_output=None,
            tags=list(self.tags),
        )


#: All registered workload factories, keyed by name.
WORKLOAD_REGISTRY: Dict[str, Callable[[], Workload]] = {}


def register_workload(factory: Callable[[], Workload]) -> Callable[[], Workload]:
    """Register a workload factory (usable as a decorator)."""
    workload = factory()
    WORKLOAD_REGISTRY[workload.name] = factory
    return factory


def get_workload(name: str) -> Workload:
    """Instantiate the workload registered under ``name``."""
    try:
        factory = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r (known: %s)" % (name, ", ".join(sorted(WORKLOAD_REGISTRY)))
        ) from None
    return factory()


def all_workloads(include_generated: bool = False) -> List[Workload]:
    """Instantiate every registered workload (sorted by name).

    Generated populations (the parameterized families, tagged
    ``family``) register on demand, so which members exist depends on
    what ran earlier in the process.  The default sweep excludes them:
    benchmarks and tests iterating "every workload" stay deterministic,
    and the curated evaluation suite keeps its sizing assumptions (the
    families deliberately exceed e.g. default hash-buffer depths).
    Campaigns resolve family members explicitly by name instead.
    """
    workloads = [WORKLOAD_REGISTRY[name]() for name in sorted(WORKLOAD_REGISTRY)]
    if not include_generated:
        workloads = [w for w in workloads if "family" not in w.tags]
    return workloads
