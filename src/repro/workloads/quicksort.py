"""Recursive quicksort: recursion and data-dependent loops combined.

Quicksort mixes the two control-flow structures LO-FAT handles differently:
the partition loop is compressed through path encodings and iteration
counters, while the recursive calls and returns are linking transfers that are
hashed directly.  The recursion depth also exercises the verifier's
return-edge validation on a non-trivial call tree.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # N
    mv   s0, a0
    la   s1, array

    li   t0, 0              # read N values
qs_read:
    bge  t0, s0, qs_read_done
    li   a7, 5
    ecall
    slli t1, t0, 2
    add  t1, t1, s1
    sw   a0, 0(t1)
    addi t0, t0, 1
    j    qs_read
qs_read_done:

    li   a0, 0              # quicksort(0, N-1)
    addi a1, s0, -1
    call quicksort

    li   t0, 0              # print sorted values
qs_print:
    bge  t0, s0, qs_exit
    slli t1, t0, 2
    add  t1, t1, s1
    lw   a0, 0(t1)
    li   a7, 1
    ecall
    li   a0, 32
    li   a7, 11
    ecall
    addi t0, t0, 1
    j    qs_print
qs_exit:
    li   a0, 0
    li   a7, 93
    ecall

quicksort:
    # a0 = lo, a1 = hi; array base in s1 (global)
    addi sp, sp, -16
    sw   ra, 12(sp)
    sw   s2, 8(sp)
    sw   s3, 4(sp)
    sw   s4, 0(sp)
    mv   s2, a0             # lo
    mv   s3, a1             # hi
    bge  s2, s3, qs_done

    slli t0, s3, 2          # pivot = array[hi]
    add  t0, t0, s1
    lw   t3, 0(t0)
    addi s4, s2, -1         # i = lo - 1
    mv   t4, s2             # j = lo
part_loop:
    bge  t4, s3, part_done
    slli t1, t4, 2
    add  t1, t1, s1
    lw   t2, 0(t1)          # array[j]
    bgt  t2, t3, part_next
    addi s4, s4, 1          # i++
    slli t5, s4, 2          # swap array[i], array[j]
    add  t5, t5, s1
    lw   t6, 0(t5)
    sw   t2, 0(t5)
    sw   t6, 0(t1)
part_next:
    addi t4, t4, 1
    j    part_loop
part_done:
    addi s4, s4, 1          # pivot slot = i + 1
    slli t5, s4, 2          # swap array[pivot slot], array[hi]
    add  t5, t5, s1
    lw   t6, 0(t5)
    slli t1, s3, 2
    add  t1, t1, s1
    lw   t2, 0(t1)
    sw   t2, 0(t5)
    sw   t6, 0(t1)

    mv   a0, s2             # quicksort(lo, pivot - 1)
    addi a1, s4, -1
    call quicksort
    addi a0, s4, 1          # quicksort(pivot + 1, hi)
    mv   a1, s3
    call quicksort
qs_done:
    lw   ra, 12(sp)
    lw   s2, 8(sp)
    lw   s3, 4(sp)
    lw   s4, 0(sp)
    addi sp, sp, 16
    ret

    .data
array:
    .space 256
"""


def reference_output(inputs: List[int]) -> str:
    """Reference model: sorted values rendered space separated."""
    count = inputs[0]
    values = sorted(inputs[1:1 + count])
    return "".join("%d " % value for value in values)


DEFAULT_INPUTS = [10, 33, 7, 91, 2, 54, 7, 18, 76, 41, 12]


@register_workload
def quicksort() -> Workload:
    """Recursive quicksort over an input array."""
    return Workload(
        name="quicksort",
        description="Recursive quicksort (recursion + data-dependent partition loops)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["recursion", "loops", "calls", "data-dependent"],
    )
