"""The exact loop structure of Figure 4 in the paper.

The figure shows a ``while (cond1) { if (cond2) bb_4 else bb_5; bb_6 }`` loop
and derives the two valid path encodings: the path through the else branch
(``N2 -> N3 -> N5 -> N6 -> N2``) encodes as ``011`` and the path through the
then branch (``N2 -> N3 -> N4 -> N6 -> N2``) as ``0011``.  This workload lays
the blocks out in the same order so experiment E4 can reproduce the encodings
literally.

``cond1`` iterates a fixed number of times (supplied as input) and ``cond2``
alternates with the loop index parity so both paths occur.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    # bb_1: setup
    li   a7, 5
    ecall                   # number of iterations of the while loop
    mv   s0, a0
    li   s1, 0              # i
    li   s2, 0              # accumulator

loop_entry:
    # N2: while (i < n)  -- conditional branch, not taken while looping
    bge  s1, s0, loop_exit
    # N3: if (i & 1)     -- conditional branch
    andi t0, s1, 1
    bnez t0, else_block
then_block:
    # N4: taken when i is even
    addi s2, s2, 5
    j    join_block
else_block:
    # N5: taken when i is odd
    addi s2, s2, 9
join_block:
    # N6: loop latch
    addi s1, s1, 1
    j    loop_entry

loop_exit:
    # N7
    mv   a0, s2
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall
"""


def reference_output(inputs: List[int]) -> str:
    """Reference model of the Figure 4 loop."""
    iterations = inputs[0]
    total = 0
    for i in range(iterations):
        total += 9 if (i & 1) else 5
    return str(total)


DEFAULT_INPUTS = [6]


@register_workload
def figure4_loop() -> Workload:
    """The while/if-else loop of Figure 4."""
    return Workload(
        name="figure4_loop",
        description="Figure 4 while/if-else loop (reference path encodings 011 / 0011)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "paper-figure", "data-dependent"],
    )
