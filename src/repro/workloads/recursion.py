"""Recursive Fibonacci: call/return heavy control flow.

The paper notes that loop metadata also covers recursive functions; in our
model recursion is dominated by linking calls and returns, which the branch
filter classifies as calls (not loop back edges) and which are hashed
directly.  The workload exercises deep call chains, the return-address stack
discipline and the return-edge validation in the verifier's path checker.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # n
    call fib
    li   a7, 1
    ecall                   # print fib(n)
    li   a0, 0
    li   a7, 93
    ecall

fib:
    addi sp, sp, -12
    sw   ra, 8(sp)
    sw   s0, 4(sp)
    sw   s1, 0(sp)
    li   t0, 2
    blt  a0, t0, fib_done   # fib(0) = 0, fib(1) = 1
    mv   s0, a0
    addi a0, s0, -1
    call fib
    mv   s1, a0
    addi a0, s0, -2
    call fib
    add  a0, a0, s1
fib_done:
    lw   ra, 8(sp)
    lw   s0, 4(sp)
    lw   s1, 0(sp)
    addi sp, sp, 12
    ret
"""


def reference_fib(n: int) -> int:
    """Reference Fibonacci (fib(0)=0, fib(1)=1)."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def reference_output(inputs: List[int]) -> str:
    return str(reference_fib(inputs[0]))


DEFAULT_INPUTS = [10]


@register_workload
def fibonacci() -> Workload:
    """Naive recursive Fibonacci."""
    return Workload(
        name="fibonacci",
        description="Recursive Fibonacci (call/return dominated control flow)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["recursion", "calls"],
    )
