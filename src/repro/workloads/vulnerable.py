"""Stack-smashing victim: the class-3 (code-pointer overwrite) attack target.

``process`` spills its return address to the stack next to a caller-supplied
"buffer" slot -- the classic layout a buffer overflow exploits.  The attack
injector overwrites the saved return address with the address of
``secret_gadget`` (functionality that is never reached on any benign path),
modelling a minimal ROP-style code-reuse attack.  LO-FAT records the resulting
return edge, which is not a legal edge of the CFG, so the verifier rejects the
report; static attestation sees nothing because the code is unmodified.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: Value printed by the benign path: the doubled input.
def reference_output(inputs: List[int]) -> str:
    return str(inputs[0] * 2)


#: Value printed by the attacker's gadget when the exploit succeeds.
GADGET_MARKER = 31337

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # read input value
    call process
    li   a7, 1
    ecall                   # print the result
    li   a0, 0
    li   a7, 93
    ecall

process:
    addi sp, sp, -16
    sw   ra, 12(sp)         # saved return address (overflow target)
    sw   a0, 8(sp)          # local "buffer" slot
    lw   t0, 8(sp)
    slli a0, t0, 1          # benign processing: result = input * 2
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret

secret_gadget:
    # Privileged functionality never invoked on any benign path.
    li   a0, %(marker)d
    li   a7, 1
    ecall
    li   a0, 99
    li   a7, 93
    ecall
""" % {"marker": GADGET_MARKER}


DEFAULT_INPUTS = [21]


@register_workload
def vulnerable_process() -> Workload:
    """A function with a stack-resident return address (ROP victim)."""
    return Workload(
        name="vulnerable_process",
        description="Stack-smashing victim with an unreachable secret gadget",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["attack-target", "calls"],
    )
