"""Open Syringe Pump firmware model.

The paper motivates loop-counter attacks with the open-source syringe pump:
"a syringe pump dispenses more liquid than requested" when a loop bound is
corrupted (§2, citing C-FLAT).  This workload models the pump's command loop:
the host sends commands (1 = dispense, 2 = withdraw, 0 = shutdown) followed by
a quantity; the firmware steps the motor one unit at a time in a loop whose
bound is the requested quantity held in data memory -- which is exactly the
variable the class-2 attack corrupts.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    li   s0, 0              # total units dispensed (net)
main_loop:
    li   a7, 5
    ecall                   # read command
    beqz a0, shutdown
    li   t0, 1
    beq  a0, t0, cmd_dispense
    li   t0, 2
    beq  a0, t0, cmd_withdraw
    j    main_loop          # unknown command: ignore

cmd_dispense:
    li   a7, 5
    ecall                   # read requested quantity
    la   t1, quantity
    sw   a0, 0(t1)          # quantity lives in data memory (attack target)
    li   s1, 0              # steps completed
dispense_loop:
    la   t1, quantity
    lw   t2, 0(t1)
    bge  s1, t2, dispense_done
    call step_motor
    addi s0, s0, 1
    addi s1, s1, 1
    j    dispense_loop
dispense_done:
    j    main_loop

cmd_withdraw:
    li   a7, 5
    ecall                   # read requested quantity
    mv   t2, a0
    li   s1, 0
withdraw_loop:
    bge  s1, t2, withdraw_done
    call step_motor
    addi s0, s0, -1
    addi s1, s1, 1
    j    withdraw_loop
withdraw_done:
    j    main_loop

shutdown:
    mv   a0, s0
    li   a7, 1
    ecall                   # report net units moved
    li   a0, 0
    li   a7, 93
    ecall

step_motor:
    # One motor step: a short pulse-timing delay loop.
    li   t3, 3
motor_delay:
    addi t3, t3, -1
    bnez t3, motor_delay
    ret

    .data
quantity:
    .word 0
"""


def reference_output(inputs: List[int]) -> str:
    """Reference model of the pump firmware (net units moved)."""
    total = 0
    index = 0
    while index < len(inputs):
        command = inputs[index]
        index += 1
        if command == 0:
            break
        if command == 1 and index < len(inputs):
            total += inputs[index]
            index += 1
        elif command == 2 and index < len(inputs):
            total -= inputs[index]
            index += 1
    return str(total)


DEFAULT_INPUTS = [1, 5, 2, 2, 1, 4, 0]


@register_workload
def syringe_pump() -> Workload:
    """The syringe-pump command-loop firmware."""
    return Workload(
        name="syringe_pump",
        description="Open Syringe Pump command loop (dispense/withdraw motor steps)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "nested", "calls", "attack-target", "paper-workload"],
    )
