"""String routines: byte-granularity loops over NUL-terminated data.

``strlen`` and ``strcmp`` style loops are short, branch-dense and extremely
common in embedded command parsers.  The workload measures the length of a
string baked into the data section and compares two strings, printing both
results.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

STRING_A = "attest-all-the-things"
STRING_B = "attest-all-the-words"

SOURCE = """
    .text
_start:
    la   a0, string_a
    call strlen
    li   a7, 1
    ecall                   # print strlen(string_a)
    li   a0, 32
    li   a7, 11
    ecall

    la   a0, string_a
    la   a1, string_b
    call strcmp
    li   a7, 1
    ecall                   # print sign of strcmp(string_a, string_b)
    li   a0, 0
    li   a7, 93
    ecall

strlen:
    mv   t0, a0
    li   a0, 0
strlen_loop:
    add  t1, t0, a0
    lbu  t2, 0(t1)
    beqz t2, strlen_done
    addi a0, a0, 1
    j    strlen_loop
strlen_done:
    ret

strcmp:
    # Returns -1, 0 or 1.
strcmp_loop:
    lbu  t0, 0(a0)
    lbu  t1, 0(a1)
    bne  t0, t1, strcmp_diff
    beqz t0, strcmp_equal
    addi a0, a0, 1
    addi a1, a1, 1
    j    strcmp_loop
strcmp_diff:
    blt  t0, t1, strcmp_less
    li   a0, 1
    ret
strcmp_less:
    li   a0, -1
    ret
strcmp_equal:
    li   a0, 0
    ret

    .data
string_a:
    .asciiz "%(a)s"
string_b:
    .asciiz "%(b)s"
""" % {"a": STRING_A, "b": STRING_B}


def reference_output(_inputs: List[int] = ()) -> str:
    length = len(STRING_A)
    if STRING_A == STRING_B:
        sign = 0
    else:
        sign = 1 if STRING_A > STRING_B else -1
    return "%d %d" % (length, sign)


@register_workload
def string_ops() -> Workload:
    """strlen + strcmp over data-section strings."""
    return Workload(
        name="string_ops",
        description="strlen/strcmp byte loops over NUL-terminated strings",
        source=SOURCE,
        inputs=[],
        expected_output=reference_output(),
        tags=["loops", "calls", "byte-access"],
    )
