"""Command dispatcher with a function-pointer table (indirect calls in a loop).

Event/command dispatchers are ubiquitous in embedded firmware and are the
canonical source of *indirect* branches: the call target is loaded from a
table in data memory.  Inside a loop, every indirect call target must be
re-encoded by the loop monitor's CAM into an ``n``-bit code, and the full
targets are reported in the metadata ``L`` -- this workload exercises exactly
that machinery (and is the natural victim for code-pointer overwrites).
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: Values returned by the three handlers.
HANDLER_VALUES = (10, 20, 30)

SOURCE = """
    .text
_start:
    li   s0, 0              # accumulator
main_loop:
    li   a7, 5
    ecall                   # read command (0 = finish, 1..3 = handler index)
    beqz a0, finish
    addi t0, a0, -1
    li   t1, 3
    bgeu t0, t1, main_loop  # out-of-range commands are ignored
    slli t0, t0, 2
    la   t1, handlers
    add  t1, t1, t0
    lw   t2, 0(t1)          # function pointer from the table (attack target)
    jalr ra, t2, 0          # indirect call
    add  s0, s0, a0
    j    main_loop
finish:
    mv   a0, s0
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall

handler_status:
    li   a0, 10
    ret
handler_sample:
    li   a0, 20
    ret
handler_actuate:
    li   a0, 30
    ret

privileged_maintenance:
    # Not reachable through the dispatch table in benign executions.
    li   a0, 999
    ret

    .data
handlers:
    .word handler_status
    .word handler_sample
    .word handler_actuate
"""


def reference_output(inputs: List[int]) -> str:
    """Reference model of the dispatcher accumulator."""
    total = 0
    for command in inputs:
        if command == 0:
            break
        if 1 <= command <= 3:
            total += HANDLER_VALUES[command - 1]
    return str(total)


DEFAULT_INPUTS = [1, 2, 3, 1, 2, 0]


@register_workload
def dispatcher() -> Workload:
    """Function-pointer command dispatcher."""
    return Workload(
        name="dispatcher",
        description="Command dispatcher via function-pointer table (indirect calls in a loop)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "indirect", "attack-target"],
    )
