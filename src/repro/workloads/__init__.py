"""Evaluation workloads.

The paper evaluates LO-FAT on "extracted code segments from real embedded
applications, such as Open Syringe Pump" (§6.1).  This package provides a
suite of embedded workloads written in RV32 assembly that exercise every
control-flow structure LO-FAT handles -- simple loops, nested loops,
data-dependent loop paths, indirect calls, recursion -- plus the targets for
the security experiments (an authentication check and a stack-smashing
victim), and a synthetic program generator for parameter sweeps.

Every workload is registered in :data:`WORKLOAD_REGISTRY`; use
:func:`get_workload` / :func:`all_workloads` to obtain them.
"""

from repro.workloads.common import (
    Workload,
    WORKLOAD_REGISTRY,
    all_workloads,
    get_workload,
    register_workload,
)

# Importing the modules populates the registry.
from repro.workloads import (  # noqa: F401  (imported for registration side effects)
    auth,
    crc,
    dispatcher,
    figure4,
    filters,
    matrix,
    quicksort,
    recursion,
    search,
    sorting,
    state_machine,
    strings,
    syringe_pump,
    vulnerable,
)
from repro.workloads.generator import SyntheticWorkloadGenerator

# The language ports register themselves alongside the hand-assembled
# originals (lang_bubble_sort, lang_crc32, lang_binary_search).  Imported
# last: the ports pin themselves to the originals' registrations.
from repro.lang import ports  # noqa: F401  (registration side effects)

__all__ = [
    "Workload",
    "WORKLOAD_REGISTRY",
    "all_workloads",
    "get_workload",
    "register_workload",
    "SyntheticWorkloadGenerator",
]
