"""FIR filter: the multiply-accumulate kernel of embedded signal processing.

A sliding-window convolution with a fixed coefficient table.  The inner loop
has a single path (no data-dependent branches), so its metadata compresses to
one path with a large iteration count -- the opposite extreme from the
sorting workload.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: Filter coefficients baked into the data section.
COEFFICIENTS = [1, 3, -2, 5]

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # number of samples
    mv   s0, a0
    la   s1, samples
    la   s2, coeffs
    li   s3, %(taps)d       # number of taps

    li   t0, 0              # read samples
read_loop:
    bge  t0, s0, read_done
    li   a7, 5
    ecall
    slli t1, t0, 2
    add  t1, t1, s1
    sw   a0, 0(t1)
    addi t0, t0, 1
    j    read_loop
read_done:

    li   s4, 0              # checksum of all filter outputs
    li   t0, 0              # output index n
    sub  s5, s0, s3
    addi s5, s5, 1          # number of output samples
filter_loop:
    bge  t0, s5, filter_done
    li   t5, 0              # accumulator
    li   t1, 0              # tap index k
tap_loop:
    bge  t1, s3, tap_done
    add  t2, t0, t1
    slli t2, t2, 2
    add  t2, t2, s1
    lw   t2, 0(t2)          # samples[n + k]
    slli t3, t1, 2
    add  t3, t3, s2
    lw   t3, 0(t3)          # coeffs[k]
    mul  t2, t2, t3
    add  t5, t5, t2
    addi t1, t1, 1
    j    tap_loop
tap_done:
    add  s4, s4, t5
    addi t0, t0, 1
    j    filter_loop
filter_done:
    mv   a0, s4
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall

    .data
coeffs:
%(coeff_words)s
samples:
    .space 512
""" % {
    "taps": len(COEFFICIENTS),
    "coeff_words": "\n".join("    .word %d" % value for value in COEFFICIENTS),
}


def reference_output(inputs: List[int]) -> str:
    """Reference model: sum of all FIR outputs."""
    count = inputs[0]
    samples = inputs[1:1 + count]
    taps = len(COEFFICIENTS)
    total = 0
    for n in range(count - taps + 1):
        total += sum(samples[n + k] * COEFFICIENTS[k] for k in range(taps))
    return str(total)


DEFAULT_INPUTS = [10, 4, -2, 7, 1, 0, 3, -5, 8, 2, 6]


@register_workload
def fir_filter() -> Workload:
    """4-tap FIR filter over an input sample stream."""
    return Workload(
        name="fir_filter",
        description="4-tap FIR filter (single-path nested MAC loops)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "nested", "single-path"],
    )
