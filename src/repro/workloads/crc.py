"""Word-wise CRC-32: a tight bit loop with data-dependent XOR branches.

Checksums are typical of the integrity-critical inner loops in embedded
firmware.  The bit loop executes 32 iterations per input word and takes one
of two paths per iteration depending on the data bit, producing loop metadata
with two heavily-repeated paths -- a best case for LO-FAT's loop compression.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: Reflected CRC-32 polynomial.
CRC_POLY = 0xEDB88320

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # number of data words
    mv   s0, a0
    li   s1, -1             # crc = 0xFFFFFFFF
    li   s2, 0              # word index
word_loop:
    bge  s2, s0, crc_done
    li   a7, 5
    ecall                   # next data word
    xor  s1, s1, a0
    li   t0, 32             # bit counter
bit_loop:
    beqz t0, bits_done
    andi t1, s1, 1
    srli s1, s1, 1
    beqz t1, no_xor
    li   t2, 0xEDB88320
    xor  s1, s1, t2
no_xor:
    addi t0, t0, -1
    j    bit_loop
bits_done:
    addi s2, s2, 1
    j    word_loop
crc_done:
    not  a0, s1
    li   a7, 1
    ecall
    li   a0, 0
    li   a7, 93
    ecall
"""


def reference_crc(words: List[int]) -> int:
    """Reference model of the word-wise CRC-32 computed by the program."""
    crc = 0xFFFFFFFF
    for word in words:
        crc ^= word & 0xFFFFFFFF
        for _ in range(32):
            low_bit = crc & 1
            crc >>= 1
            if low_bit:
                crc ^= CRC_POLY
    return (~crc) & 0xFFFFFFFF


def reference_output(inputs: List[int]) -> str:
    count = inputs[0]
    value = reference_crc(inputs[1:1 + count])
    # The program prints the value as a signed 32-bit integer.
    if value >= 0x80000000:
        value -= 0x100000000
    return str(value)


DEFAULT_INPUTS = [4, 0xDEADBEEF, 0x12345678, 0x0BADF00D, 0xCAFEBABE]


@register_workload
def crc32() -> Workload:
    """Word-wise CRC-32 over an input stream."""
    return Workload(
        name="crc32",
        description="CRC-32 bit loop (two data-dependent paths, heavy repetition)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "nested", "data-dependent", "paper-workload"],
    )
