"""Binary search over a sorted table.

A classic control-flow-rich embedded routine: a short loop whose body takes a
different branch direction on every iteration depending on the probe result.
Queries are supplied as program input, so the executed path (and therefore the
measurement) is input-dependent -- which is what the attestation protocol's
"valid path under input i" check is about.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

#: The sorted table baked into the program's data section.
TABLE = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53]

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # number of queries
    mv   s0, a0
    la   s1, table
    li   s2, %(table_len)d
    li   s3, 0              # query index
query_loop:
    bge  s3, s0, all_done
    li   a7, 5
    ecall                   # query value
    mv   s4, a0
    li   t0, 0              # lo
    addi t1, s2, -1         # hi
    li   s5, -1             # result index
search_loop:
    bgt  t0, t1, search_done
    add  t2, t0, t1
    srli t2, t2, 1          # mid
    slli t3, t2, 2
    add  t3, t3, s1
    lw   t4, 0(t3)          # table[mid]
    beq  t4, s4, found
    blt  t4, s4, go_right
    addi t1, t2, -1         # hi = mid - 1
    j    search_loop
go_right:
    addi t0, t2, 1          # lo = mid + 1
    j    search_loop
found:
    mv   s5, t2
search_done:
    mv   a0, s5
    li   a7, 1
    ecall
    li   a0, 32
    li   a7, 11
    ecall
    addi s3, s3, 1
    j    query_loop
all_done:
    li   a0, 0
    li   a7, 93
    ecall

    .data
table:
%(table_words)s
""" % {
    "table_len": len(TABLE),
    "table_words": "\n".join("    .word %d" % value for value in TABLE),
}


def reference_output(inputs: List[int]) -> str:
    """Reference model: the index (or -1) for each query, space separated."""
    count = inputs[0]
    chunks = []
    for query in inputs[1:1 + count]:
        index = TABLE.index(query) if query in TABLE else -1
        chunks.append("%d " % index)
    return "".join(chunks)


DEFAULT_INPUTS = [6, 23, 2, 53, 4, 29, 50]


@register_workload
def binary_search() -> Workload:
    """Binary search over a 16-entry prime table."""
    return Workload(
        name="binary_search",
        description="Binary search queries over a sorted table (input-dependent paths)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "nested", "data-dependent"],
    )
