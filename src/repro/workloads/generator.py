"""Synthetic workload generator for parameter sweeps.

The performance experiments need workloads whose *control-flow event density*
(branches per executed instruction) and loop structure can be dialled
precisely -- real firmware gives single data points, but the hash-engine
buffering analysis (E6) and the C-FLAT overhead scaling (E1) need a sweep.

:class:`SyntheticWorkloadGenerator` emits assembly programs with:

* an outer loop executing a configurable number of iterations,
* a body containing a configurable number of conditional branches whose
  outcomes are driven by a deterministic linear-congruential generator
  computed in registers (so different iterations exercise different paths),
* a configurable amount of straight-line filler between branches, which sets
  the branch density.

All generated programs are deterministic and terminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads.common import Workload


@dataclass
class SyntheticWorkloadGenerator:
    """Generates parameterised branch-density workloads.

    Attributes:
        branches_per_iteration: conditional branches in the loop body.
        filler_per_branch: straight-line ALU instructions inserted after each
            branch (controls the branch density: 0 = as dense as possible).
        iterations: outer-loop iteration count.
        nested: if True, wrap the branch blocks in an additional inner loop of
            4 iterations (for nesting-related experiments).
        seed: initial LCG state (changes which paths are taken).
    """

    branches_per_iteration: int = 8
    filler_per_branch: int = 2
    iterations: int = 50
    nested: bool = False
    seed: int = 12345

    @property
    def name(self) -> str:
        return "synthetic_b%d_f%d_i%d%s" % (
            self.branches_per_iteration,
            self.filler_per_branch,
            self.iterations,
            "_nested" if self.nested else "",
        )

    # ----------------------------------------------------------- generation
    def source(self) -> str:
        """Emit the assembly text of the synthetic program."""
        lines: List[str] = [
            "    .text",
            "_start:",
            "    li   s0, %d" % self.iterations,
            "    li   s1, 0              # outer index",
            "    li   s2, %d" % (self.seed & 0x7FFFFFFF),
            "    li   s3, 0              # accumulator",
            "outer_loop:",
            "    bge  s1, s0, finished",
        ]
        body_label_prefix = "blk"
        inner_prologue: List[str] = []
        inner_epilogue: List[str] = []
        if self.nested:
            lines += [
                "    li   s4, 0              # inner index",
                "inner_loop:",
                "    li   t6, 4",
                "    bge  s4, t6, inner_done",
            ]
        # LCG step: s2 = s2 * 1103515245 + 12345 (mod 2^31).
        lines += [
            "    li   t0, 1103515245",
            "    mul  s2, s2, t0",
            "    li   t0, 12345",
            "    add  s2, s2, t0",
            "    li   t0, 0x7FFFFFFF",
            "    and  s2, s2, t0",
            "    mv   t1, s2",
        ]
        for index in range(self.branches_per_iteration):
            skip = "%s_skip_%d" % (body_label_prefix, index)
            lines += [
                "    andi t2, t1, 1",
                "    srli t1, t1, 1",
                "    beqz t2, %s" % skip,
                "    addi s3, s3, %d" % (index + 1),
            ]
            lines += ["    addi t3, t3, 1"] * self.filler_per_branch
            lines += ["%s:" % skip]
            lines += ["    addi t4, t4, 1"] * self.filler_per_branch
        if self.nested:
            lines += [
                "    addi s4, s4, 1",
                "    j    inner_loop",
                "inner_done:",
            ]
        lines += [
            "    addi s1, s1, 1",
            "    j    outer_loop",
            "finished:",
            "    mv   a0, s3",
            "    li   a7, 1",
            "    ecall",
            "    li   a0, 0",
            "    li   a7, 93",
            "    ecall",
        ]
        return "\n".join(lines) + "\n"

    def reference_output(self) -> str:
        """Reference model of the accumulator the program prints."""
        state = self.seed & 0x7FFFFFFF
        accumulator = 0
        repeats = 4 if self.nested else 1
        for _ in range(self.iterations):
            for _ in range(repeats):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                bits = state
                for index in range(self.branches_per_iteration):
                    if bits & 1:
                        accumulator += index + 1
                    bits >>= 1
        return str(accumulator & 0xFFFFFFFF)

    def workload(self) -> Workload:
        """Package the generated program as a :class:`Workload`."""
        return Workload(
            name=self.name,
            description="Synthetic branch-density workload (%d branches, %d filler, %d iterations)"
            % (self.branches_per_iteration, self.filler_per_branch, self.iterations),
            source=self.source(),
            inputs=[],
            expected_output=self.reference_output(),
            tags=["synthetic", "loops"] + (["nested"] if self.nested else []),
        )


def density_sweep(densities: List[int], iterations: int = 30) -> List[Workload]:
    """Workloads with decreasing filler (increasing branch density).

    ``densities`` are filler-per-branch values; smaller means denser branches.
    """
    return [
        SyntheticWorkloadGenerator(
            branches_per_iteration=8,
            filler_per_branch=filler,
            iterations=iterations,
        ).workload()
        for filler in densities
    ]
