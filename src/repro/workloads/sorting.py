"""Bubble sort: nested loops with data-dependent branch outcomes.

Sorting is the canonical example of a loop whose internal path (swap vs. no
swap) depends on the data, producing several distinct loop paths whose
encodings and iteration counts appear in the metadata ``L``.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import Workload, register_workload

SOURCE = """
    .text
_start:
    li   a7, 5
    ecall                   # N
    mv   s0, a0
    la   s1, array

    li   t0, 0              # read N values into the array
read_loop:
    bge  t0, s0, read_done
    li   a7, 5
    ecall
    slli t1, t0, 2
    add  t1, t1, s1
    sw   a0, 0(t1)
    addi t0, t0, 1
    j    read_loop
read_done:

    li   t0, 0              # i
outer:
    addi t5, s0, -1
    bge  t0, t5, sort_done
    li   t1, 0              # j
inner:
    sub  t6, s0, t0
    addi t6, t6, -1         # N - i - 1
    bge  t1, t6, inner_done
    slli t2, t1, 2
    add  t2, t2, s1
    lw   t3, 0(t2)
    lw   t4, 4(t2)
    ble  t3, t4, no_swap
    sw   t4, 0(t2)
    sw   t3, 4(t2)
no_swap:
    addi t1, t1, 1
    j    inner
inner_done:
    addi t0, t0, 1
    j    outer
sort_done:

    li   t0, 0              # print the sorted array, space separated
print_loop:
    bge  t0, s0, done
    slli t1, t0, 2
    add  t1, t1, s1
    lw   a0, 0(t1)
    li   a7, 1
    ecall
    li   a0, 32
    li   a7, 11
    ecall
    addi t0, t0, 1
    j    print_loop
done:
    li   a0, 0
    li   a7, 93
    ecall

    .data
array:
    .space 256
"""


def reference_output(inputs: List[int]) -> str:
    """Reference model: sort the values and render them space separated."""
    count = inputs[0]
    values = sorted(inputs[1:1 + count])
    return "".join("%d " % value for value in values)


DEFAULT_INPUTS = [8, 42, 7, 19, 3, 88, 23, 5, 61]


@register_workload
def bubble_sort() -> Workload:
    """Bubble sort over an input array."""
    return Workload(
        name="bubble_sort",
        description="Bubble sort (nested loops, data-dependent swap paths)",
        source=SOURCE,
        inputs=list(DEFAULT_INPUTS),
        expected_output=reference_output(DEFAULT_INPUTS),
        tags=["loops", "nested", "data-dependent", "paper-workload"],
    )
