"""Analytical FPGA resource model (paper §6.2).

The paper prototypes LO-FAT on a Virtex-7 XC7Z020 (Zedboard) and reports:

* 4 % of the device's registers and 6 % of its LUTs, amounting to roughly
  20 % additional logic on top of the Pulpino SoC;
* 49 x 36-Kbit block RAMs, of which 16 per simultaneously tracked loop are
  the sparse path-ID-indexed counter memories (48 for nesting depth 3) plus
  one for the branches memory / hash input buffering;
* a maximum clock frequency of 80 MHz for the integrated design (the
  stand-alone SHA-3 engine closes timing at 150 MHz).

These numbers follow from the sizing formulas of §5.2 (``8 x 2^l`` bits of
counter memory per loop, ``n``-bit indirect-target codes) plus per-component
logic estimates.  :class:`AreaModel` reproduces the published configuration
point and supports the parameter sweeps of experiments E3 and E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.lofat.config import LoFatConfig


@dataclass(frozen=True)
class FpgaDevice:
    """Resource capacity of an FPGA device."""

    name: str
    luts: int
    registers: int
    bram36_blocks: int
    #: Usable bits per 36-Kbit BRAM block.
    bram36_kbits: int = 36

    @property
    def bram_bits_total(self) -> int:
        return self.bram36_blocks * self.bram36_kbits * 1024


#: The Zynq-7020 programmable logic used on the Zedboard (paper's target).
VIRTEX7_XC7Z020 = FpgaDevice(
    name="XC7Z020 (Zedboard)",
    luts=53_200,
    registers=106_400,
    bram36_blocks=140,
)

#: Logic footprint of the Pulpino SoC on the same device (approximate
#: synthesis baseline used to express LO-FAT's cost as "additional logic").
PULPINO_BASELINE_LUTS = 20_000
PULPINO_BASELINE_REGISTERS = 17_000


@dataclass
class AreaEstimate:
    """Resource estimate for one LO-FAT configuration."""

    luts: int
    registers: int
    bram36: int
    bram_bits: int
    per_component: Dict[str, Dict[str, int]] = field(default_factory=dict)
    max_clock_mhz: float = 80.0

    def utilization(self, device: FpgaDevice) -> Dict[str, float]:
        """Fraction of the device consumed, per resource class."""
        return {
            "luts": self.luts / device.luts,
            "registers": self.registers / device.registers,
            "bram36": self.bram36 / device.bram36_blocks,
        }

    def logic_overhead_vs_pulpino(self) -> float:
        """Additional logic relative to the Pulpino SoC baseline."""
        baseline = PULPINO_BASELINE_LUTS + PULPINO_BASELINE_REGISTERS
        added = self.luts + self.registers
        return added / baseline

    def as_dict(self) -> dict:
        return {
            "luts": self.luts,
            "registers": self.registers,
            "bram36": self.bram36,
            "bram_bits": self.bram_bits,
            "max_clock_mhz": self.max_clock_mhz,
        }


class AreaModel:
    """Component-wise resource estimation for a LO-FAT configuration.

    The per-component constants are calibrated so the paper's default
    configuration (n=4, l=16, depth 3) lands on the published figures; the
    scaling with the configuration parameters follows the structural sizing
    arguments of §5.2 and §6.2.
    """

    # Fixed logic of the SHA-3 512 engine (independent of the configuration).
    HASH_ENGINE_LUTS = 1_000
    HASH_ENGINE_REGISTERS = 1_700

    # Branch filter: PC/instruction snoop, classification, loop entry/exit
    # registers (scales with nesting depth).
    BRANCH_FILTER_BASE_LUTS = 400
    BRANCH_FILTER_BASE_REGISTERS = 350
    BRANCH_FILTER_PER_LOOP_LUTS = 90
    BRANCH_FILTER_PER_LOOP_REGISTERS = 110

    # Loop monitor / path encoder: shift registers of l bits per loop level,
    # iteration counters, control FSM.
    LOOP_MONITOR_BASE_LUTS = 350
    LOOP_MONITOR_BASE_REGISTERS = 300
    LOOP_MONITOR_PER_PATH_BIT_LUTS = 7
    LOOP_MONITOR_PER_PATH_BIT_REGISTERS = 10

    # Indirect-target CAM: 2 interleaved CAMs of (2^n - 1) entries of 32 bits
    # per loop level; CAM match logic is LUT-heavy.
    CAM_PER_ENTRY_LUTS = 6
    CAM_PER_ENTRY_REGISTERS = 16

    # Hash engine controller + metadata generator + pair buffering logic.
    CONTROLLER_LUTS = 350
    CONTROLLER_REGISTERS = 380

    # BRAM aspect: a 36-Kbit block can be organised as deep as 32K x 1.
    BRAM_MAX_DEPTH = 32_768
    BRAM_BITS = 36 * 1024

    def __init__(self, config: Optional[LoFatConfig] = None) -> None:
        self.config = config or LoFatConfig()

    # -------------------------------------------------------------- memory
    def loop_counter_brams_per_loop(self) -> int:
        """36-Kbit BRAMs needed for one loop's path-indexed counter memory.

        The memory has ``2^l`` entries of ``counter_width`` bits and must
        offer single-cycle access, so it is built from BRAMs organised in
        their deepest aspect ratio (32K x 1): ``ceil(2^l / 32K)`` blocks per
        data bit.  For the paper's l=16, 8-bit counters this yields
        2 x 8 = 16 BRAMs per loop.
        """
        config = self.config
        entries = 1 << config.path_id_bits
        blocks_per_bit = max(1, math.ceil(entries / self.BRAM_MAX_DEPTH))
        return blocks_per_bit * config.counter_width_bits

    def loop_counter_brams_total(self) -> int:
        """Counter-memory BRAMs across all tracked nesting levels."""
        return self.loop_counter_brams_per_loop() * self.config.max_nested_loops

    def branches_memory_brams(self) -> int:
        """BRAMs for the branches memory and the hash input cache buffer."""
        # 64-bit pairs; one 36-Kbit block comfortably holds the working set.
        return 1

    def bram_blocks(self) -> int:
        """Total 36-Kbit BRAM blocks."""
        return self.loop_counter_brams_total() + self.branches_memory_brams()

    def bram_bits(self) -> int:
        """Total on-chip memory bits implied by the configuration (§5.2)."""
        return (
            self.config.total_loop_memory_bits
            + 64 * self.config.hash_input_buffer_depth
        )

    # --------------------------------------------------------------- logic
    def logic(self) -> Dict[str, Dict[str, int]]:
        """Per-component LUT / register estimates."""
        config = self.config
        depth = config.max_nested_loops
        cam_entries = config.max_indirect_targets_per_loop * depth

        branch_filter = {
            "luts": self.BRANCH_FILTER_BASE_LUTS
            + self.BRANCH_FILTER_PER_LOOP_LUTS * depth,
            "registers": self.BRANCH_FILTER_BASE_REGISTERS
            + self.BRANCH_FILTER_PER_LOOP_REGISTERS * depth,
        }
        loop_monitor = {
            "luts": self.LOOP_MONITOR_BASE_LUTS
            + self.LOOP_MONITOR_PER_PATH_BIT_LUTS * config.path_id_bits * depth,
            "registers": self.LOOP_MONITOR_BASE_REGISTERS
            + self.LOOP_MONITOR_PER_PATH_BIT_REGISTERS * config.path_id_bits * depth,
        }
        target_cam = {
            "luts": self.CAM_PER_ENTRY_LUTS * cam_entries * 2,      # 2 interleaved CAMs
            "registers": self.CAM_PER_ENTRY_REGISTERS * cam_entries,
        }
        hash_engine = {
            "luts": self.HASH_ENGINE_LUTS,
            "registers": self.HASH_ENGINE_REGISTERS,
        }
        controller = {
            "luts": self.CONTROLLER_LUTS,
            "registers": self.CONTROLLER_REGISTERS,
        }
        return {
            "branch_filter": branch_filter,
            "loop_monitor": loop_monitor,
            "target_cam": target_cam,
            "hash_engine": hash_engine,
            "controller": controller,
        }

    def max_clock_mhz(self) -> float:
        """Estimated maximum clock of the integrated design.

        The CAM match path limits the integrated design to ~80 MHz; without
        the CAM access on the critical path the design could run faster
        (paper §6.1: "eliminating the CAM access results in a much higher
        clock frequency if desired"), bounded by the SHA-3 engine's 150 MHz.
        """
        config = self.config
        if config.max_indirect_targets_per_loop <= 1:
            return config.hash_engine_max_clock_mhz
        # Larger CAMs lengthen the match/priority-encode path.
        cam_penalty = 1.0 + 0.02 * (config.max_indirect_targets_per_loop - 15)
        return min(config.hash_engine_max_clock_mhz, 80.0 / max(cam_penalty, 0.5))

    # ------------------------------------------------------------ estimate
    def estimate(self) -> AreaEstimate:
        """Produce the full :class:`AreaEstimate` for the configuration."""
        components = self.logic()
        luts = sum(component["luts"] for component in components.values())
        registers = sum(component["registers"] for component in components.values())
        return AreaEstimate(
            luts=luts,
            registers=registers,
            bram36=self.bram_blocks(),
            bram_bits=self.bram_bits(),
            per_component=components,
            max_clock_mhz=self.max_clock_mhz(),
        )
