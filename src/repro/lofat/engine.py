"""The top-level LO-FAT engine.

:class:`LoFatEngine` wires the branch filter, loop monitor, hash engine and
metadata generator together exactly as Figure 3 of the paper does, and plugs
into the CPU model as a retired-instruction monitor.  Because it is a monitor,
it observes execution *in parallel* with the core and can never slow it down
-- which is the paper's central performance claim (zero processor overhead).

Typical use::

    engine = LoFatEngine()
    cpu = Cpu(program, inputs=[...])
    cpu.attach_monitor(engine.observe)
    result = cpu.run()
    measurement = engine.finalize()
    # measurement.measurement  -> 64-byte SHA3-512 value A
    # measurement.metadata     -> loop metadata L
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cpu.trace import TraceRecord
from repro.lofat.branch_filter import BranchFilter
from repro.lofat.config import LoFatConfig
from repro.lofat.hash_engine import HashEngine
from repro.lofat.loop_monitor import LoopMonitor
from repro.lofat.metadata import LoopMetadata, MetadataGenerator


@dataclass
class AttestationMeasurement:
    """The prover-side result of one attested execution.

    Attributes:
        measurement: the 64-byte SHA3-512 cumulative hash ``A``.
        metadata: the loop metadata ``L``.
        stats: engine statistics (compression, latency, buffering).
    """

    measurement: bytes
    metadata: LoopMetadata
    stats: dict = field(default_factory=dict)

    @property
    def measurement_hex(self) -> str:
        """Hex rendering of ``A``."""
        return self.measurement.hex()

    @property
    def report_payload(self) -> bytes:
        """The byte string covered by the attestation signature: ``A || L``."""
        return self.measurement + self.metadata.to_bytes()


class LoFatEngine:
    """Hardware control-flow attestation engine (transaction-level model)."""

    def __init__(self, config: Optional[LoFatConfig] = None,
                 record_filter_events: bool = False) -> None:
        self.config = config or LoFatConfig()
        self.hash_engine = HashEngine(self.config)
        self.metadata_generator = MetadataGenerator()
        self.loop_monitor = LoopMonitor(
            config=self.config,
            hash_pairs=self._hash_pairs,
            on_loop_exit=self.metadata_generator.on_loop_exit,
        )
        self.branch_filter = BranchFilter(
            config=self.config,
            loop_monitor=self.loop_monitor,
            hash_non_loop=self._hash_non_loop_branch,
            hash_non_loop_run=self._hash_non_loop_run,
            hash_non_loop_chunk=self._hash_non_loop_chunk,
            record_events=record_filter_events,
        )
        self._last_cycle = 0
        self._finalized: Optional[AttestationMeasurement] = None

    # ------------------------------------------------------------- wiring
    def _hash_non_loop_branch(self, record: TraceRecord) -> None:
        """``non_loops ctrl``: hash the pair of a branch outside any loop."""
        src, dest = record.src_dest
        self.hash_engine.absorb_pair(src, dest, arrival_cycle=record.cycle)

    def _hash_pairs(self, pairs: Sequence[Tuple[int, int]], cycle: int) -> None:
        """``new_path ctrl``: hash the buffered pairs of a new loop path.

        The pairs are already sitting in the branches memory (a BRAM), so the
        hash engine controller streams them out at one pair per cycle rather
        than presenting them all in the same cycle -- hence the staggered
        arrival times in the cycle model.  The whole run is absorbed with one
        sponge update.
        """
        self.hash_engine.absorb_run(pairs, arrivals=range(cycle, cycle + len(pairs)))

    def _hash_non_loop_run(self, records: Sequence[TraceRecord]) -> None:
        """Hash a straight run of non-loop branches in one absorb call."""
        self.hash_engine.absorb_run(
            [(record.pc, record.next_pc) for record in records],
            arrivals=[record.cycle for record in records],
        )

    def _hash_non_loop_chunk(self, chunk, pairs, records) -> None:
        """Hash a compiled block's precomputed pair chunk in one call."""
        self.hash_engine.absorb_chunk(
            chunk, pairs, arrivals=[record.cycle for record in records],
        )

    # -------------------------------------------------------------- input
    def observe(self, record: TraceRecord) -> None:
        """Observe one retired instruction (attach this to the CPU monitor)."""
        if self._finalized is not None:
            raise RuntimeError("LO-FAT engine already finalized")
        self._last_cycle = record.cycle
        self.branch_filter.observe(record)

    def observe_batch(self, records: Sequence[TraceRecord]) -> None:
        """Observe a batch of retired *control-flow* records.

        The fast execution pipeline delivers only control-flow-relevant
        records, in retirement order; the branch filter reconstructs the
        straight-line runs between them from each record's ``next_pc``.  The
        absorbed byte sequence -- and therefore the measurement ``A`` and
        metadata ``L`` -- is identical to per-record observation; only
        cycle-model bookkeeping (which overlaps execution in hardware) is
        coarser.
        """
        if self._finalized is not None:
            raise RuntimeError("LO-FAT engine already finalized")
        if not records:
            return
        self._last_cycle = records[-1].cycle
        self.branch_filter.observe_batch(records)

    def observe_block(self, records: Sequence[TraceRecord], chunk, pairs) -> None:
        """Observe one compiled block's control-flow records (compiled engine).

        ``records[:len(pairs)]`` are the block's chain-internal forward
        jumps with their pre-serialized hash chunk; the remainder is the
        terminator.  Measurement bytes and metadata are identical to
        :meth:`observe_batch` over the same records.
        """
        if self._finalized is not None:
            raise RuntimeError("LO-FAT engine already finalized")
        if not records:
            return
        self._last_cycle = records[-1].cycle
        self.branch_filter.observe_block(records, chunk, pairs)

    def sync_straight_line(self, next_pc: int, cycle: int) -> None:
        """Close loops left by an unobserved straight-line run (see
        :meth:`repro.lofat.branch_filter.BranchFilter.sync_straight_line`)."""
        if self._finalized is not None:
            return
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        self.branch_filter.sync_straight_line(next_pc, cycle)

    def finish_run(self, instructions: int, cycle: int) -> None:
        """End-of-run sync from the fast path.

        Batches carry control-flow records only; this delivers the final
        retirement count and cycle so the filter's ``instructions_observed``
        and the finalize-time loop-closing cycle match per-record
        observation exactly (covering the straight-line tail of the run).
        """
        if self._finalized is not None:
            return
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        self.branch_filter.sync_instructions_observed(instructions)

    # Allow the engine object itself to be used as the monitor callback.
    __call__ = observe

    # ------------------------------------------------------------ results
    def finalize(self) -> AttestationMeasurement:
        """Close the attested execution and produce ``(A, L)``.

        Idempotent: repeated calls return the same measurement.
        """
        if self._finalized is not None:
            return self._finalized
        self.branch_filter.finalize(self._last_cycle)
        self.hash_engine.flush_cycle_model()
        measurement = self.hash_engine.finalize()
        metadata = self.metadata_generator.finalize()
        self._finalized = AttestationMeasurement(
            measurement=measurement,
            metadata=metadata,
            stats=self.statistics(),
        )
        return self._finalized

    def statistics(self) -> dict:
        """All engine statistics in one dictionary (reports, experiments)."""
        filter_stats = self.branch_filter.stats
        monitor_stats = self.loop_monitor.stats
        hash_stats = self.hash_engine.stats
        total_events = filter_stats.control_flow_instructions
        hashed = hash_stats.pairs_absorbed
        return {
            "control_flow_events": total_events,
            "pairs_hashed": hashed,
            "pairs_compressed": monitor_stats.pairs_compressed,
            "compression_ratio": (
                hashed / total_events if total_events else 1.0
            ),
            "internal_latency_cycles": self.branch_filter.internal_latency_cycles,
            "processor_stall_cycles": 0,  # by construction: parallel observation
            "filter": filter_stats.as_dict(),
            "loops": monitor_stats.as_dict(),
            "hash_engine": hash_stats.as_dict(),
        }


def attest_execution(
    program,
    inputs: Optional[List[int]] = None,
    config: Optional[LoFatConfig] = None,
    cpu_config=None,
    pre_hooks=None,
    collect_trace: Optional[bool] = None,
):
    """Run ``program`` with LO-FAT attached; return (ExecutionResult, measurement).

    This is the one-call convenience API used by the examples and the
    verifier's golden replay: it builds a CPU, attaches a fresh
    :class:`LoFatEngine`, runs the program and finalizes the measurement.

    ``collect_trace=False`` streams the retired-instruction records straight
    into the engine without accumulating them on the result -- the engine
    consumes each record as it retires, so the measurement is identical while
    memory stays O(1) in the execution length.  The returned result then
    carries only trace summary statistics.
    """
    from dataclasses import replace

    from repro.cpu.core import Cpu, CpuConfig

    if collect_trace is not None:
        base = cpu_config or CpuConfig()
        cpu_config = replace(base, collect_trace=collect_trace)
    cpu = Cpu(program, inputs=inputs, config=cpu_config)
    engine = LoFatEngine(config)
    cpu.attach_monitor(engine.observe)
    for hook in pre_hooks or []:
        cpu.add_pre_instruction_hook(hook)
    result = cpu.run()
    measurement = engine.finalize()
    return result, measurement
