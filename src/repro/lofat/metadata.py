"""Auxiliary loop metadata ``L`` and its generator.

"Upon loop exit, the loop monitor requests the metadata generator to assemble
the loop auxiliary metadata based on the loops memory - this consists of the
unique loop path encodings, their number of iterations, and indirect branch
targets." (paper §4)

The metadata gives the verifier fine-grained insight into loop execution and
is what lets a single hash cover a run whose loops may iterate arbitrarily
often: the verifier reconstructs the hashed pair stream from the CFG, the
metadata and the program input.  ``L`` is serialised deterministically so it
can be covered by the attestation signature and so its size can be reported
(the paper notes the metadata length depends on the number of loops, paths per
loop and indirect targets, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.lofat.path_encoder import PathEncoding


def _take(blob: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    """Read ``count`` bytes or raise :class:`ValueError` on truncation."""
    block = blob[offset:offset + count]
    if len(block) != count:
        raise ValueError("truncated loop metadata")
    return block, offset + count


@dataclass(frozen=True)
class PathRecord:
    """One distinct path of one loop execution.

    Attributes:
        encoding: the path encoding (bits, indirect codes, truncation flag).
        iterations: how many times this exact path was executed.
        first_seen_index: position in order of first occurrence (0-based).
    """

    encoding: PathEncoding
    iterations: int
    first_seen_index: int

    def to_bytes(self) -> bytes:
        return (
            self.encoding.to_bytes()
            + self.iterations.to_bytes(4, "little")
            + self.first_seen_index.to_bytes(2, "little")
        )

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["PathRecord", int]:
        """Parse one record from ``blob`` at ``offset``; inverse of
        :meth:`to_bytes`, returning (record, next offset).  Raises
        :class:`ValueError` on truncated input."""
        encoding, offset = PathEncoding.read_from(blob, offset)
        block, offset = _take(blob, offset, 6)
        iterations = int.from_bytes(block[0:4], "little")
        first_seen = int.from_bytes(block[4:6], "little")
        return cls(encoding=encoding, iterations=iterations,
                   first_seen_index=first_seen), offset


@dataclass
class LoopRecord:
    """Metadata for one dynamic loop execution (entry to exit).

    Attributes:
        entry: address of the loop entry node (target of the back edge).
        exit_node: address of the loop exit node (block after the back edge).
        depth: nesting depth at which the loop executed (1 = outermost).
        iterations: total number of completed iterations (all paths).
        paths: distinct paths in order of first occurrence.
        indirect_targets: full 32-bit indirect-branch targets encountered in
            the loop, ordered by their assigned CAM code (code 1 first).
        exit_sequence: order in which this loop exited relative to other loops
            in the same run (0-based); gives the verifier the loop ordering.
    """

    entry: int
    exit_node: int
    depth: int
    iterations: int
    paths: List[PathRecord] = field(default_factory=list)
    indirect_targets: List[int] = field(default_factory=list)
    exit_sequence: int = 0

    @property
    def distinct_paths(self) -> int:
        """Number of distinct paths observed in this loop execution."""
        return len(self.paths)

    def to_bytes(self) -> bytes:
        blob = (
            self.entry.to_bytes(4, "little")
            + self.exit_node.to_bytes(4, "little")
            + self.depth.to_bytes(1, "little")
            + self.iterations.to_bytes(4, "little")
            + self.exit_sequence.to_bytes(2, "little")
            + len(self.paths).to_bytes(2, "little")
        )
        for path in self.paths:
            blob += path.to_bytes()
        blob += len(self.indirect_targets).to_bytes(1, "little")
        for target in self.indirect_targets:
            blob += (target & 0xFFFFFFFF).to_bytes(4, "little")
        return blob

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["LoopRecord", int]:
        """Parse one loop record from ``blob`` at ``offset``; inverse of
        :meth:`to_bytes`, returning (record, next offset).  Raises
        :class:`ValueError` on truncated input."""
        header, offset = _take(blob, offset, 17)
        entry = int.from_bytes(header[0:4], "little")
        exit_node = int.from_bytes(header[4:8], "little")
        depth = header[8]
        iterations = int.from_bytes(header[9:13], "little")
        exit_sequence = int.from_bytes(header[13:15], "little")
        path_count = int.from_bytes(header[15:17], "little")
        paths = []
        for _ in range(path_count):
            path, offset = PathRecord.read_from(blob, offset)
            paths.append(path)
        count_byte, offset = _take(blob, offset, 1)
        target_block, offset = _take(blob, offset, 4 * count_byte[0])
        targets = [
            int.from_bytes(target_block[4 * i:4 * i + 4], "little")
            for i in range(count_byte[0])
        ]
        return cls(entry=entry, exit_node=exit_node, depth=depth,
                   iterations=iterations, paths=paths,
                   indirect_targets=targets,
                   exit_sequence=exit_sequence), offset


@dataclass
class LoopMetadata:
    """The complete auxiliary metadata ``L`` of one attested execution."""

    loops: List[LoopRecord] = field(default_factory=list)

    def add(self, record: LoopRecord) -> None:
        record.exit_sequence = len(self.loops)
        self.loops.append(record)

    def to_bytes(self) -> bytes:
        """Deterministic serialisation (covered by the attestation signature)."""
        blob = len(self.loops).to_bytes(2, "little")
        for record in self.loops:
            blob += record.to_bytes()
        return blob

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["LoopMetadata", int]:
        """Parse the metadata at ``offset``; returns (metadata, next offset).
        Raises :class:`ValueError` on truncated input."""
        block, offset = _take(blob, offset, 2)
        count = int.from_bytes(block, "little")
        loops = []
        for _ in range(count):
            record, offset = LoopRecord.read_from(blob, offset)
            loops.append(record)
        return cls(loops=loops), offset

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LoopMetadata":
        """Deserialise ``L`` (inverse of :meth:`to_bytes`)."""
        metadata, offset = cls.read_from(blob, 0)
        if offset != len(blob):
            raise ValueError("trailing bytes after loop metadata")
        return metadata

    @property
    def size_bytes(self) -> int:
        """Length of the serialised metadata in bytes (reported in E7)."""
        return len(self.to_bytes())

    @property
    def total_iterations(self) -> int:
        """Total loop iterations across all loop executions."""
        return sum(record.iterations for record in self.loops)

    @property
    def total_distinct_paths(self) -> int:
        """Total distinct loop paths across all loop executions."""
        return sum(record.distinct_paths for record in self.loops)

    def loops_at_entry(self, entry: int) -> List[LoopRecord]:
        """All dynamic executions of the loop whose entry node is ``entry``."""
        return [record for record in self.loops if record.entry == entry]

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)

    def summary(self) -> dict:
        """Statistics used in reports and experiment output."""
        return {
            "loop_executions": len(self.loops),
            "total_iterations": self.total_iterations,
            "total_distinct_paths": self.total_distinct_paths,
            "size_bytes": self.size_bytes,
            "max_depth": max((r.depth for r in self.loops), default=0),
        }


class MetadataGenerator:
    """Assembles :class:`LoopMetadata` from loop-exit reports.

    In hardware this is the "metadata generator" block fed by the loop monitor
    via the ``loop_end ctrl`` signals; here it simply collects
    :class:`LoopRecord` objects in loop-exit order.
    """

    def __init__(self) -> None:
        self.metadata = LoopMetadata()

    def on_loop_exit(self, record: LoopRecord) -> None:
        """Store the metadata of a finished loop execution."""
        self.metadata.add(record)

    def finalize(self) -> LoopMetadata:
        """Return the assembled metadata."""
        return self.metadata
