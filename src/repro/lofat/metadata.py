"""Auxiliary loop metadata ``L`` and its generator.

"Upon loop exit, the loop monitor requests the metadata generator to assemble
the loop auxiliary metadata based on the loops memory - this consists of the
unique loop path encodings, their number of iterations, and indirect branch
targets." (paper §4)

The metadata gives the verifier fine-grained insight into loop execution and
is what lets a single hash cover a run whose loops may iterate arbitrarily
often: the verifier reconstructs the hashed pair stream from the CFG, the
metadata and the program input.  ``L`` is serialised deterministically so it
can be covered by the attestation signature and so its size can be reported
(the paper notes the metadata length depends on the number of loops, paths per
loop and indirect targets, §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.lofat.path_encoder import PathEncoding


def _take(blob: bytes, offset: int, count: int) -> Tuple[bytes, int]:
    """Read ``count`` bytes or raise :class:`ValueError` on truncation."""
    block = blob[offset:offset + count]
    if len(block) != count:
        raise ValueError("truncated loop metadata")
    return block, offset + count


@dataclass(frozen=True)
class PathRecord:
    """One distinct path of one loop execution.

    Attributes:
        encoding: the path encoding (bits, indirect codes, truncation flag).
        iterations: how many times this exact path was executed.
        first_seen_index: position in order of first occurrence (0-based).
    """

    encoding: PathEncoding
    iterations: int
    first_seen_index: int

    def to_bytes(self) -> bytes:
        return (
            self.encoding.to_bytes()
            + self.iterations.to_bytes(4, "little")
            + self.first_seen_index.to_bytes(2, "little")
        )

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["PathRecord", int]:
        """Parse one record from ``blob`` at ``offset``; inverse of
        :meth:`to_bytes`, returning (record, next offset).  Raises
        :class:`ValueError` on truncated input."""
        encoding, offset = PathEncoding.read_from(blob, offset)
        block, offset = _take(blob, offset, 6)
        iterations = int.from_bytes(block[0:4], "little")
        first_seen = int.from_bytes(block[4:6], "little")
        return cls(encoding=encoding, iterations=iterations,
                   first_seen_index=first_seen), offset


@dataclass
class LoopRecord:
    """Metadata for one dynamic loop execution (entry to exit).

    Attributes:
        entry: address of the loop entry node (target of the back edge).
        exit_node: address of the loop exit node (block after the back edge).
        depth: nesting depth at which the loop executed (1 = outermost).
        iterations: total number of completed iterations (all paths).
        paths: distinct paths in order of first occurrence.
        indirect_targets: full 32-bit indirect-branch targets encountered in
            the loop, ordered by their assigned CAM code (code 1 first).
        exit_sequence: order in which this loop exited relative to other loops
            in the same run (0-based); gives the verifier the loop ordering.
    """

    entry: int
    exit_node: int
    depth: int
    iterations: int
    paths: List[PathRecord] = field(default_factory=list)
    indirect_targets: List[int] = field(default_factory=list)
    exit_sequence: int = 0

    @property
    def distinct_paths(self) -> int:
        """Number of distinct paths observed in this loop execution."""
        return len(self.paths)

    def to_bytes(self) -> bytes:
        blob = (
            self.entry.to_bytes(4, "little")
            + self.exit_node.to_bytes(4, "little")
            + self.depth.to_bytes(1, "little")
            + self.iterations.to_bytes(4, "little")
            + self.exit_sequence.to_bytes(2, "little")
            + len(self.paths).to_bytes(2, "little")
        )
        for path in self.paths:
            blob += path.to_bytes()
        blob += len(self.indirect_targets).to_bytes(1, "little")
        for target in self.indirect_targets:
            blob += (target & 0xFFFFFFFF).to_bytes(4, "little")
        return blob

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["LoopRecord", int]:
        """Parse one loop record from ``blob`` at ``offset``; inverse of
        :meth:`to_bytes`, returning (record, next offset).  Raises
        :class:`ValueError` on truncated input."""
        header, offset = _take(blob, offset, 17)
        entry = int.from_bytes(header[0:4], "little")
        exit_node = int.from_bytes(header[4:8], "little")
        depth = header[8]
        iterations = int.from_bytes(header[9:13], "little")
        exit_sequence = int.from_bytes(header[13:15], "little")
        path_count = int.from_bytes(header[15:17], "little")
        paths = []
        for _ in range(path_count):
            path, offset = PathRecord.read_from(blob, offset)
            paths.append(path)
        count_byte, offset = _take(blob, offset, 1)
        target_block, offset = _take(blob, offset, 4 * count_byte[0])
        targets = [
            int.from_bytes(target_block[4 * i:4 * i + 4], "little")
            for i in range(count_byte[0])
        ]
        return cls(entry=entry, exit_node=exit_node, depth=depth,
                   iterations=iterations, paths=paths,
                   indirect_targets=targets,
                   exit_sequence=exit_sequence), offset


@dataclass
class LoopMetadata:
    """The complete auxiliary metadata ``L`` of one attested execution."""

    loops: List[LoopRecord] = field(default_factory=list)

    def add(self, record: LoopRecord) -> None:
        record.exit_sequence = len(self.loops)
        self.loops.append(record)

    def to_bytes(self) -> bytes:
        """Deterministic serialisation (covered by the attestation signature)."""
        blob = len(self.loops).to_bytes(2, "little")
        for record in self.loops:
            blob += record.to_bytes()
        return blob

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["LoopMetadata", int]:
        """Parse the metadata at ``offset``; returns (metadata, next offset).
        Raises :class:`ValueError` on truncated input."""
        block, offset = _take(blob, offset, 2)
        count = int.from_bytes(block, "little")
        loops = []
        for _ in range(count):
            record, offset = LoopRecord.read_from(blob, offset)
            loops.append(record)
        return cls(loops=loops), offset

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LoopMetadata":
        """Deserialise ``L`` (inverse of :meth:`to_bytes`)."""
        metadata, offset = cls.read_from(blob, 0)
        if offset != len(blob):
            raise ValueError("trailing bytes after loop metadata")
        return metadata

    @property
    def size_bytes(self) -> int:
        """Length of the serialised metadata in bytes (reported in E7)."""
        return len(self.to_bytes())

    @property
    def total_iterations(self) -> int:
        """Total loop iterations across all loop executions."""
        return sum(record.iterations for record in self.loops)

    @property
    def total_distinct_paths(self) -> int:
        """Total distinct loop paths across all loop executions."""
        return sum(record.distinct_paths for record in self.loops)

    def loops_at_entry(self, entry: int) -> List[LoopRecord]:
        """All dynamic executions of the loop whose entry node is ``entry``."""
        return [record for record in self.loops if record.entry == entry]

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)

    def summary(self) -> dict:
        """Statistics used in reports and experiment output."""
        return {
            "loop_executions": len(self.loops),
            "total_iterations": self.total_iterations,
            "total_distinct_paths": self.total_distinct_paths,
            "size_bytes": self.size_bytes,
            "max_depth": max((r.depth for r in self.loops), default=0),
        }


def scan_loop_metadata(blob: bytes) -> None:
    """Validate the framing of a serialised ``L`` without building objects.

    Walks exactly the offsets :meth:`LoopMetadata.from_bytes` would and
    raises the same :class:`ValueError` on truncation or trailing bytes --
    but performs no object construction, which makes it an order of
    magnitude cheaper than a full parse.  Wire consumers that mostly need
    the *bytes* of ``L`` (signature payloads, byte comparison against a
    reference) validate with this scan and defer the full parse
    (:class:`LazyLoopMetadata`).
    """
    length = len(blob)

    def need(offset: int, count: int) -> int:
        end = offset + count
        if end > length:
            raise ValueError("truncated loop metadata")
        return end

    offset = need(0, 2)
    loop_count = int.from_bytes(blob[0:2], "little")
    for _ in range(loop_count):
        header_end = need(offset, 17)
        path_count = int.from_bytes(blob[header_end - 2:header_end], "little")
        offset = header_end
        for _ in range(path_count):
            # PathEncoding: width(2) + payload + code_count(1) + codes +
            # truncated(1), then PathRecord's iterations(4) + first_seen(2).
            offset = need(offset, 2)
            width = int.from_bytes(blob[offset - 2:offset], "little")
            offset = need(offset, (width + 7) // 8 or 1)
            offset = need(offset, 1)
            code_count = blob[offset - 1]
            offset = need(offset, code_count + 1 + 6)
        offset = need(offset, 1)
        target_count = blob[offset - 1]
        offset = need(offset, 4 * target_count)
    if offset != length:
        raise ValueError("trailing bytes after loop metadata")


#: Blobs that already passed :func:`scan_loop_metadata`, so re-validating a
#: repeated ``L`` is one set lookup instead of an offset walk.  A standing
#: verifier sees the same benign metadata on every report of a workload;
#: bounded and cleared wholesale under a flood of distinct blobs.
_SCANNED_BLOBS: set = set()
_SCANNED_BLOBS_MAX = 4096


class LazyLoopMetadata(LoopMetadata):
    """``L`` validated eagerly, parsed into records only on first access.

    Deserialising a report re-built ``L``'s whole object graph even though
    the verifier's accept path needs only the serialised bytes (the
    signature payload and the byte comparison against the reference) -- the
    parse dominated the attestation server's per-report cost.  This variant
    keeps the raw bytes, validates their framing up front (so malformed
    metadata still raises ``ValueError`` at deserialisation time, the wire
    format's contract) and builds the records the first time something
    iterates them.

    Mutating (:meth:`add`) materialises the records and drops the cached
    serialisation, so ``to_bytes`` can never return stale bytes.
    """

    def __init__(self, blob: bytes) -> None:
        blob = bytes(blob)
        if blob not in _SCANNED_BLOBS:
            scan_loop_metadata(blob)
            if len(_SCANNED_BLOBS) >= _SCANNED_BLOBS_MAX:
                _SCANNED_BLOBS.clear()
            _SCANNED_BLOBS.add(blob)
        self._blob: Optional[bytes] = blob
        self._records: Optional[List[LoopRecord]] = None

    @property
    def loops(self) -> List[LoopRecord]:
        if self._records is None:
            self._records = LoopMetadata.from_bytes(self._blob).loops
        return self._records

    def add(self, record: LoopRecord) -> None:
        super().add(record)
        self._blob = None

    def to_bytes(self) -> bytes:
        if self._blob is not None:
            return self._blob
        return super().to_bytes()


class MetadataGenerator:
    """Assembles :class:`LoopMetadata` from loop-exit reports.

    In hardware this is the "metadata generator" block fed by the loop monitor
    via the ``loop_end ctrl`` signals; here it simply collects
    :class:`LoopRecord` objects in loop-exit order.
    """

    def __init__(self) -> None:
        self.metadata = LoopMetadata()

    def on_loop_exit(self, record: LoopRecord) -> None:
        """Store the metadata of a finished loop execution."""
        self.metadata.add(record)

    def finalize(self) -> LoopMetadata:
        """Return the assembled metadata."""
        return self.metadata
