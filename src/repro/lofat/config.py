"""Configuration of the LO-FAT hardware model.

The paper stresses that LO-FAT "allows configuring the granularity of the
control-flow tracking according to the availability of memory resources"
(§5.1, §5.2).  :class:`LoFatConfig` collects every such knob together with the
timing parameters reported in the evaluation, and derives the memory sizing
formulas of §5.2 so that the area model and the ablation experiment (E8) can
sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LoFatConfig:
    """All configuration parameters of the LO-FAT engine.

    The defaults reproduce the configuration of the paper's prototype:
    ``n = 4`` bits per indirect-branch target (up to 15 distinct targets per
    loop plus the all-zero overflow code), ``l = 16`` branches per loop path,
    nesting depth 3, an 8-bit iteration counter per path, a SHA-3 512 engine
    with a 576-bit rate absorbing one 64-bit (Src, Dest) pair per cycle.
    """

    # ------------------------------------------------------------ tracking
    #: Number of bits used to re-encode each indirect-branch target (paper: n).
    indirect_target_bits: int = 4
    #: Maximum number of branches tracked per loop path (paper: l).
    max_branches_per_path: int = 16
    #: Maximum depth of simultaneously tracked nested loops.
    max_nested_loops: int = 3
    #: Maximum number of indirect branches allowed per loop path (the §6.2
    #: prototype configures 4, consuming 10 of the 16 path-ID bits).
    max_indirect_branches_per_path: int = 4
    #: Width in bits of each per-path iteration counter.
    counter_width_bits: int = 8

    # -------------------------------------------------------------- timing
    #: Internal latency for branch instruction / loop status tracking (cycles).
    branch_tracking_latency: int = 2
    #: Internal latency at loop exit for path-ID generation + counter memory
    #: access and update (cycles).
    loop_exit_latency: int = 5
    #: LO-FAT / Pulpino operating clock in MHz (synthesis result, §6.1).
    clock_mhz: float = 80.0
    #: Stand-alone maximum clock of the SHA-3 engine in MHz (§5.3).
    hash_engine_max_clock_mhz: float = 150.0

    # --------------------------------------------------------- hash engine
    #: SHA-3 rate in bits (512-bit digest => 576-bit rate).
    hash_rate_bits: int = 576
    #: Width of one absorbed (Src, Dest) input word in bits.
    hash_input_width_bits: int = 64
    #: Cycles during which the padding buffer cannot absorb new input after
    #: filling a full rate block (§5.3).
    hash_pad_stall_cycles: int = 3
    #: Depth (in 64-bit entries) of the small cache buffer in front of the
    #: hash engine that prevents dropping pairs during pad stalls.
    hash_input_buffer_depth: int = 8
    #: Cycles for one Keccak-f permutation (overlapped with absorption in the
    #: open-source core; only used for end-of-message latency accounting).
    hash_permutation_cycles: int = 24

    # ------------------------------------------------------------ derived
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check parameter consistency; raise :class:`ValueError` otherwise."""
        if self.indirect_target_bits < 1:
            raise ValueError("indirect_target_bits must be >= 1")
        if self.max_branches_per_path < 1:
            raise ValueError("max_branches_per_path must be >= 1")
        if self.max_nested_loops < 0:
            raise ValueError("max_nested_loops must be >= 0")
        if self.counter_width_bits < 1:
            raise ValueError("counter_width_bits must be >= 1")
        if self.hash_rate_bits % self.hash_input_width_bits != 0:
            raise ValueError("hash rate must be a multiple of the input width")
        if (self.max_indirect_branches_per_path * self.indirect_target_bits
                > self.path_id_bits):
            raise ValueError(
                "indirect-branch encodings (%d x %d bits) do not fit in the "
                "%d-bit path ID"
                % (
                    self.max_indirect_branches_per_path,
                    self.indirect_target_bits,
                    self.path_id_bits,
                )
            )

    # -- §5.2 sizing formulas -------------------------------------------------
    @property
    def path_id_bits(self) -> int:
        """Width of the loop path ID in bits (paper: l)."""
        return self.max_branches_per_path

    @property
    def max_indirect_targets_per_loop(self) -> int:
        """Distinct indirect targets representable per loop (2^n - 1).

        The all-zero code is reserved for targets beyond the configured limit
        (paper §5.2).
        """
        return (1 << self.indirect_target_bits) - 1

    @property
    def loop_memory_bits(self) -> int:
        """On-chip bits for one loop's path-indexed counter memory.

        The paper states "tracking l branches per path in a loop requires
        8 x 2^l bits memory" (§5.2); the 8 is the per-path counter width.
        """
        return self.counter_width_bits * (1 << self.path_id_bits)

    @property
    def total_loop_memory_bits(self) -> int:
        """Loop counter memory across all simultaneously tracked loops."""
        return self.loop_memory_bits * self.max_nested_loops

    @property
    def max_conditional_branches_per_path(self) -> int:
        """Conditional branches representable per path given indirect usage.

        "Every additional indirect branch tracked reduces the maximum number
        of possible conditional branches by n" (§5.2).
        """
        return self.path_id_bits - (
            self.max_indirect_branches_per_path * self.indirect_target_bits
        )

    @property
    def absorbs_per_block(self) -> int:
        """Input words absorbed before the rate block is full (576/64 = 9)."""
        return self.hash_rate_bits // self.hash_input_width_bits

    def describe(self) -> dict:
        """Dictionary view of the configuration (used in reports)."""
        return {
            "indirect_target_bits": self.indirect_target_bits,
            "max_branches_per_path": self.max_branches_per_path,
            "max_nested_loops": self.max_nested_loops,
            "max_indirect_branches_per_path": self.max_indirect_branches_per_path,
            "counter_width_bits": self.counter_width_bits,
            "loop_memory_bits": self.loop_memory_bits,
            "total_loop_memory_bits": self.total_loop_memory_bits,
            "branch_tracking_latency": self.branch_tracking_latency,
            "loop_exit_latency": self.loop_exit_latency,
            "clock_mhz": self.clock_mhz,
        }
