"""Indirect-branch target re-encoding CAM.

Indirect branches can target arbitrary 32-bit addresses, which cannot be
folded into a compact loop path ID directly.  LO-FAT therefore "re-encodes the
addresses using a smaller number of n bits, allowing a maximum number of
2^n - 1 possible targets for each loop.  Target addresses are encoded at
run-time and stored in a register file, which is implemented as 2 interleaved
CAMs to ensure low-latency constant-time access.  When a target address is
encountered that exceeds the configured limit, we report this in the encoding
to the verifier by an all-zero code." (paper §5.2)

:class:`TargetCam` models exactly that structure: a per-loop associative table
mapping full target addresses to small codes, with code 0 reserved for
overflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: The reserved all-zero code reported when the CAM is out of entries.
OVERFLOW_CODE = 0


@dataclass
class CamStats:
    """Lookup statistics (used by the ablation experiment E8)."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    overflows: int = 0

    @property
    def overflow_rate(self) -> float:
        """Fraction of lookups that had to fall back to the all-zero code."""
        if self.lookups == 0:
            return 0.0
        return self.overflows / self.lookups


class TargetCam:
    """A small content-addressable memory assigning n-bit codes to targets.

    Codes are assigned in order of first occurrence starting at 1; code 0 is
    the overflow indicator.  The capacity is ``2**n - 1`` entries, as in the
    paper.  The table is per-loop and cleared when its loop exits (the
    hardware re-uses the memory for subsequent loop executions).
    """

    def __init__(self, code_bits: int) -> None:
        if code_bits < 1:
            raise ValueError("code_bits must be >= 1")
        self.code_bits = code_bits
        self.capacity = (1 << code_bits) - 1
        self._codes: Dict[int, int] = {}
        self.stats = CamStats()

    def encode(self, target: int) -> int:
        """Return the n-bit code for ``target``, inserting it if there is room.

        Returns :data:`OVERFLOW_CODE` when the CAM is full and the target has
        not been seen before.
        """
        self.stats.lookups += 1
        code = self._codes.get(target)
        if code is not None:
            self.stats.hits += 1
            return code
        if len(self._codes) >= self.capacity:
            self.stats.overflows += 1
            return OVERFLOW_CODE
        code = len(self._codes) + 1
        self._codes[target] = code
        self.stats.inserts += 1
        return code

    def lookup(self, target: int) -> Optional[int]:
        """Return the code for ``target`` without inserting (None if absent)."""
        return self._codes.get(target)

    def targets_in_order(self) -> List[int]:
        """All stored targets, ordered by their assigned code."""
        return [t for t, _ in sorted(self._codes.items(), key=lambda item: item[1])]

    def clear(self) -> None:
        """Reset the table (loop exit / memory re-use)."""
        self._codes.clear()

    @property
    def occupancy(self) -> int:
        """Number of stored targets."""
        return len(self._codes)

    @property
    def is_full(self) -> bool:
        """True when no further target can be assigned a distinct code."""
        return len(self._codes) >= self.capacity

    def __len__(self) -> int:
        return len(self._codes)
