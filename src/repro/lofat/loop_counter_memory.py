"""Path-ID-indexed loop iteration counter memory.

"Once a loop path is completed, this unique path ID is used to index loop
counter memory, in which the number of iterations for each corresponding path
is saved.  A counter value of zero indicates the first time a particular path
is executed." (paper §5.1)

The hardware implements one such memory per simultaneously-tracked loop level
as block RAM with single-cycle access; functionally it is a mapping from path
encodings to saturating counters, which is what this class provides, plus the
occupancy statistics the area experiments report (the memory is "sparsely
utilized", §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lofat.config import LoFatConfig
from repro.lofat.path_encoder import PathEncoding


class LoopCounterMemory:
    """Per-loop path-indexed iteration counters with first-seen ordering."""

    def __init__(self, config: Optional[LoFatConfig] = None) -> None:
        self.config = config or LoFatConfig()
        self._counters: Dict[str, int] = {}
        self._first_seen_order: List[str] = []
        self._max_counter = (1 << self.config.counter_width_bits) - 1
        self.saturations = 0

    def record_path(self, encoding: PathEncoding) -> bool:
        """Record one completed traversal of ``encoding``.

        Returns True when this is the first time the path is observed (the
        hardware raises ``new_path ctrl`` towards the hash engine controller
        in that case).
        """
        key = encoding.bits
        count = self._counters.get(key)
        if count is None:
            self._counters[key] = 1
            self._first_seen_order.append(key)
            return True
        if count >= self._max_counter:
            # Counter saturation: the hardware would report the saturated
            # value; we count occurrences so the experiments can show how
            # often the configured width is insufficient.
            self.saturations += 1
            self._counters[key] = self._max_counter
        else:
            self._counters[key] = count + 1
        return False

    def count_for(self, encoding_bits: str) -> int:
        """Iteration count stored for a path (0 if never seen)."""
        return self._counters.get(encoding_bits, 0)

    def paths_in_first_seen_order(self) -> List[Tuple[str, int]]:
        """(encoding bits, count) pairs in order of first occurrence."""
        return [(bits, self._counters[bits]) for bits in self._first_seen_order]

    @property
    def distinct_paths(self) -> int:
        """Number of distinct paths recorded."""
        return len(self._counters)

    @property
    def total_iterations(self) -> int:
        """Sum of all recorded iteration counts."""
        return sum(self._counters.values())

    @property
    def capacity(self) -> int:
        """Number of addressable path slots (2^l)."""
        return 1 << self.config.path_id_bits

    @property
    def utilization(self) -> float:
        """Fraction of the path-indexed memory actually used."""
        return self.distinct_paths / self.capacity

    def clear(self) -> None:
        """Reset the memory (loop exit / re-use for the next loop execution)."""
        self._counters.clear()
        self._first_seen_order.clear()
        self.saturations = 0
