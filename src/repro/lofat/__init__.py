"""LO-FAT: the paper's primary contribution, modelled at cycle/transaction level.

The package mirrors the hardware decomposition of Figure 3 in the paper:

* :mod:`repro.lofat.config` -- the configuration knobs the paper exposes
  (indirect-target encoding width ``n``, branches per loop path ``l``,
  nesting depth, buffer sizes, clock frequencies).
* :mod:`repro.lofat.branch_filter` -- extracts control-flow instructions from
  the retired-instruction stream and detects loop entry/exit with the
  non-linking-backward-branch heuristic (paper §5.1).
* :mod:`repro.lofat.loop_monitor` -- tracks (nested) loops, encodes loop
  paths, maintains per-path iteration counters, and triggers hashing of newly
  observed paths only (paper §5.1/§5.2).
* :mod:`repro.lofat.path_encoder` -- unique loop path encodings built from
  branch outcomes and re-encoded indirect targets (Figure 4).
* :mod:`repro.lofat.target_cam` -- the small content-addressable memory that
  re-encodes 32-bit indirect targets into ``n``-bit codes.
* :mod:`repro.lofat.loop_counter_memory` -- the path-ID-indexed on-chip
  iteration counter memory.
* :mod:`repro.lofat.hash_engine` -- SHA-3 512 measurement plus the cycle model
  of the absorb pipeline and its input cache buffer (paper §5.3).
* :mod:`repro.lofat.metadata` -- the auxiliary loop metadata ``L``.
* :mod:`repro.lofat.engine` -- the top-level engine wiring all components and
  attaching to the CPU as a retired-instruction monitor.
* :mod:`repro.lofat.area_model` -- the analytical FPGA resource model used to
  reproduce the paper's area evaluation (§6.2).
"""

from repro.lofat.config import LoFatConfig
from repro.lofat.hash_engine import HashEngine, HashEngineStats
from repro.lofat.target_cam import TargetCam
from repro.lofat.path_encoder import LoopPathEncoder, PathEncoding
from repro.lofat.loop_counter_memory import LoopCounterMemory
from repro.lofat.branch_filter import BranchFilter, FilterEvent, FilterEventKind
from repro.lofat.loop_monitor import LoopMonitor
from repro.lofat.metadata import LoopMetadata, LoopRecord, PathRecord
from repro.lofat.engine import AttestationMeasurement, LoFatEngine
from repro.lofat.area_model import AreaEstimate, AreaModel, FpgaDevice, VIRTEX7_XC7Z020

__all__ = [
    "LoFatConfig",
    "HashEngine",
    "HashEngineStats",
    "TargetCam",
    "LoopPathEncoder",
    "PathEncoding",
    "LoopCounterMemory",
    "BranchFilter",
    "FilterEvent",
    "FilterEventKind",
    "LoopMonitor",
    "LoopMetadata",
    "LoopRecord",
    "PathRecord",
    "AttestationMeasurement",
    "LoFatEngine",
    "AreaEstimate",
    "AreaModel",
    "FpgaDevice",
    "VIRTEX7_XC7Z020",
]
