"""Loop path encoding (paper §5.1/§5.2, Figure 4).

Within a loop, LO-FAT does not hash every iteration.  Instead each *path*
through the loop body is given a compact unique encoding built, in execution
order, from:

* one bit per conditional branch: ``1`` if taken, ``0`` if not taken,
* one ``1`` bit per direct (unconditional) jump,
* an ``n``-bit code per indirect branch target, assigned by the per-loop
  :class:`repro.lofat.target_cam.TargetCam` (code 0 = "more targets than the
  configured limit").

For the example of Figure 4, the dashed path N2 -> N3 -> N5 -> N6 -> N2 is
encoded as ``011`` and the bold path N2 -> N3 -> N4 -> N6 -> N2 as ``0011``.
The experiment E4 reproduces exactly those strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lofat.config import LoFatConfig
from repro.lofat.target_cam import TargetCam


@dataclass(frozen=True)
class PathEncoding:
    """The finished encoding of one loop path.

    Attributes:
        bits: the encoding bit string in event order (first event leftmost).
        indirect_codes: the n-bit codes appended for indirect branches, in
            order of occurrence (also contained in ``bits``).
        branch_count: number of control-flow events folded into the encoding.
        truncated: True if the path had more branches than the configured
            maximum ``l`` and the tail was not encoded.
    """

    bits: str
    indirect_codes: Tuple[int, ...] = ()
    branch_count: int = 0
    truncated: bool = False

    @property
    def path_id(self) -> int:
        """Integer path ID (a leading 1 sentinel keeps e.g. '011' != '0011')."""
        return int("1" + self.bits, 2) if self.bits else 1

    @property
    def width(self) -> int:
        """Number of bits in the encoding."""
        return len(self.bits)

    def to_bytes(self) -> bytes:
        """Serialize for inclusion in the loop metadata L."""
        width = self.width
        payload = int(self.bits, 2) if self.bits else 0
        return (
            width.to_bytes(2, "little")
            + payload.to_bytes((width + 7) // 8 or 1, "little")
            + len(self.indirect_codes).to_bytes(1, "little")
            + bytes(code & 0xFF for code in self.indirect_codes)
            + (b"\x01" if self.truncated else b"\x00")
        )

    @classmethod
    def read_from(cls, blob: bytes, offset: int = 0) -> Tuple["PathEncoding", int]:
        """Parse one encoding from ``blob`` at ``offset``; return (encoding,
        next offset).  Inverse of :meth:`to_bytes` for the serialised fields;
        ``branch_count`` is not on the wire, so it reconstructs as the bit
        width (re-serialisation stays byte-exact either way).  Raises
        :class:`ValueError` on truncated input."""
        def take(count):
            nonlocal offset
            block = blob[offset:offset + count]
            if len(block) != count:
                raise ValueError("truncated path encoding")
            offset += count
            return block

        width = int.from_bytes(take(2), "little")
        payload = int.from_bytes(take((width + 7) // 8 or 1), "little")
        bits = format(payload, "0%db" % width) if width else ""
        code_count = take(1)[0]
        codes = tuple(take(code_count))
        truncated = take(1)[0] != 0
        return cls(
            bits=bits,
            indirect_codes=codes,
            branch_count=len(bits),
            truncated=truncated,
        ), offset

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PathEncoding":
        """Deserialize one encoding (inverse of :meth:`to_bytes`)."""
        encoding, offset = cls.read_from(blob, 0)
        if offset != len(blob):
            raise ValueError("trailing bytes after path encoding")
        return encoding

    def __str__(self) -> str:
        suffix = " (truncated)" if self.truncated else ""
        return self.bits + suffix


class LoopPathEncoder:
    """Accumulates the encoding of the currently executing loop path.

    One encoder instance exists per *active* loop (the loop monitor owns
    them).  The encoder also owns the loop's indirect-target CAM, because the
    target codes are local to a loop in the paper's design.
    """

    def __init__(self, config: Optional[LoFatConfig] = None) -> None:
        self.config = config or LoFatConfig()
        self.cam = TargetCam(self.config.indirect_target_bits)
        self._bits: List[str] = []
        self._indirect_codes: List[int] = []
        self._branch_count = 0
        self._truncated = False

    # ------------------------------------------------------------- events
    def on_conditional(self, taken: bool) -> None:
        """Record a conditional branch outcome (1 = taken, 0 = not taken)."""
        self._append("1" if taken else "0")

    def on_direct_jump(self) -> None:
        """Record a direct unconditional jump (always encoded as 1)."""
        self._append("1")

    def on_indirect(self, target: int) -> int:
        """Record an indirect branch to ``target``; returns the assigned code."""
        code = self.cam.encode(target)
        width = self.config.indirect_target_bits
        self._append(format(code, "0%db" % width))
        self._indirect_codes.append(code)
        return code

    def _append(self, bits: str) -> None:
        self._branch_count += 1
        if self._encoded_width() + len(bits) > self.config.max_branches_per_path:
            # Path longer than the configured granularity: the hardware stops
            # refining the encoding; the verifier sees the truncation flag.
            self._truncated = True
            return
        self._bits.append(bits)

    def _encoded_width(self) -> int:
        return sum(len(chunk) for chunk in self._bits)

    # ------------------------------------------------------------ lifecycle
    def finish(self) -> PathEncoding:
        """Finish the current path and return its encoding (then reset)."""
        encoding = PathEncoding(
            bits="".join(self._bits),
            indirect_codes=tuple(self._indirect_codes),
            branch_count=self._branch_count,
            truncated=self._truncated,
        )
        self.reset_path()
        return encoding

    def reset_path(self) -> None:
        """Clear per-iteration state (the CAM persists across iterations)."""
        self._bits = []
        self._indirect_codes = []
        self._branch_count = 0
        self._truncated = False

    def reset_loop(self) -> None:
        """Clear everything including the CAM (loop exit / memory re-use)."""
        self.reset_path()
        self.cam.clear()

    @property
    def current_bits(self) -> str:
        """The bits accumulated so far for the in-flight path."""
        return "".join(self._bits)

    @property
    def is_empty(self) -> bool:
        """True if no event has been recorded for the in-flight path."""
        return self._branch_count == 0
