"""The loop monitor: per-loop path encoding, counting and compression.

"When a branch inside a program loop is encountered, the branch filter
forwards this information to the loop monitor which in turn encodes each path
inside the loop uniquely.  Simultaneously, (Src, Dest) of each branch remains
stored in the branches memory. [...] LO-FAT generates a unique path encoding
for each loop path and associates an on-chip loop counter with it.  The loop
monitor indicates newly observed loop paths to the hash engine controller in
order to hash its corresponding (Src, Dest) from the branches memory.  On the
other hand, once the same loop path executes, LO-FAT only needs to increment
the counter, i.e., not requiring further hash operations." (paper §4)

This module owns the stack of active loops (supporting nesting up to the
configured depth), one :class:`LoopPathEncoder` + :class:`LoopCounterMemory` +
branch buffer per active loop, and produces a :class:`LoopRecord` for the
metadata generator when a loop exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cpu.trace import BranchKind, TraceRecord
from repro.lofat.config import LoFatConfig
from repro.lofat.loop_counter_memory import LoopCounterMemory
from repro.lofat.metadata import LoopRecord, PathRecord
from repro.lofat.path_encoder import LoopPathEncoder, PathEncoding

#: Callback used to enable hashing of a buffered pair sequence
#: (the ``new_path ctrl`` towards the hash engine controller).
HashPairsCallback = Callable[[Sequence[Tuple[int, int]], int], None]
#: Callback delivering a finished LoopRecord to the metadata generator.
LoopExitCallback = Callable[[LoopRecord], None]


@dataclass
class ActiveLoop:
    """Run-time state of one currently-executing loop."""

    entry: int
    exit_node: int
    depth: int
    call_depth: int
    encoder: LoopPathEncoder
    counters: LoopCounterMemory
    #: (Src, Dest) pairs of the in-flight iteration ("branches memory").
    pair_buffer: List[Tuple[int, int]] = field(default_factory=list)
    #: Encodings in order of first occurrence, with the pair sequence that was
    #: hashed for them (needed to build the metadata path records).
    first_seen: List[PathEncoding] = field(default_factory=list)
    iterations: int = 0
    entered_at_cycle: int = 0


@dataclass
class LoopMonitorStats:
    """Aggregate counters describing loop compression effectiveness."""

    loops_entered: int = 0
    loops_exited: int = 0
    iterations_total: int = 0
    new_paths_hashed: int = 0
    repeated_paths_compressed: int = 0
    pairs_hashed_from_loops: int = 0
    pairs_compressed: int = 0

    def as_dict(self) -> dict:
        return {
            "loops_entered": self.loops_entered,
            "loops_exited": self.loops_exited,
            "iterations_total": self.iterations_total,
            "new_paths_hashed": self.new_paths_hashed,
            "repeated_paths_compressed": self.repeated_paths_compressed,
            "pairs_hashed_from_loops": self.pairs_hashed_from_loops,
            "pairs_compressed": self.pairs_compressed,
        }


class LoopMonitor:
    """Tracks nested loops, encodes their paths and compresses repetitions."""

    def __init__(
        self,
        config: LoFatConfig,
        hash_pairs: HashPairsCallback,
        on_loop_exit: LoopExitCallback,
    ) -> None:
        self.config = config
        self.hash_pairs = hash_pairs
        self.on_loop_exit = on_loop_exit
        self.stats = LoopMonitorStats()
        self._stack: List[ActiveLoop] = []

    # -------------------------------------------------------------- queries
    @property
    def active_loops(self) -> List[ActiveLoop]:
        """The active loop stack (outermost first)."""
        return self._stack

    @property
    def depth(self) -> int:
        """Current nesting depth of tracked loops."""
        return len(self._stack)

    @property
    def top_loop(self) -> ActiveLoop:
        """The innermost active loop."""
        return self._stack[-1]

    def find_loop_by_entry(self, entry: int) -> Optional[int]:
        """Stack index of the active loop with entry node ``entry``, if any."""
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index].entry == entry:
                return index
        return None

    # ------------------------------------------------------------ lifecycle
    def enter_loop(self, entry: int, exit_node: int, call_depth: int, cycle: int) -> ActiveLoop:
        """Start tracking a newly detected loop (entry/exit registers latch)."""
        loop = ActiveLoop(
            entry=entry,
            exit_node=exit_node,
            depth=len(self._stack) + 1,
            call_depth=call_depth,
            encoder=LoopPathEncoder(self.config),
            counters=LoopCounterMemory(self.config),
            entered_at_cycle=cycle,
        )
        self._stack.append(loop)
        self.stats.loops_entered += 1
        return loop

    def loop_branch(self, record: TraceRecord) -> None:
        """Fold one control-flow event into the innermost loop's path."""
        if not self._stack:
            raise RuntimeError("loop_branch called with no active loop")
        loop = self._stack[-1]
        encoder = loop.encoder
        kind = record.kind
        if kind is BranchKind.CONDITIONAL:
            encoder.on_conditional(record.taken)
        elif kind.is_indirect:
            encoder.on_indirect(record.next_pc)
        else:  # direct jumps and direct calls
            encoder.on_direct_jump()
        loop.pair_buffer.append((record.pc, record.next_pc))

    def iteration_boundary(self, record: TraceRecord) -> None:
        """Close the current iteration of the innermost loop.

        Called by the branch filter for the back edge that returns control to
        the loop entry node.  The back edge itself has already been folded
        into the path by :meth:`loop_branch`.
        """
        if not self._stack:
            raise RuntimeError("iteration_boundary called with no active loop")
        loop = self._stack[-1]
        self._complete_path(loop, record.cycle)

    def exit_loop(self, cycle: int) -> LoopRecord:
        """Terminate the innermost loop and emit its metadata record."""
        if not self._stack:
            raise RuntimeError("exit_loop called with no active loop")
        loop = self._stack.pop()
        # A partially executed path (the iteration during which the loop
        # exited, e.g. the failing while-condition or a break) is recorded as
        # a path of its own so the exit route is covered by the measurement.
        if not loop.encoder.is_empty or loop.pair_buffer:
            self._complete_path(loop, cycle)

        paths = [
            PathRecord(encoding=encoding,
                       iterations=loop.counters.count_for(encoding.bits),
                       first_seen_index=index)
            for index, encoding in enumerate(loop.first_seen)
        ]
        record = LoopRecord(
            entry=loop.entry,
            exit_node=loop.exit_node,
            depth=loop.depth,
            iterations=loop.iterations,
            paths=paths,
            indirect_targets=loop.encoder.cam.targets_in_order(),
        )
        self.stats.loops_exited += 1
        self.on_loop_exit(record)
        loop.encoder.reset_loop()
        loop.counters.clear()
        return record

    # -------------------------------------------------------------- helpers
    def _complete_path(self, loop: ActiveLoop, cycle: int) -> None:
        encoding = loop.encoder.finish()
        # Hand the buffered pairs over without copying: the buffer is re-bound
        # to a fresh list, so the hash engine owns the old one outright.
        pairs = loop.pair_buffer
        loop.pair_buffer = []
        loop.iterations += 1
        self.stats.iterations_total += 1

        is_new = loop.counters.record_path(encoding)
        if is_new:
            loop.first_seen.append(encoding)
            self.stats.new_paths_hashed += 1
            self.stats.pairs_hashed_from_loops += len(pairs)
            if pairs:
                self.hash_pairs(pairs, cycle)
        else:
            self.stats.repeated_paths_compressed += 1
            self.stats.pairs_compressed += len(pairs)
