"""The branch filter: control-flow extraction and run-time loop detection.

The branch filter is "tightly coupled to the processor, extracts the current
program counter and instruction executed per clock cycle [and] filters in
every branch, jump and return instruction" (paper §4).  On top of the
filtering it performs the run-time loop detection of §5.1:

* **Loop entry**: the target of every *taken, non-linking backward* branch is
  considered a loop entry node.  Linking branches (those writing the link
  register ``ra``/``t0``) are subroutine calls, not loop back edges, and
  function returns are recognised by the canonical ``jalr x0, ra, 0`` idiom.
* **Loop exit**: the basic block following the backward branch is the loop
  exit node; the loop terminates when execution proceeds to or past that
  address (sequentially or via a non-linking branch) while not inside a
  function called from the loop body.

The filter does not keep per-path state itself -- it drives the
:class:`repro.lofat.loop_monitor.LoopMonitor` through the same control
interface the hardware uses (``non_loops ctrl``, ``loops_status ctrl``,
``branch_status ctrl``), here expressed as callbacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cpu.trace import BranchKind, TraceRecord
from repro.lofat.config import LoFatConfig
from repro.lofat.loop_monitor import LoopMonitor


class FilterEventKind(enum.Enum):
    """Events the branch filter reports (for tests and diagnostics)."""

    NON_LOOP_BRANCH = "non_loop_branch"
    LOOP_DISCOVERED = "loop_discovered"
    LOOP_BRANCH = "loop_branch"
    LOOP_ITERATION = "loop_iteration"
    LOOP_EXIT = "loop_exit"


@dataclass
class FilterEvent:
    """One event emitted by the branch filter (diagnostic stream)."""

    kind: FilterEventKind
    cycle: int
    pc: int
    detail: str = ""


@dataclass
class FilterStats:
    """Counters describing what the filter observed."""

    instructions_observed: int = 0
    control_flow_instructions: int = 0
    non_loop_branches: int = 0
    loop_branches: int = 0
    loops_discovered: int = 0
    loop_iterations: int = 0
    loop_exits: int = 0
    loops_beyond_max_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "instructions_observed": self.instructions_observed,
            "control_flow_instructions": self.control_flow_instructions,
            "non_loop_branches": self.non_loop_branches,
            "loop_branches": self.loop_branches,
            "loops_discovered": self.loops_discovered,
            "loop_iterations": self.loop_iterations,
            "loop_exits": self.loop_exits,
            "loops_beyond_max_depth": self.loops_beyond_max_depth,
        }


class BranchFilter:
    """Filters the retired-instruction stream and detects loops at run time.

    Parameters:
        config: LO-FAT configuration (nesting depth, latencies, ...).
        loop_monitor: the loop monitor driven by this filter.
        hash_non_loop: callback invoked with (record) for every control-flow
            instruction outside any tracked loop -- the ``non_loops ctrl``
            path that enables direct hashing of the (Src, Dest) pair.
        record_events: keep a diagnostic list of :class:`FilterEvent`.
    """

    def __init__(
        self,
        config: LoFatConfig,
        loop_monitor: LoopMonitor,
        hash_non_loop: Callable[[TraceRecord], None],
        hash_non_loop_run: Optional[Callable[[Sequence[TraceRecord]], None]] = None,
        hash_non_loop_chunk: Optional[Callable] = None,
        record_events: bool = False,
    ) -> None:
        self.config = config
        self.loop_monitor = loop_monitor
        self.hash_non_loop = hash_non_loop
        #: Optional batched variant of ``hash_non_loop``: absorbs a run of
        #: consecutive non-loop branches in one hash-engine call (same bytes,
        #: same order).  When absent, batched observation falls back to the
        #: per-record callback.
        self.hash_non_loop_run = hash_non_loop_run
        #: Optional precomputed-chunk variant used by per-block observation
        #: (compiled engine): ``(chunk, pairs, records)`` with the pair bytes
        #: already serialized at block-compile time.  Falls back to
        #: :attr:`hash_non_loop_run` / :attr:`hash_non_loop` when absent.
        self.hash_non_loop_chunk = hash_non_loop_chunk
        self.stats = FilterStats()
        self.events: List[FilterEvent] = []
        self._record_events = record_events
        self._call_depth = 0
        #: ``next_pc`` of the most recently observed record: the start of the
        #: straight-line run leading to the next observed record.  Batched
        #: (control-flow-only) observation uses it to perform the loop-exit
        #: check over the whole run at once.
        self._linear_start: Optional[int] = None
        #: Cycles of internal latency accumulated (2 per branch event plus 5
        #: per loop exit); these overlap with program execution and do not
        #: stall the core -- they are reported by experiment E2.
        self.internal_latency_cycles = 0

    # ------------------------------------------------------------- helpers
    def _emit(self, kind: FilterEventKind, record_or_cycle, pc: int, detail: str = "") -> None:
        if not self._record_events:
            return
        cycle = record_or_cycle.cycle if isinstance(record_or_cycle, TraceRecord) else record_or_cycle
        self.events.append(FilterEvent(kind, cycle, pc, detail))

    @staticmethod
    def _is_loop_back_edge(record: TraceRecord) -> bool:
        """True for a taken, non-linking, backward direct transfer.

        Conditional branches and plain ``jal x0`` jumps qualify; calls (which
        link) and returns (the recognised return idiom) do not.
        """
        if not record.taken:
            return False
        if record.kind is BranchKind.CONDITIONAL:
            return record.next_pc <= record.pc
        if record.kind is BranchKind.DIRECT_JUMP:
            return record.next_pc <= record.pc
        return False

    # --------------------------------------------------------------- input
    def observe(self, record: TraceRecord) -> None:
        """Process one retired instruction (the per-cycle pipeline snoop)."""
        self.stats.instructions_observed += 1
        self._linear_start = record.next_pc
        monitor = self.loop_monitor

        # 1. Loop-exit detection based on the current PC.  Only applies when
        #    execution is in the same call frame the loop was entered in.
        self._check_loop_exits(record)

        if not record.is_control_flow:
            return

        self.stats.control_flow_instructions += 1
        self.internal_latency_cycles += self.config.branch_tracking_latency

        # 2. Call-depth tracking for the exit heuristic.
        if record.kind.is_linking:
            self._call_depth += 1
        elif record.kind is BranchKind.RETURN:
            if self._call_depth > 0:
                self._call_depth -= 1
            elif monitor.active_loops:
                # A return at the loop's own call depth leaves the function
                # containing the loop: every active loop in this frame exits.
                self._exit_all_loops(record)

        # 3. Back-edge / loop classification.
        if self._is_loop_back_edge(record):
            self._handle_back_edge(record)
            return

        # 4. Ordinary control flow: inside a loop it contributes to the loop
        #    path; outside it is hashed directly.
        if monitor.active_loops:
            monitor.loop_branch(record)
            self.stats.loop_branches += 1
            self._emit(FilterEventKind.LOOP_BRANCH, record, record.pc)
        else:
            self.hash_non_loop(record)
            self.stats.non_loop_branches += 1
            self._emit(FilterEventKind.NON_LOOP_BRANCH, record, record.pc)

    def observe_batch(self, records: Sequence[TraceRecord]) -> None:
        """Process a batch of retired *control-flow* records.

        The fast execution pipeline only materializes control-flow records;
        every instruction between two observed records is a straight-line run
        from the previous record's ``next_pc`` up to the next record's
        ``pc``.  Because program counters in such a run increase
        monotonically, the per-instruction loop-exit check reduces to one
        range check per observed record (``run_start < entry`` or
        ``pc >= exit_node``), and consecutive non-loop branches are hashed as
        a single run through :attr:`hash_non_loop_run`.

        The pair sequence reaching the hash engine -- hence the measurement
        and the loop metadata -- is identical to per-record observation.
        ``instructions_observed`` is synchronized from the record retirement
        indices, so it excludes any straight-line tail after the last
        control-flow instruction.
        """
        monitor = self.loop_monitor
        stats = self.stats
        branch_latency = self.config.branch_tracking_latency
        #: Consecutive directly-hashable branches awaiting one absorb call.
        pending: List[TraceRecord] = []
        for record in records:
            stats.instructions_observed = record.index + 1
            run_start = self._linear_start
            if run_start is None:
                run_start = record.pc

            # 1. Loop-exit detection over the straight-line run
            #    [run_start, record.pc].
            if monitor.active_loops:
                self._exit_loops_in_range(run_start, record.pc, record.cycle)

            kind = record.kind
            if not kind.is_control_flow:
                # Contract: batches carry control-flow records only; keep a
                # stray record harmless (it carries no pair to hash).
                self._linear_start = record.next_pc
                continue

            stats.control_flow_instructions += 1
            self.internal_latency_cycles += branch_latency

            # 2. Call-depth tracking for the exit heuristic.
            if kind.is_linking:
                self._call_depth += 1
            elif kind is BranchKind.RETURN:
                if self._call_depth > 0:
                    self._call_depth -= 1
                elif monitor.active_loops:
                    self._exit_all_loops(record)

            # 3. / 4. Back-edge handling and ordinary control flow.  Back
            # edges and loop events may trigger loop-path hashing, so the
            # pending direct run is flushed first to preserve absorb order.
            if self._is_loop_back_edge(record):
                if pending:
                    self._flush_direct_run(pending)
                    pending = []
                self._handle_back_edge(record)
            elif monitor.active_loops:
                monitor.loop_branch(record)
                stats.loop_branches += 1
                self._emit(FilterEventKind.LOOP_BRANCH, record, record.pc)
            else:
                pending.append(record)
                stats.non_loop_branches += 1
                self._emit(FilterEventKind.NON_LOOP_BRANCH, record, record.pc)
            self._linear_start = record.next_pc
        if pending:
            self._flush_direct_run(pending)

    def observe_block(self, records: Sequence[TraceRecord], chunk, pairs) -> None:
        """Process one compiled block's control-flow records.

        ``records[:len(pairs)]`` are the block's chain-internal jumps --
        by construction *forward, taken, non-linking direct jumps*, whose
        pre-masked (Src, Dest) pairs and concatenated bytes the block
        compiler produced once at compile time -- and the remainder is the
        block terminator (dynamic outcome, at most one record).

        The internal jumps can take the precomputed-chunk shortcut only
        while no loop is active: a forward direct jump is never a back edge
        and never changes the call depth, so outside loops each one is a
        plain directly-hashed non-loop branch and the whole run absorbs as
        one chunk.  Inside a loop (or when diagnostics record per-event
        streams) the records flow through :meth:`observe_batch`, preserving
        the loop-path and loop-exit semantics instruction for instruction.
        """
        n = len(pairs)
        if (
            n == 0
            or self._record_events
            or self.loop_monitor.active_loops
            or len(records) < n
        ):
            self.observe_batch(records)
            return
        internal = records[:n]
        stats = self.stats
        stats.instructions_observed = internal[-1].index + 1
        stats.control_flow_instructions += n
        stats.non_loop_branches += n
        self.internal_latency_cycles += n * self.config.branch_tracking_latency
        self._linear_start = internal[-1].next_pc
        if self.hash_non_loop_chunk is not None:
            self.hash_non_loop_chunk(chunk, pairs, internal)
        else:
            self._flush_direct_run(internal)
        remainder = records[n:]
        if remainder:
            self.observe_batch(remainder)

    def sync_straight_line(self, next_pc: int, cycle: int) -> None:
        """Apply loop-exit checks for an unobserved straight-line run.

        Called when batched observation ends mid-run (a pre-hook redirected
        control flow): straight-line execution advanced from the last
        observed record's ``next_pc`` up to -- but not including --
        ``next_pc``, and produced no records.  This performs the same
        range-based exit check :meth:`observe_batch` would have applied at
        the next control-flow record, so switching to per-record observation
        afterwards starts from the correct loop state.
        """
        run_start = self._linear_start
        # The straight-line continuity is broken after this point.
        self._linear_start = None
        if run_start is None or run_start >= next_pc:
            return  # nothing retired since the last observed record
        self._exit_loops_in_range(run_start, next_pc - 4, cycle)

    def sync_instructions_observed(self, instructions: int) -> None:
        """Raise ``instructions_observed`` to the true retirement count.

        Batched observation can only count up to the last control-flow
        record; the CPU reports the full count (including the straight-line
        tail) at the end of the run.
        """
        if instructions > self.stats.instructions_observed:
            self.stats.instructions_observed = instructions

    def _flush_direct_run(self, records: Sequence[TraceRecord]) -> None:
        if self.hash_non_loop_run is not None:
            self.hash_non_loop_run(records)
        else:
            for record in records:
                self.hash_non_loop(record)

    def _exit_loops_in_range(self, run_start: int, last_pc: int, cycle: int) -> None:
        """Pop active loops exited by the monotone pc run [run_start, last_pc].

        The one loop-exit stack walk behind every observation mode: some pc
        in the run is past the exit node iff the last one is, and some pc
        precedes the loop entry iff the first one does -- so the per-record
        check is simply the degenerate run ``run_start == last_pc``.
        """
        monitor = self.loop_monitor
        while monitor.active_loops:
            top = monitor.top_loop
            if self._call_depth != top.call_depth:
                return
            if last_pc >= top.exit_node or run_start < top.entry:
                self._exit_top_loop(cycle, last_pc)
                continue
            return

    # ---------------------------------------------------------- back edges
    def _handle_back_edge(self, record: TraceRecord) -> None:
        monitor = self.loop_monitor
        entry = record.next_pc

        # Another iteration of an already-tracked loop?
        depth_index = monitor.find_loop_by_entry(entry)
        if depth_index is not None:
            # Inner loops (if any) implicitly terminate when control jumps
            # back to an outer loop's entry node.
            while monitor.depth - 1 > depth_index:
                self._exit_top_loop(record.cycle, record.pc)
            monitor.loop_branch(record)
            monitor.iteration_boundary(record)
            self.stats.loop_branches += 1
            self.stats.loop_iterations += 1
            self._emit(FilterEventKind.LOOP_ITERATION, record, record.pc,
                       "entry=%#x" % entry)
            return

        # A new loop.  If we are already at the configured nesting depth the
        # loop is not tracked separately; its branches stay part of the
        # innermost tracked loop (coarser granularity, as §5.1 allows).
        if monitor.depth >= self.config.max_nested_loops:
            self.stats.loops_beyond_max_depth += 1
            if monitor.active_loops:
                monitor.loop_branch(record)
                self.stats.loop_branches += 1
            else:
                self.hash_non_loop(record)
                self.stats.non_loop_branches += 1
            return

        # The discovery back edge itself is attributed to the enclosing
        # context (outer loop path or direct hashing): the loop becomes
        # tracked only once its entry and exit registers are latched.
        if monitor.active_loops:
            monitor.loop_branch(record)
            self.stats.loop_branches += 1
        else:
            self.hash_non_loop(record)
            self.stats.non_loop_branches += 1

        exit_node = record.pc + 4
        monitor.enter_loop(
            entry=entry,
            exit_node=exit_node,
            call_depth=self._call_depth,
            cycle=record.cycle,
        )
        self.stats.loops_discovered += 1
        self._emit(FilterEventKind.LOOP_DISCOVERED, record, record.pc,
                   "entry=%#x exit=%#x" % (entry, exit_node))

    # --------------------------------------------------------------- exits
    def _check_loop_exits(self, record: TraceRecord) -> None:
        self._exit_loops_in_range(record.pc, record.pc, record.cycle)

    def _exit_top_loop(self, cycle: int, pc: int) -> None:
        self.loop_monitor.exit_loop(cycle)
        self.stats.loop_exits += 1
        self.internal_latency_cycles += self.config.loop_exit_latency
        self._emit(FilterEventKind.LOOP_EXIT, cycle, pc)

    def _exit_all_loops(self, record: TraceRecord) -> None:
        while self.loop_monitor.active_loops:
            self._exit_top_loop(record.cycle, record.pc)

    def finalize(self, cycle: int) -> None:
        """Close any loops still active when the attested execution ends."""
        while self.loop_monitor.active_loops:
            self._exit_top_loop(cycle, 0)
