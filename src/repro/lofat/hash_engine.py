"""The SHA-3 512 hash engine and its cycle-level absorb model.

LO-FAT computes a single cumulative SHA-3 512 measurement ``A`` over the
stream of 64-bit ``(Src, Dest)`` pairs selected by the branch filter / loop
monitor (paper §5.3).  Two aspects matter for the reproduction:

* **The digest value.**  We produce it with :func:`hashlib.sha3_512`, which is
  the same Keccak[1024] instance (576-bit rate) the open-source engine
  implements, so measurements are real SHA-3 digests.

* **The timing behaviour.**  The engine absorbs one 64-bit word per cycle into
  a padding buffer; after 9 words the 576-bit block is full and the buffer
  cannot accept input for 3 cycles while the permutation starts.  A small
  cache buffer in front of the engine therefore has to absorb bursts so that
  no pair is ever dropped and the processor never stalls.  The cycle model
  here reproduces exactly that bookkeeping and reports the buffer occupancy
  statistics used in experiments E2 and E6.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lofat.config import LoFatConfig


@dataclass
class HashEngineStats:
    """Observable behaviour of the hash engine over one attested run."""

    #: Number of (Src, Dest) pairs absorbed into the measurement.
    pairs_absorbed: int = 0
    #: Number of pad-full stall windows encountered.
    pad_stalls: int = 0
    #: Total engine cycles spent stalled (pad full).
    stall_cycles: int = 0
    #: Maximum occupancy observed in the input cache buffer.
    max_buffer_occupancy: int = 0
    #: Number of pairs that arrived while the buffer was full.  LO-FAT is
    #: engineered so that this is always zero; a non-zero value means the
    #: configuration's buffer depth is insufficient for the workload.
    dropped_pairs: int = 0
    #: Engine cycle at which the last pair finished absorbing.
    last_absorb_cycle: int = 0

    def as_dict(self) -> dict:
        return {
            "pairs_absorbed": self.pairs_absorbed,
            "pad_stalls": self.pad_stalls,
            "stall_cycles": self.stall_cycles,
            "max_buffer_occupancy": self.max_buffer_occupancy,
            "dropped_pairs": self.dropped_pairs,
            "last_absorb_cycle": self.last_absorb_cycle,
        }


class HashEngine:
    """Cumulative SHA-3 512 measurement plus absorb-pipeline cycle model.

    The functional measurement and the cycle model are deliberately decoupled:
    the digest depends only on the *sequence* of absorbed pairs (so the
    verifier can recompute it without a cycle-accurate replay), while the
    cycle model tracks buffering behaviour for the performance experiments.
    """

    def __init__(self, config: Optional[LoFatConfig] = None) -> None:
        self.config = config or LoFatConfig()
        self._hasher = hashlib.sha3_512()
        self._absorbed: List[Tuple[int, int]] = []
        self.stats = HashEngineStats()
        self._finalized: Optional[bytes] = None
        # Cycle-model state.
        self._engine_cycle = 0
        self._words_in_block = 0
        self._buffer: List[int] = []  # arrival cycles of queued pairs

    # ----------------------------------------------------------- functional
    def absorb_pair(self, src: int, dest: int, arrival_cycle: Optional[int] = None) -> None:
        """Absorb one (Src, Dest) pair into the measurement.

        ``arrival_cycle`` is the processor cycle at which the pair was handed
        to the engine; when provided, the cycle model is advanced as well.
        """
        if self._finalized is not None:
            raise RuntimeError("hash engine already finalized")
        src &= 0xFFFFFFFF
        dest &= 0xFFFFFFFF
        self._hasher.update(src.to_bytes(4, "little") + dest.to_bytes(4, "little"))
        self._absorbed.append((src, dest))
        self.stats.pairs_absorbed += 1
        if arrival_cycle is not None:
            self._advance_cycle_model(arrival_cycle)

    def absorb_run(
        self,
        pairs: Sequence[Tuple[int, int]],
        arrivals: Optional[Iterable[int]] = None,
    ) -> None:
        """Absorb a run of (Src, Dest) pairs with a single hasher update.

        Byte-for-byte equivalent to calling :meth:`absorb_pair` once per
        pair -- the digest depends only on the absorbed byte sequence -- but
        the sponge is fed one concatenated buffer, which is what makes the
        batched observation path cheap.  ``arrivals`` optionally carries the
        per-pair engine arrival cycles; the cycle model is then advanced in
        one amortized pass over the run instead of one call per pair.
        """
        if self._finalized is not None:
            raise RuntimeError("hash engine already finalized")
        if not pairs:
            return
        chunk = bytearray()
        masked = []
        for src, dest in pairs:
            src &= 0xFFFFFFFF
            dest &= 0xFFFFFFFF
            chunk += src.to_bytes(4, "little") + dest.to_bytes(4, "little")
            masked.append((src, dest))
        self._hasher.update(bytes(chunk))
        self._absorbed.extend(masked)
        self.stats.pairs_absorbed += len(masked)
        if arrivals is not None:
            advance = self._advance_cycle_model
            for arrival in arrivals:
                advance(arrival)

    def absorb_chunk(
        self,
        chunk: bytes,
        pairs: Sequence[Tuple[int, int]],
        arrivals: Optional[Iterable[int]] = None,
    ) -> None:
        """Absorb a precomputed pair run (compiled-engine per-block path).

        ``chunk`` must be exactly the concatenated little-endian 4+4 byte
        encoding of ``pairs``, with both addresses already masked to 32
        bits -- the block compiler builds both once at compile time, so the
        hot path neither masks nor re-serializes anything.  Byte-for-byte
        equivalent to :meth:`absorb_run` over the same pairs.
        """
        if self._finalized is not None:
            raise RuntimeError("hash engine already finalized")
        if not pairs:
            return
        self._hasher.update(chunk)
        self._absorbed.extend(pairs)
        self.stats.pairs_absorbed += len(pairs)
        if arrivals is not None:
            advance = self._advance_cycle_model
            for arrival in arrivals:
                advance(arrival)

    def absorb_bytes(self, data: bytes) -> None:
        """Absorb raw bytes (used to append the loop metadata to the digest)."""
        if self._finalized is not None:
            raise RuntimeError("hash engine already finalized")
        self._hasher.update(data)

    def finalize(self) -> bytes:
        """Close the message and return the 64-byte SHA3-512 measurement.

        Any pairs still queued in the input cache buffer are drained first,
        so post-finalize statistics never report in-flight pairs as pending
        (``buffer_occupancy``) or understate the stall cycles they incur.
        """
        if self._finalized is None:
            self.flush_cycle_model()
            self._finalized = self._hasher.digest()
            # End-of-message: the permutation over the final (padded) block.
            self._engine_cycle += self.config.hash_permutation_cycles
        return self._finalized

    def statistics(self) -> dict:
        """Stats dictionary including the live buffer/cycle state."""
        stats = self.stats.as_dict()
        stats["buffer_occupancy"] = len(self._buffer)
        stats["engine_cycle"] = self._engine_cycle
        return stats

    @property
    def digest_hex(self) -> str:
        """Hex form of the finalized measurement."""
        return self.finalize().hex()

    @property
    def absorbed_pairs(self) -> List[Tuple[int, int]]:
        """The absorbed (Src, Dest) pairs, in order (copy)."""
        return list(self._absorbed)

    # ----------------------------------------------------------- cycle model
    def _advance_cycle_model(self, arrival_cycle: int) -> None:
        """Advance the absorb pipeline up to ``arrival_cycle`` and enqueue."""
        config = self.config
        # Drain whatever the engine could absorb before this arrival.
        self._drain_until(arrival_cycle)

        if len(self._buffer) >= config.hash_input_buffer_depth:
            # The real hardware cannot drop pairs; we record the event so the
            # experiments can show which buffer depth is sufficient.
            self.stats.dropped_pairs += 1
            return
        self._buffer.append(arrival_cycle)
        occupancy = len(self._buffer)
        if occupancy > self.stats.max_buffer_occupancy:
            self.stats.max_buffer_occupancy = occupancy

    def _drain_until(self, cycle: int) -> None:
        """Absorb queued pairs while engine time is behind ``cycle``."""
        config = self.config
        while self._buffer and self._engine_cycle < cycle:
            arrival = self._buffer[0]
            start = max(self._engine_cycle, arrival)
            if start >= cycle:
                break
            self._buffer.pop(0)
            self._engine_cycle = start + 1  # one word absorbed per cycle
            self._words_in_block += 1
            self.stats.last_absorb_cycle = self._engine_cycle
            if self._words_in_block == config.absorbs_per_block:
                # Padding buffer full: cannot absorb for the stall window.
                self._engine_cycle += config.hash_pad_stall_cycles
                self.stats.pad_stalls += 1
                self.stats.stall_cycles += config.hash_pad_stall_cycles
                self._words_in_block = 0

    def flush_cycle_model(self) -> None:
        """Drain any queued pairs (used at the end of the attested run)."""
        self._drain_until(float("inf"))

    @property
    def engine_cycle(self) -> int:
        """Current cycle of the engine-side clock domain."""
        return self._engine_cycle

    @property
    def buffer_occupancy(self) -> int:
        """Pairs currently waiting in the input cache buffer."""
        return len(self._buffer)


def measurement_over_pairs(pairs, metadata_bytes: bytes = b"") -> bytes:
    """Compute the LO-FAT measurement for a pair sequence (verifier helper).

    This is the verifier-side functional equivalent of the hash engine: a
    SHA3-512 over the concatenated little-endian 32-bit Src/Dest words,
    followed by the metadata bytes.
    """
    hasher = hashlib.sha3_512()
    for src, dest in pairs:
        hasher.update((src & 0xFFFFFFFF).to_bytes(4, "little"))
        hasher.update((dest & 0xFFFFFFFF).to_bytes(4, "little"))
    if metadata_bytes:
        hasher.update(metadata_bytes)
    return hasher.digest()
