"""A two-pass RV32IM assembler.

The assembler turns textual assembly (a practical subset of what GNU ``as``
accepts for RV32) into a :class:`Program` image containing the encoded code
section, the initialised data section and a symbol table.  It supports the
common pseudo-instructions emitted by compilers for embedded code (``li``,
``la``, ``mv``, ``call``, ``ret``, conditional-branch aliases, ...), the
``%hi``/``%lo`` relocation operators and the usual data directives.

The produced :class:`Program` is what both the prover-side CPU model and the
verifier-side static analysis consume, mirroring the paper's assumption that
the verifier holds the program binary.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.encoding import encode
from repro.isa.instructions import Instruction, spec_for
from repro.isa.registers import register_number

#: Default base address of the (read-execute) code section.
DEFAULT_CODE_BASE = 0x0000_0000
#: Default base address of the (read-write) data section.
DEFAULT_DATA_BASE = 0x0001_0000


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error in the assembly source."""

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


@dataclass
class Program:
    """An assembled program image.

    Attributes:
        code: encoded instruction bytes (little-endian 32-bit words).
        data: initialised data bytes.
        code_base: load address of the code section.
        data_base: load address of the data section.
        symbols: label name -> absolute address.
        entry: address of the entry point (``_start`` or ``main`` if present,
            otherwise the start of the code section).
        instructions: decoded instructions with addresses, in layout order.
        source: the original assembly text (kept for diagnostics and reports).
    """

    code: bytes
    data: bytes
    code_base: int = DEFAULT_CODE_BASE
    data_base: int = DEFAULT_DATA_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = DEFAULT_CODE_BASE
    instructions: List[Instruction] = field(default_factory=list)
    source: str = ""

    @property
    def digest(self) -> str:
        """SHA3-256 hex digest of the program image (code, data, layout).

        This is the identity under which the verifier-side caches (decoded
        instructions, CFG knowledge, measurement database) key a program:
        two images with the same digest are the same binary regardless of
        which registry name or file they came from.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            hasher = hashlib.sha3_256()
            for part in (
                self.code_base.to_bytes(4, "little"),
                self.data_base.to_bytes(4, "little"),
                self.entry.to_bytes(4, "little"),
                len(self.code).to_bytes(4, "little"),
                self.code,
                self.data,
            ):
                hasher.update(part)
            cached = hasher.hexdigest()
            self._digest = cached
        return cached

    @property
    def code_end(self) -> int:
        """First address past the code section."""
        return self.code_base + len(self.code)

    @property
    def data_end(self) -> int:
        """First address past the initialised data section."""
        return self.data_base + len(self.data)

    def instruction_at(self, address: int) -> Instruction:
        """Return the decoded instruction at ``address``."""
        offset = address - self.code_base
        if offset < 0 or offset + 4 > len(self.code) or offset % 4 != 0:
            raise ValueError("no instruction at address %#x" % address)
        return self.instructions[offset // 4]

    def word_at(self, address: int) -> int:
        """Return the raw 32-bit instruction word at ``address``."""
        offset = address - self.code_base
        return int.from_bytes(self.code[offset:offset + 4], "little")

    def symbol(self, name: str) -> int:
        """Return the address of label ``name``."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError("unknown symbol: %r" % name) from None


@dataclass
class _Statement:
    """One parsed source statement (after label extraction)."""

    lineno: int
    section: str
    mnemonic: str
    operands: List[str]


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_CHAR_RE = re.compile(r"^'(\\?.)'$")

_ESCAPES = {
    "\\n": "\n", "\\t": "\t", "\\0": "\0", "\\r": "\r",
    "\\\\": "\\", "\\'": "'", '\\"': '"',
}


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas, respecting parentheses and quotes."""
    operands: List[str] = []
    depth = 0
    current = ""
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
            current += ch
        elif in_string:
            current += ch
        elif ch == "(":
            depth += 1
            current += ch
        elif ch == ")":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        operands.append(current.strip())
    return operands


def _strip_comment(line: str) -> str:
    """Remove ``#`` and ``//`` comments (outside of string literals)."""
    result = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"':
            in_string = not in_string
            result.append(ch)
        elif not in_string and ch == "#":
            break
        elif not in_string and ch == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        elif not in_string and ch == ";":
            break
        else:
            result.append(ch)
        i += 1
    return "".join(result)


class _Symbols:
    """Symbol table shared by both assembler passes."""

    def __init__(self) -> None:
        self.values: Dict[str, int] = {}

    def define(self, name: str, value: int, lineno: int) -> None:
        if name in self.values and self.values[name] != value:
            raise AssemblerError("symbol redefined: %r" % name, lineno)
        self.values[name] = value

    def lookup(self, name: str, lineno: int) -> int:
        if name not in self.values:
            raise AssemblerError("undefined symbol: %r" % name, lineno)
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values


class Assembler:
    """Two-pass assembler producing a :class:`Program`.

    The first pass computes section layout and the symbol table; the second
    pass expands pseudo-instructions, resolves symbols and encodes machine
    words.
    """

    def __init__(
        self,
        code_base: int = DEFAULT_CODE_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ) -> None:
        self.code_base = code_base
        self.data_base = data_base

    # ------------------------------------------------------------------ API
    def assemble(self, source: str) -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        statements, symbols = self._first_pass(source)
        return self._second_pass(source, statements, symbols)

    # ------------------------------------------------------------- pass one
    def _first_pass(self, source: str) -> Tuple[List[_Statement], _Symbols]:
        symbols = _Symbols()
        statements: List[_Statement] = []
        section = "text"
        counters = {"text": self.code_base, "data": self.data_base}

        for lineno, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            # Peel off any leading labels.
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                symbols.define(label, counters[section], lineno)
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            stmt = _Statement(lineno, section, mnemonic, operands)

            if mnemonic.startswith("."):
                section = self._layout_directive(stmt, counters, symbols, section)
                statements.append(stmt)
                continue

            if section != "text":
                raise AssemblerError(
                    "instruction %r outside .text section" % mnemonic, lineno
                )
            size = 4 * self._instruction_count(mnemonic, operands, lineno)
            counters["text"] += size
            statements.append(stmt)

        return statements, symbols

    def _layout_directive(
        self,
        stmt: _Statement,
        counters: Dict[str, int],
        symbols: _Symbols,
        section: str,
    ) -> str:
        """Apply a directive's effect on layout; return the (new) section."""
        name = stmt.mnemonic
        operands = stmt.operands
        lineno = stmt.lineno
        stmt.section = section

        if name in (".text",):
            return "text"
        if name in (".data", ".bss", ".rodata"):
            return "data"
        if name == ".section":
            target = operands[0] if operands else ".text"
            return "text" if target.startswith(".text") else "data"
        if name in (".globl", ".global", ".type", ".size", ".option", ".file",
                    ".ident", ".attribute", ".p2align"):
            return section
        if name in (".equ", ".set"):
            if len(operands) != 2:
                raise AssemblerError("%s requires name, value" % name, lineno)
            symbols.define(operands[0], self._parse_integer(operands[1], lineno), lineno)
            return section
        if name == ".align":
            alignment = 1 << self._parse_integer(operands[0], lineno)
            counters[section] = -(-counters[section] // alignment) * alignment
            return section
        if name == ".balign":
            alignment = self._parse_integer(operands[0], lineno)
            counters[section] = -(-counters[section] // alignment) * alignment
            return section
        if name == ".word":
            counters[section] += 4 * len(operands)
            return section
        if name == ".half" or name == ".short":
            counters[section] += 2 * len(operands)
            return section
        if name == ".byte":
            counters[section] += len(operands)
            return section
        if name in (".space", ".zero", ".skip"):
            counters[section] += self._parse_integer(operands[0], lineno)
            return section
        if name in (".asciz", ".asciiz", ".string"):
            counters[section] += len(self._parse_string(operands[0], lineno)) + 1
            return section
        if name == ".ascii":
            counters[section] += len(self._parse_string(operands[0], lineno))
            return section
        raise AssemblerError("unsupported directive: %r" % name, lineno)

    def _instruction_count(
        self, mnemonic: str, operands: Sequence[str], lineno: int
    ) -> int:
        """How many 32-bit words the (possibly pseudo) instruction expands to."""
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError("li requires rd, imm", lineno)
            value = self._parse_integer(operands[1], lineno)
            return 1 if -2048 <= value <= 2047 else 2
        if mnemonic == "la":
            return 2
        if mnemonic == "call" and len(operands) == 1:
            return 1
        return 1

    # ------------------------------------------------------------- pass two
    def _second_pass(
        self, source: str, statements: List[_Statement], symbols: _Symbols
    ) -> Program:
        code = bytearray()
        data = bytearray()
        instructions: List[Instruction] = []
        section = "text"

        for stmt in statements:
            if stmt.mnemonic.startswith("."):
                section = self._emit_directive(stmt, code, data, symbols, section)
                continue
            address = self.code_base + len(code)
            for instr in self._expand(stmt, address, symbols):
                instr.address = self.code_base + len(code)
                word = encode(instr)
                code.extend(word.to_bytes(4, "little"))
                instructions.append(instr)

        entry = self.code_base
        for candidate in ("_start", "main"):
            if candidate in symbols:
                entry = symbols.values[candidate]
                break

        return Program(
            code=bytes(code),
            data=bytes(data),
            code_base=self.code_base,
            data_base=self.data_base,
            symbols=dict(symbols.values),
            entry=entry,
            instructions=instructions,
            source=source,
        )

    def _emit_directive(
        self,
        stmt: _Statement,
        code: bytearray,
        data: bytearray,
        symbols: _Symbols,
        section: str,
    ) -> str:
        name = stmt.mnemonic
        operands = stmt.operands
        lineno = stmt.lineno
        buffer = code if section == "text" else data
        base = self.code_base if section == "text" else self.data_base

        if name in (".text",):
            return "text"
        if name in (".data", ".bss", ".rodata"):
            return "data"
        if name == ".section":
            target = operands[0] if operands else ".text"
            return "text" if target.startswith(".text") else "data"
        if name in (".globl", ".global", ".type", ".size", ".option", ".file",
                    ".ident", ".attribute", ".p2align", ".equ", ".set"):
            return section
        if name == ".align":
            alignment = 1 << self._parse_integer(operands[0], lineno)
            self._pad(buffer, base, alignment)
            return section
        if name == ".balign":
            alignment = self._parse_integer(operands[0], lineno)
            self._pad(buffer, base, alignment)
            return section
        if name == ".word":
            for op in operands:
                value = self._parse_value(op, symbols, lineno)
                buffer.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
            return section
        if name in (".half", ".short"):
            for op in operands:
                value = self._parse_value(op, symbols, lineno)
                buffer.extend((value & 0xFFFF).to_bytes(2, "little"))
            return section
        if name == ".byte":
            for op in operands:
                value = self._parse_value(op, symbols, lineno)
                buffer.append(value & 0xFF)
            return section
        if name in (".space", ".zero", ".skip"):
            buffer.extend(b"\x00" * self._parse_integer(operands[0], lineno))
            return section
        if name in (".asciz", ".asciiz", ".string"):
            buffer.extend(self._parse_string(operands[0], lineno).encode("latin-1"))
            buffer.append(0)
            return section
        if name == ".ascii":
            buffer.extend(self._parse_string(operands[0], lineno).encode("latin-1"))
            return section
        raise AssemblerError("unsupported directive: %r" % name, lineno)

    @staticmethod
    def _pad(buffer: bytearray, base: int, alignment: int) -> None:
        while (base + len(buffer)) % alignment != 0:
            buffer.append(0)

    # ------------------------------------------------------ operand parsing
    def _parse_integer(self, text: str, lineno: int) -> int:
        text = text.strip()
        match = _CHAR_RE.match(text)
        if match:
            token = match.group(1)
            return ord(_ESCAPES.get(token, token[-1]))
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblerError("expected integer, got %r" % text, lineno) from None

    def _parse_string(self, text: str, lineno: int) -> str:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError("expected string literal, got %r" % text, lineno)
        body = text[1:-1]
        for escape, replacement in _ESCAPES.items():
            body = body.replace(escape, replacement)
        return body

    def _parse_value(self, text: str, symbols: _Symbols, lineno: int) -> int:
        """Parse an integer literal, character or symbol reference."""
        text = text.strip()
        if text in symbols:
            return symbols.lookup(text, lineno)
        return self._parse_integer(text, lineno)

    def _parse_register(self, text: str, lineno: int) -> int:
        try:
            return register_number(text)
        except ValueError as exc:
            raise AssemblerError(str(exc), lineno) from None

    def _parse_immediate(self, text: str, symbols: _Symbols, lineno: int) -> int:
        """Parse an immediate operand with optional %hi/%lo relocations."""
        text = text.strip()
        if text.startswith("%hi(") and text.endswith(")"):
            value = self._parse_value(text[4:-1], symbols, lineno)
            return ((value + 0x800) >> 12) & 0xFFFFF
        if text.startswith("%lo(") and text.endswith(")"):
            value = self._parse_value(text[4:-1], symbols, lineno)
            lo = value & 0xFFF
            return lo - 0x1000 if lo >= 0x800 else lo
        return self._parse_value(text, symbols, lineno)

    def _parse_mem_operand(
        self, text: str, symbols: _Symbols, lineno: int
    ) -> Tuple[int, int]:
        """Parse ``offset(base)`` into (offset, base register)."""
        text = text.strip()
        match = re.match(r"^(.*)\(\s*([\w$]+)\s*\)$", text)
        if not match:
            raise AssemblerError("expected offset(base) operand, got %r" % text, lineno)
        offset_text = match.group(1).strip()
        offset = self._parse_immediate(offset_text, symbols, lineno) if offset_text else 0
        base = self._parse_register(match.group(2), lineno)
        return offset, base

    def _branch_offset(
        self, target: str, address: int, symbols: _Symbols, lineno: int
    ) -> int:
        """Resolve a branch/jump target (label or literal) to a PC offset."""
        target = target.strip()
        if target in symbols:
            return symbols.lookup(target, lineno) - address
        return self._parse_integer(target, lineno)

    # ------------------------------------------------------- expansion
    def _expand(
        self, stmt: _Statement, address: int, symbols: _Symbols
    ) -> List[Instruction]:
        """Expand a (possibly pseudo) instruction into real instructions."""
        mnemonic = stmt.mnemonic
        ops = stmt.operands
        lineno = stmt.lineno

        def reg(index: int) -> int:
            return self._parse_register(ops[index], lineno)

        def imm(index: int) -> int:
            return self._parse_immediate(ops[index], symbols, lineno)

        def offset(index: int, at: int = address) -> int:
            return self._branch_offset(ops[index], at, symbols, lineno)

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    "%s expects %d operands, got %d" % (mnemonic, count, len(ops)),
                    lineno,
                )

        # ---- real instructions --------------------------------------------
        try:
            spec = spec_for(mnemonic)
        except KeyError:
            spec = None

        if spec is not None:
            fmt = spec.fmt.value
            if mnemonic in ("ecall", "ebreak", "fence"):
                return [Instruction(mnemonic, imm=1 if mnemonic == "ebreak" else 0)]
            if fmt == "R":
                need(3)
                return [Instruction(mnemonic, rd=reg(0), rs1=reg(1), rs2=reg(2))]
            if fmt == "U":
                need(2)
                return [Instruction(mnemonic, rd=reg(0), imm=imm(1) & 0xFFFFF)]
            if fmt == "J":  # jal rd, target  |  jal target
                if len(ops) == 1:
                    return [Instruction("jal", rd=1, imm=offset(0))]
                need(2)
                return [Instruction("jal", rd=reg(0), imm=offset(1))]
            if fmt == "B":
                need(3)
                return [Instruction(mnemonic, rs1=reg(0), rs2=reg(1), imm=offset(2))]
            if fmt == "S":
                need(2)
                off, base = self._parse_mem_operand(ops[1], symbols, lineno)
                return [Instruction(mnemonic, rs2=reg(0), rs1=base, imm=off)]
            if fmt == "I":
                if spec.is_load:
                    need(2)
                    off, base = self._parse_mem_operand(ops[1], symbols, lineno)
                    return [Instruction(mnemonic, rd=reg(0), rs1=base, imm=off)]
                if mnemonic == "jalr":
                    # Forms: jalr rs | jalr rd, rs, imm | jalr rd, imm(rs)
                    if len(ops) == 1:
                        return [Instruction("jalr", rd=1, rs1=reg(0), imm=0)]
                    if len(ops) == 2 and "(" in ops[1]:
                        off, base = self._parse_mem_operand(ops[1], symbols, lineno)
                        return [Instruction("jalr", rd=reg(0), rs1=base, imm=off)]
                    need(3)
                    return [Instruction("jalr", rd=reg(0), rs1=reg(1), imm=imm(2))]
                need(3)
                return [Instruction(mnemonic, rd=reg(0), rs1=reg(1), imm=imm(2))]

        # ---- pseudo-instructions -------------------------------------------
        if mnemonic == "nop":
            return [Instruction("addi", rd=0, rs1=0, imm=0)]
        if mnemonic == "li":
            need(2)
            rd = reg(0)
            value = self._parse_integer(ops[1], lineno)
            if -2048 <= value <= 2047:
                return [Instruction("addi", rd=rd, rs1=0, imm=value)]
            unsigned = value & 0xFFFFFFFF
            lo = unsigned & 0xFFF
            if lo >= 0x800:
                lo -= 0x1000
            hi = ((unsigned - lo) >> 12) & 0xFFFFF
            return [
                Instruction("lui", rd=rd, imm=hi),
                Instruction("addi", rd=rd, rs1=rd, imm=lo),
            ]
        if mnemonic == "la":
            need(2)
            rd = reg(0)
            value = self._parse_value(ops[1], symbols, lineno)
            lo = value & 0xFFF
            if lo >= 0x800:
                lo -= 0x1000
            hi = ((value - lo) >> 12) & 0xFFFFF
            return [
                Instruction("lui", rd=rd, imm=hi),
                Instruction("addi", rd=rd, rs1=rd, imm=lo),
            ]
        if mnemonic == "mv":
            need(2)
            return [Instruction("addi", rd=reg(0), rs1=reg(1), imm=0)]
        if mnemonic == "not":
            need(2)
            return [Instruction("xori", rd=reg(0), rs1=reg(1), imm=-1)]
        if mnemonic == "neg":
            need(2)
            return [Instruction("sub", rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "seqz":
            need(2)
            return [Instruction("sltiu", rd=reg(0), rs1=reg(1), imm=1)]
        if mnemonic == "snez":
            need(2)
            return [Instruction("sltu", rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "sltz":
            need(2)
            return [Instruction("slt", rd=reg(0), rs1=reg(1), rs2=0)]
        if mnemonic == "sgtz":
            need(2)
            return [Instruction("slt", rd=reg(0), rs1=0, rs2=reg(1))]
        if mnemonic == "beqz":
            need(2)
            return [Instruction("beq", rs1=reg(0), rs2=0, imm=offset(1))]
        if mnemonic == "bnez":
            need(2)
            return [Instruction("bne", rs1=reg(0), rs2=0, imm=offset(1))]
        if mnemonic == "blez":
            need(2)
            return [Instruction("bge", rs1=0, rs2=reg(0), imm=offset(1))]
        if mnemonic == "bgez":
            need(2)
            return [Instruction("bge", rs1=reg(0), rs2=0, imm=offset(1))]
        if mnemonic == "bltz":
            need(2)
            return [Instruction("blt", rs1=reg(0), rs2=0, imm=offset(1))]
        if mnemonic == "bgtz":
            need(2)
            return [Instruction("blt", rs1=0, rs2=reg(0), imm=offset(1))]
        if mnemonic == "bgt":
            need(3)
            return [Instruction("blt", rs1=reg(1), rs2=reg(0), imm=offset(2))]
        if mnemonic == "ble":
            need(3)
            return [Instruction("bge", rs1=reg(1), rs2=reg(0), imm=offset(2))]
        if mnemonic == "bgtu":
            need(3)
            return [Instruction("bltu", rs1=reg(1), rs2=reg(0), imm=offset(2))]
        if mnemonic == "bleu":
            need(3)
            return [Instruction("bgeu", rs1=reg(1), rs2=reg(0), imm=offset(2))]
        if mnemonic == "j":
            need(1)
            return [Instruction("jal", rd=0, imm=offset(0))]
        if mnemonic == "jr":
            need(1)
            return [Instruction("jalr", rd=0, rs1=reg(0), imm=0)]
        if mnemonic == "ret":
            return [Instruction("jalr", rd=0, rs1=1, imm=0)]
        if mnemonic == "call":
            need(1)
            return [Instruction("jal", rd=1, imm=offset(0))]
        if mnemonic == "tail":
            need(1)
            return [Instruction("jal", rd=0, imm=offset(0))]

        raise AssemblerError("unknown instruction or directive: %r" % mnemonic, lineno)


def assemble(
    source: str,
    code_base: int = DEFAULT_CODE_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Assemble ``source`` and return the resulting :class:`Program`."""
    return Assembler(code_base=code_base, data_base=data_base).assemble(source)
