"""Instruction specifications and the :class:`Instruction` container.

Each supported RV32IM instruction has an :class:`InstructionSpec` describing
its encoding format, opcode/funct fields and its control-flow classification.
The classification is what LO-FAT's branch filter cares about: whether an
instruction can redirect control flow, whether it is direct or indirect, and
whether it writes the link register (which distinguishes subroutine calls from
plain jumps and loop back-edges).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class InstructionFormat(enum.Enum):
    """RV32 instruction encoding formats."""

    R = "R"
    I = "I"
    S = "S"
    B = "B"
    U = "U"
    J = "J"


# Base opcodes (bits [6:0]).
OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_BRANCH = 0b1100011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP = 0b0110011
OPCODE_MISC_MEM = 0b0001111
OPCODE_SYSTEM = 0b1110011


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one instruction mnemonic.

    Attributes:
        mnemonic: lower-case assembly mnemonic, e.g. ``"beq"``.
        fmt: encoding format.
        opcode: 7-bit major opcode.
        funct3: 3-bit minor opcode, or None if unused.
        funct7: 7-bit minor opcode, or None if unused.
        is_branch: True for conditional branches (B-format).
        is_jump: True for unconditional jumps (``jal``/``jalr``).
        is_indirect: True when the target comes from a register (``jalr``).
        is_load: True for memory loads.
        is_store: True for memory stores.
        is_system: True for ``ecall``/``ebreak``.
        is_mul_div: True for M-extension instructions (longer latency).
    """

    mnemonic: str
    fmt: InstructionFormat
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None
    is_branch: bool = False
    is_jump: bool = False
    is_indirect: bool = False
    is_load: bool = False
    is_store: bool = False
    is_system: bool = False
    is_mul_div: bool = False

    @property
    def is_control_flow(self) -> bool:
        """True if the instruction may redirect the program counter."""
        return self.is_branch or self.is_jump


def _r(mnemonic: str, funct3: int, funct7: int, **flags) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.R, OPCODE_OP, funct3, funct7, **flags)


def _i(mnemonic: str, opcode: int, funct3: int, funct7: Optional[int] = None, **flags) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.I, opcode, funct3, funct7, **flags)


def _b(mnemonic: str, funct3: int) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.B, OPCODE_BRANCH, funct3, is_branch=True)


def _s(mnemonic: str, funct3: int) -> InstructionSpec:
    return InstructionSpec(mnemonic, InstructionFormat.S, OPCODE_STORE, funct3, is_store=True)


#: Every supported instruction, keyed by mnemonic.
SPECS: Dict[str, InstructionSpec] = {}


def _register(spec: InstructionSpec) -> None:
    SPECS[spec.mnemonic] = spec


# --- RV32I: upper immediates and jumps -------------------------------------
_register(InstructionSpec("lui", InstructionFormat.U, OPCODE_LUI))
_register(InstructionSpec("auipc", InstructionFormat.U, OPCODE_AUIPC))
_register(InstructionSpec("jal", InstructionFormat.J, OPCODE_JAL, is_jump=True))
_register(InstructionSpec(
    "jalr", InstructionFormat.I, OPCODE_JALR, funct3=0b000,
    is_jump=True, is_indirect=True,
))

# --- RV32I: conditional branches --------------------------------------------
_register(_b("beq", 0b000))
_register(_b("bne", 0b001))
_register(_b("blt", 0b100))
_register(_b("bge", 0b101))
_register(_b("bltu", 0b110))
_register(_b("bgeu", 0b111))

# --- RV32I: loads and stores -------------------------------------------------
_register(_i("lb", OPCODE_LOAD, 0b000, is_load=True))
_register(_i("lh", OPCODE_LOAD, 0b001, is_load=True))
_register(_i("lw", OPCODE_LOAD, 0b010, is_load=True))
_register(_i("lbu", OPCODE_LOAD, 0b100, is_load=True))
_register(_i("lhu", OPCODE_LOAD, 0b101, is_load=True))
_register(_s("sb", 0b000))
_register(_s("sh", 0b001))
_register(_s("sw", 0b010))

# --- RV32I: register-immediate ALU -------------------------------------------
_register(_i("addi", OPCODE_OP_IMM, 0b000))
_register(_i("slti", OPCODE_OP_IMM, 0b010))
_register(_i("sltiu", OPCODE_OP_IMM, 0b011))
_register(_i("xori", OPCODE_OP_IMM, 0b100))
_register(_i("ori", OPCODE_OP_IMM, 0b110))
_register(_i("andi", OPCODE_OP_IMM, 0b111))
_register(_i("slli", OPCODE_OP_IMM, 0b001, funct7=0b0000000))
_register(_i("srli", OPCODE_OP_IMM, 0b101, funct7=0b0000000))
_register(_i("srai", OPCODE_OP_IMM, 0b101, funct7=0b0100000))

# --- RV32I: register-register ALU --------------------------------------------
_register(_r("add", 0b000, 0b0000000))
_register(_r("sub", 0b000, 0b0100000))
_register(_r("sll", 0b001, 0b0000000))
_register(_r("slt", 0b010, 0b0000000))
_register(_r("sltu", 0b011, 0b0000000))
_register(_r("xor", 0b100, 0b0000000))
_register(_r("srl", 0b101, 0b0000000))
_register(_r("sra", 0b101, 0b0100000))
_register(_r("or", 0b110, 0b0000000))
_register(_r("and", 0b111, 0b0000000))

# --- RV32M: multiply / divide ------------------------------------------------
_register(_r("mul", 0b000, 0b0000001, is_mul_div=True))
_register(_r("mulh", 0b001, 0b0000001, is_mul_div=True))
_register(_r("mulhsu", 0b010, 0b0000001, is_mul_div=True))
_register(_r("mulhu", 0b011, 0b0000001, is_mul_div=True))
_register(_r("div", 0b100, 0b0000001, is_mul_div=True))
_register(_r("divu", 0b101, 0b0000001, is_mul_div=True))
_register(_r("rem", 0b110, 0b0000001, is_mul_div=True))
_register(_r("remu", 0b111, 0b0000001, is_mul_div=True))

# --- System and fence ---------------------------------------------------------
_register(_i("ecall", OPCODE_SYSTEM, 0b000, is_system=True))
_register(_i("ebreak", OPCODE_SYSTEM, 0b000, is_system=True))
_register(_i("fence", OPCODE_MISC_MEM, 0b000))


def spec_for(mnemonic: str) -> InstructionSpec:
    """Return the :class:`InstructionSpec` for ``mnemonic``.

    Raises :class:`KeyError` with a helpful message for unknown mnemonics.
    """
    key = mnemonic.strip().lower()
    try:
        return SPECS[key]
    except KeyError:
        raise KeyError("unsupported instruction mnemonic: %r" % mnemonic) from None


@dataclass
class Instruction:
    """A single decoded (or assembled) instruction.

    Operand fields that do not apply to a given format are left at their
    defaults (register 0 / immediate 0).  ``address`` is filled in by the
    assembler and by the decoder when the caller supplies it; the CPU and the
    LO-FAT branch filter use it as the branch source address.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    address: Optional[int] = None
    spec: InstructionSpec = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.mnemonic = self.mnemonic.lower()
        self.spec = spec_for(self.mnemonic)

    # -- control-flow classification helpers used by the CPU and LO-FAT ------
    @property
    def is_control_flow(self) -> bool:
        """True if the instruction may change the program counter."""
        return self.spec.is_control_flow

    @property
    def is_conditional_branch(self) -> bool:
        """True for B-format conditional branches."""
        return self.spec.is_branch

    @property
    def is_direct_jump(self) -> bool:
        """True for ``jal`` (PC-relative unconditional jump)."""
        return self.spec.is_jump and not self.spec.is_indirect

    @property
    def is_indirect_jump(self) -> bool:
        """True for ``jalr`` (register-indirect jump)."""
        return self.spec.is_indirect

    @property
    def writes_link_register(self) -> bool:
        """True if the instruction is a *linking* jump (a subroutine call).

        Per the RISC-V calling convention a call is a ``jal``/``jalr`` whose
        destination register is ``ra`` (x1) or the alternate link register
        ``t0`` (x5).  LO-FAT's loop detector treats only *non-linking*
        backward control transfers as loop back-edges.
        """
        from repro.isa.registers import is_link_register

        return self.spec.is_jump and is_link_register(self.rd)

    @property
    def is_return(self) -> bool:
        """True for the canonical function return ``jalr x0, ra, 0``."""
        from repro.isa.registers import is_link_register

        return (
            self.spec.is_indirect
            and self.rd == 0
            and is_link_register(self.rs1)
        )

    def key(self) -> Tuple[str, int, int, int, int]:
        """A hashable identity tuple (ignores the address annotation)."""
        return (self.mnemonic, self.rd, self.rs1, self.rs2, self.imm)

    def __str__(self) -> str:
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)
