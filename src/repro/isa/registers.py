"""Integer register file and ABI register naming for RV32.

The RISC-V integer register file has 32 registers ``x0``-``x31``.  Register
``x0`` is hard-wired to zero: writes to it are discarded and reads always
return 0.  The standard calling convention assigns ABI names to each register
(``ra`` for the return address / link register, ``sp`` for the stack pointer,
``a0``-``a7`` for arguments, and so on).  LO-FAT's loop-detection heuristic
relies on the link register (``ra`` / ``x1``), so the register model keeps the
ABI mapping explicit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: Number of integer registers in RV32.
NUM_REGISTERS = 32

#: Mask used to truncate values to the 32-bit register width.
XLEN_MASK = 0xFFFFFFFF

#: Canonical ABI names indexed by register number.
ABI_NAMES: List[str] = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

#: Register number of the link register used by ``jal``/``jalr`` calls.
LINK_REGISTER = 1

#: Register number of the alternate link register allowed by the ABI.
ALT_LINK_REGISTER = 5

#: Register number of the stack pointer.
STACK_POINTER = 2

_NAME_TO_NUMBER: Dict[str, int] = {}
for _num, _name in enumerate(ABI_NAMES):
    _NAME_TO_NUMBER[_name] = _num
    _NAME_TO_NUMBER["x%d" % _num] = _num
# ``fp`` is an alias for ``s0``.
_NAME_TO_NUMBER["fp"] = 8


def register_number(name: str) -> int:
    """Return the register number for ``name``.

    ``name`` may be an ABI name (``"sp"``, ``"a0"``, ``"fp"``) or an
    architectural name (``"x2"``).  Raises :class:`ValueError` for unknown
    names.
    """
    key = name.strip().lower()
    if key not in _NAME_TO_NUMBER:
        raise ValueError("unknown register name: %r" % name)
    return _NAME_TO_NUMBER[key]


def register_name(number: int) -> str:
    """Return the canonical ABI name for register ``number``."""
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError("register number out of range: %d" % number)
    return ABI_NAMES[number]


def is_link_register(number: int) -> bool:
    """Return True if ``number`` is a link register per the RISC-V ABI.

    The calling convention designates ``x1`` (``ra``) and ``x5`` (``t0``) as
    link registers; LO-FAT's branch filter uses this to distinguish subroutine
    calls from loop back-edges.
    """
    return number in (LINK_REGISTER, ALT_LINK_REGISTER)


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as a signed two's-complement integer."""
    value &= XLEN_MASK
    if value & 0x80000000:
        return value - 0x100000000
    return value


def to_unsigned(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & XLEN_MASK


class RegisterFile:
    """A 32-entry integer register file with ``x0`` hard-wired to zero.

    Values are stored as unsigned 32-bit integers.  :meth:`read_signed`
    provides the signed view needed by comparison and arithmetic instructions.
    """

    def __init__(self, initial: Iterable[int] = ()) -> None:
        self._regs: List[int] = [0] * NUM_REGISTERS
        for index, value in enumerate(initial):
            if index >= NUM_REGISTERS:
                raise ValueError("too many initial register values")
            if index != 0:
                self._regs[index] = to_unsigned(value)

    def read(self, number: int) -> int:
        """Return the unsigned 32-bit value of register ``number``."""
        if not 0 <= number < NUM_REGISTERS:
            raise ValueError("register number out of range: %d" % number)
        return self._regs[number]

    def read_signed(self, number: int) -> int:
        """Return the signed value of register ``number``."""
        return to_signed(self.read(number))

    def write(self, number: int, value: int) -> None:
        """Write ``value`` (truncated to 32 bits) to register ``number``.

        Writes to ``x0`` are silently ignored, matching the hardware.
        """
        if not 0 <= number < NUM_REGISTERS:
            raise ValueError("register number out of range: %d" % number)
        if number == 0:
            return
        self._regs[number] = to_unsigned(value)

    def snapshot(self) -> List[int]:
        """Return a copy of all register values (used by tests and debuggers)."""
        return list(self._regs)

    def __getitem__(self, key) -> int:
        if isinstance(key, str):
            return self.read(register_number(key))
        return self.read(key)

    def __setitem__(self, key, value: int) -> None:
        if isinstance(key, str):
            self.write(register_number(key), value)
        else:
            self.write(key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            "%s=%#x" % (ABI_NAMES[i], v)
            for i, v in enumerate(self._regs)
            if v != 0
        )
        return "RegisterFile(%s)" % pairs
