"""Binary encoding and decoding of RV32IM instruction words.

The encoder produces the standard 32-bit little-endian instruction words used
by real RISC-V toolchains, and the decoder inverts it exactly.  Keeping the
encodings faithful matters for the reproduction: the attested program image is
a binary the verifier also holds, and the LO-FAT branch filter classifies
instructions by inspecting the retired instruction word.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    InstructionSpec,
    OPCODE_BRANCH,
    OPCODE_JAL,
    OPCODE_JALR,
    OPCODE_LOAD,
    OPCODE_LUI,
    OPCODE_AUIPC,
    OPCODE_MISC_MEM,
    OPCODE_OP,
    OPCODE_OP_IMM,
    OPCODE_STORE,
    OPCODE_SYSTEM,
    SPECS,
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or a word decoded."""


def _check_register(value: int, name: str) -> None:
    if not 0 <= value < 32:
        raise EncodingError("%s out of range: %d" % (name, value))


def _check_signed_range(value: int, bits: int, what: str) -> None:
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(
            "%s immediate %d does not fit in %d signed bits" % (what, value, bits)
        )


def _sign_extend(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def encode(instr: Instruction) -> int:
    """Encode ``instr`` into its 32-bit instruction word."""
    spec = instr.spec
    fmt = spec.fmt
    _check_register(instr.rd, "rd")
    _check_register(instr.rs1, "rs1")
    _check_register(instr.rs2, "rs2")

    if fmt is InstructionFormat.R:
        return (
            (spec.funct7 << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (instr.rd << 7)
            | spec.opcode
        )

    if fmt is InstructionFormat.I:
        if spec.mnemonic in ("slli", "srli", "srai"):
            if not 0 <= instr.imm < 32:
                raise EncodingError("shift amount out of range: %d" % instr.imm)
            imm_field = (spec.funct7 << 5) | instr.imm
        elif spec.mnemonic == "ecall":
            imm_field = 0
        elif spec.mnemonic == "ebreak":
            imm_field = 1
        else:
            _check_signed_range(instr.imm, 12, spec.mnemonic)
            imm_field = instr.imm & 0xFFF
        return (
            (imm_field << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (instr.rd << 7)
            | spec.opcode
        )

    if fmt is InstructionFormat.S:
        _check_signed_range(instr.imm, 12, spec.mnemonic)
        imm = instr.imm & 0xFFF
        imm_11_5 = (imm >> 5) & 0x7F
        imm_4_0 = imm & 0x1F
        return (
            (imm_11_5 << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (imm_4_0 << 7)
            | spec.opcode
        )

    if fmt is InstructionFormat.B:
        _check_signed_range(instr.imm, 13, spec.mnemonic)
        if instr.imm % 2 != 0:
            raise EncodingError("branch offset must be even: %d" % instr.imm)
        imm = instr.imm & 0x1FFF
        bit12 = (imm >> 12) & 0x1
        bits10_5 = (imm >> 5) & 0x3F
        bits4_1 = (imm >> 1) & 0xF
        bit11 = (imm >> 11) & 0x1
        return (
            (bit12 << 31)
            | (bits10_5 << 25)
            | (instr.rs2 << 20)
            | (instr.rs1 << 15)
            | (spec.funct3 << 12)
            | (bits4_1 << 8)
            | (bit11 << 7)
            | spec.opcode
        )

    if fmt is InstructionFormat.U:
        if not 0 <= instr.imm < (1 << 20):
            raise EncodingError("U-type immediate out of range: %d" % instr.imm)
        return (instr.imm << 12) | (instr.rd << 7) | spec.opcode

    if fmt is InstructionFormat.J:
        _check_signed_range(instr.imm, 21, spec.mnemonic)
        if instr.imm % 2 != 0:
            raise EncodingError("jump offset must be even: %d" % instr.imm)
        imm = instr.imm & 0x1FFFFF
        bit20 = (imm >> 20) & 0x1
        bits10_1 = (imm >> 1) & 0x3FF
        bit11 = (imm >> 11) & 0x1
        bits19_12 = (imm >> 12) & 0xFF
        return (
            (bit20 << 31)
            | (bits10_1 << 21)
            | (bit11 << 20)
            | (bits19_12 << 12)
            | (instr.rd << 7)
            | spec.opcode
        )

    raise EncodingError("unsupported format: %s" % fmt)  # pragma: no cover


# Lookup tables for decoding.
_R_BY_FUNCT: Dict[Tuple[int, int], str] = {}
_I_BY_OPCODE_FUNCT: Dict[Tuple[int, int], str] = {}
_B_BY_FUNCT: Dict[int, str] = {}
_S_BY_FUNCT: Dict[int, str] = {}
for _spec in SPECS.values():
    if _spec.fmt is InstructionFormat.R:
        _R_BY_FUNCT[(_spec.funct3, _spec.funct7)] = _spec.mnemonic
    elif _spec.fmt is InstructionFormat.B:
        _B_BY_FUNCT[_spec.funct3] = _spec.mnemonic
    elif _spec.fmt is InstructionFormat.S:
        _S_BY_FUNCT[_spec.funct3] = _spec.mnemonic
    elif _spec.fmt is InstructionFormat.I and _spec.mnemonic not in (
        "slli", "srli", "srai", "ecall", "ebreak",
    ):
        _I_BY_OPCODE_FUNCT[(_spec.opcode, _spec.funct3)] = _spec.mnemonic


def decode(word: int, address: Optional[int] = None) -> Instruction:
    """Decode a 32-bit instruction ``word`` into an :class:`Instruction`.

    ``address`` (if given) is attached to the decoded instruction so that
    downstream consumers (the CPU trace, the branch filter) know the source PC.
    Raises :class:`EncodingError` for words that are not valid RV32IM
    instructions in the supported subset.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError("instruction word out of range: %#x" % word)

    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OPCODE_LUI:
        return Instruction("lui", rd=rd, imm=(word >> 12) & 0xFFFFF, address=address)
    if opcode == OPCODE_AUIPC:
        return Instruction("auipc", rd=rd, imm=(word >> 12) & 0xFFFFF, address=address)

    if opcode == OPCODE_JAL:
        imm = (
            (((word >> 31) & 0x1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 0x1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Instruction("jal", rd=rd, imm=_sign_extend(imm, 21), address=address)

    if opcode == OPCODE_JALR:
        if funct3 != 0:
            raise EncodingError("invalid jalr funct3: %d" % funct3)
        imm = _sign_extend(word >> 20, 12)
        return Instruction("jalr", rd=rd, rs1=rs1, imm=imm, address=address)

    if opcode == OPCODE_BRANCH:
        if funct3 not in _B_BY_FUNCT:
            raise EncodingError("invalid branch funct3: %d" % funct3)
        imm = (
            (((word >> 31) & 0x1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 0x1) << 11)
        )
        return Instruction(
            _B_BY_FUNCT[funct3], rs1=rs1, rs2=rs2,
            imm=_sign_extend(imm, 13), address=address,
        )

    if opcode == OPCODE_STORE:
        if funct3 not in _S_BY_FUNCT:
            raise EncodingError("invalid store funct3: %d" % funct3)
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Instruction(
            _S_BY_FUNCT[funct3], rs1=rs1, rs2=rs2,
            imm=_sign_extend(imm, 12), address=address,
        )

    if opcode in (OPCODE_LOAD, OPCODE_OP_IMM, OPCODE_MISC_MEM):
        if opcode == OPCODE_OP_IMM and funct3 == 0b001:
            if funct7 != 0:
                raise EncodingError("invalid slli funct7: %d" % funct7)
            return Instruction("slli", rd=rd, rs1=rs1, imm=rs2, address=address)
        if opcode == OPCODE_OP_IMM and funct3 == 0b101:
            if funct7 == 0b0000000:
                return Instruction("srli", rd=rd, rs1=rs1, imm=rs2, address=address)
            if funct7 == 0b0100000:
                return Instruction("srai", rd=rd, rs1=rs1, imm=rs2, address=address)
            raise EncodingError("invalid shift funct7: %d" % funct7)
        key = (opcode, funct3)
        if key not in _I_BY_OPCODE_FUNCT:
            raise EncodingError(
                "invalid I-type opcode/funct3: %#x/%d" % (opcode, funct3)
            )
        imm = _sign_extend(word >> 20, 12)
        return Instruction(
            _I_BY_OPCODE_FUNCT[key], rd=rd, rs1=rs1, imm=imm, address=address,
        )

    if opcode == OPCODE_OP:
        key = (funct3, funct7)
        if key not in _R_BY_FUNCT:
            raise EncodingError(
                "invalid R-type funct3/funct7: %d/%d" % (funct3, funct7)
            )
        return Instruction(
            _R_BY_FUNCT[key], rd=rd, rs1=rs1, rs2=rs2, address=address,
        )

    if opcode == OPCODE_SYSTEM:
        imm_field = word >> 20
        if imm_field == 0 and rd == 0 and rs1 == 0 and funct3 == 0:
            return Instruction("ecall", address=address)
        if imm_field == 1 and rd == 0 and rs1 == 0 and funct3 == 0:
            return Instruction("ebreak", imm=1, address=address)
        raise EncodingError("unsupported SYSTEM instruction: %#x" % word)

    raise EncodingError("unsupported opcode: %#x (word %#010x)" % (opcode, word))
