"""Instruction-to-text conversion (disassembly).

Used for diagnostics, program listings in the examples, and for the
round-trip property tests (assemble -> encode -> decode -> format ->
re-assemble).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.isa.encoding import decode
from repro.isa.instructions import Instruction, InstructionFormat
from repro.isa.registers import register_name


def format_instruction(instr: Instruction) -> str:
    """Render ``instr`` as canonical assembly text (no pseudo-instructions)."""
    spec = instr.spec
    mnemonic = instr.mnemonic
    fmt = spec.fmt

    if mnemonic in ("ecall", "ebreak", "fence"):
        return mnemonic

    if fmt is InstructionFormat.R:
        return "%s %s, %s, %s" % (
            mnemonic,
            register_name(instr.rd),
            register_name(instr.rs1),
            register_name(instr.rs2),
        )
    if fmt is InstructionFormat.U:
        return "%s %s, %#x" % (mnemonic, register_name(instr.rd), instr.imm)
    if fmt is InstructionFormat.J:
        return "%s %s, %d" % (mnemonic, register_name(instr.rd), instr.imm)
    if fmt is InstructionFormat.B:
        return "%s %s, %s, %d" % (
            mnemonic,
            register_name(instr.rs1),
            register_name(instr.rs2),
            instr.imm,
        )
    if fmt is InstructionFormat.S:
        return "%s %s, %d(%s)" % (
            mnemonic,
            register_name(instr.rs2),
            instr.imm,
            register_name(instr.rs1),
        )
    # I-format
    if spec.is_load or mnemonic == "jalr":
        return "%s %s, %d(%s)" % (
            mnemonic,
            register_name(instr.rd),
            instr.imm,
            register_name(instr.rs1),
        )
    return "%s %s, %s, %d" % (
        mnemonic,
        register_name(instr.rd),
        register_name(instr.rs1),
        instr.imm,
    )


def disassemble(word: int, address: Optional[int] = None) -> str:
    """Decode a 32-bit instruction ``word`` and render it as text."""
    return format_instruction(decode(word, address))


def disassemble_program(code: bytes, base: int = 0) -> List[str]:
    """Disassemble an entire code section into a listing with addresses."""
    lines: List[str] = []
    for offset in range(0, len(code) - len(code) % 4, 4):
        word = int.from_bytes(code[offset:offset + 4], "little")
        address = base + offset
        try:
            text = disassemble(word, address)
        except Exception:
            text = ".word %#010x" % word
        lines.append("%08x:  %08x  %s" % (address, word, text))
    return lines
