"""RV32IM instruction-set architecture support.

This package provides everything needed to turn textual RISC-V assembly into a
binary program image and back again:

* :mod:`repro.isa.registers` -- integer register file and ABI register names.
* :mod:`repro.isa.instructions` -- instruction specifications (formats, opcodes,
  control-flow classification) and the :class:`Instruction` container.
* :mod:`repro.isa.encoding` -- 32-bit instruction word encoding and decoding.
* :mod:`repro.isa.assembler` -- a two-pass assembler with the usual
  pseudo-instructions, sections and data directives.
* :mod:`repro.isa.disassembler` -- instruction word to text conversion.

The ISA model intentionally covers the subset used by the Pulpino core targeted
in the LO-FAT paper: RV32I base plus the M extension, which is enough to run
realistic embedded workloads (loops, recursion, indirect calls) while remaining
small enough to reason about.
"""

from repro.isa.registers import (
    ABI_NAMES,
    NUM_REGISTERS,
    RegisterFile,
    register_name,
    register_number,
)
from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    InstructionSpec,
    SPECS,
    spec_for,
)
from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.assembler import AssemblerError, Program, assemble
from repro.isa.disassembler import disassemble

__all__ = [
    "ABI_NAMES",
    "NUM_REGISTERS",
    "RegisterFile",
    "register_name",
    "register_number",
    "Instruction",
    "InstructionFormat",
    "InstructionSpec",
    "SPECS",
    "spec_for",
    "EncodingError",
    "decode",
    "encode",
    "AssemblerError",
    "Program",
    "assemble",
    "disassemble",
]
